#!/usr/bin/env python
"""Documentation checks: module docstrings and runnable README examples.

Two lightweight gates, run by ``make docs-check``:

1. every public module under ``src/repro`` has a module docstring;
2. every ```python code block in README.md actually executes (blocks share
   one namespace, top to bottom, so later blocks may use earlier results).

Exits non-zero with a per-failure listing when either gate fails.
"""

from __future__ import annotations

import ast
import re
import sys
import traceback
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"

PYTHON_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def check_module_docstrings() -> list[str]:
    """Paths of public modules lacking a module docstring."""
    failures = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        if any(part.startswith("_") and part != "__init__.py" for part in path.parts):
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if ast.get_docstring(tree) is None:
            failures.append(str(path.relative_to(REPO_ROOT)))
    return failures


def check_readme_blocks() -> list[str]:
    """Error descriptions for README python blocks that fail to execute."""
    sys.path.insert(0, str(SRC_ROOT))
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    blocks = PYTHON_BLOCK.findall(readme)
    failures = []
    namespace: dict[str, object] = {"__name__": "__readme__"}
    for number, block in enumerate(blocks, start=1):
        try:
            exec(compile(block, f"README.md block {number}", "exec"), namespace)
        except Exception:
            failures.append(
                f"README.md python block {number} failed:\n{traceback.format_exc()}"
            )
    if not blocks:
        failures.append("README.md contains no ```python blocks to check")
    return failures


def main() -> int:
    missing = check_module_docstrings()
    for path in missing:
        print(f"missing module docstring: {path}")
    broken = check_readme_blocks()
    for failure in broken:
        print(failure)
    if missing or broken:
        print(f"docs-check: FAILED ({len(missing) + len(broken)} problem(s))")
        return 1
    print("docs-check: OK (all modules documented, README examples run)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Packaging metadata for the tagged-execution reproduction.

Kept in ``setup.py`` (rather than a PEP 621 ``[project]`` table) so that
``pip install -e .`` works in fully offline environments where the ``wheel``
package is unavailable and PEP 660 editable builds cannot be performed;
``pyproject.toml`` only pins the build system.
"""

from pathlib import Path

from setuptools import find_packages, setup

README = Path(__file__).resolve().parent / "README.md"

setup(
    name="repro-tagged-execution",
    version="1.1.0",
    description=(
        "Reproduction of 'Optimizing Disjunctive Queries with Tagged "
        "Execution' (SIGMOD 2024): a columnar engine with tagged, "
        "traditional and bypass execution models plus a caching query service"
    ),
    long_description=README.read_text(encoding="utf-8"),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
        # Optional JIT kernel tier; the engine downgrades `kernels="jit"`
        # to the numpy tier automatically when numba is absent.
        "jit": ["numba"],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Database :: Database Engines/Servers",
    ],
)

"""Setuptools shim.

The primary build configuration lives in ``pyproject.toml``.  This file exists
so that ``pip install -e .`` (and ``python setup.py develop``) also work in
fully offline environments where the ``wheel`` package is unavailable and
PEP 660 editable builds cannot be performed.
"""

from setuptools import setup

setup()

"""Output-shaping clauses: aggregates, GROUP BY, ORDER BY, LIMIT, DISTINCT.

The paper's evaluation queries are SELECT-PROJECT-JOIN queries (the JOB
queries it derives from also carry MIN() aggregates, which the benchmark
traditionally strips).  To make the engine usable for the reporting-style
queries the JOB workload actually contains, the query layer supports the
standard output-shaping clauses.  They are applied *after* the execution
model produced the joined, filtered tuple set, so they are identical for the
traditional, tagged and bypass models and never interact with tag management.

This module defines the plan-level descriptions; the evaluation lives in
:mod:`repro.engine.postprocess`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.expr.ast import ColumnRef


class AggregateFunction(enum.Enum):
    """Supported SQL aggregate functions."""

    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate in the SELECT list.

    Attributes:
        function: which aggregate to compute.
        argument: the input column, or ``None`` for ``COUNT(*)``.
        distinct: ``True`` for ``COUNT(DISTINCT column)``.
    """

    function: AggregateFunction
    argument: ColumnRef | None = None
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.argument is None and self.function is not AggregateFunction.COUNT:
            raise ValueError(f"{self.function.value} requires a column argument")
        if self.distinct and self.function is not AggregateFunction.COUNT:
            raise ValueError("DISTINCT is only supported inside COUNT")

    def label(self) -> str:
        """The output column name, e.g. ``COUNT(*)`` or ``MIN(t.title)``."""
        if self.argument is None:
            inner = "*"
        else:
            inner = self.argument.key()
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.function.value}({inner})"

    def __str__(self) -> str:
        return self.label()


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key.

    The key names an output column: either a qualified column name
    (``alias.column``) or an aggregate label (``COUNT(*)``).  NULLs always
    sort last, regardless of direction.
    """

    key: str
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.key} {'DESC' if self.descending else 'ASC'}"

"""Bound query descriptions.

A :class:`Query` is the planner-facing description of a SELECT statement:
the tables it references (alias -> table name), the equi-join conditions
connecting them, the WHERE predicate expression, and the projection list.
It can be produced either by the SQL front end (:mod:`repro.sql`) or
programmatically by the workload generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.expr.ast import BooleanExpr, ColumnRef, flatten, iter_base_predicates
from repro.plan.postselect import AggregateSpec, OrderItem


@dataclass(frozen=True)
class JoinCondition:
    """An equi-join condition ``left.column = right.column``."""

    left: ColumnRef
    right: ColumnRef

    def aliases(self) -> frozenset[str]:
        """The two table aliases this condition connects."""
        return frozenset({self.left.alias, self.right.alias})

    def key(self) -> str:
        """Canonical key (orientation-insensitive)."""
        sides = sorted([self.left.key(), self.right.key()])
        return f"({sides[0]} = {sides[1]})"

    def side_for(self, alias: str) -> ColumnRef:
        """The column reference belonging to ``alias``."""
        if self.left.alias == alias:
            return self.left
        if self.right.alias == alias:
            return self.right
        raise KeyError(f"join condition {self.key()} does not involve alias {alias!r}")

    def other_alias(self, alias: str) -> str:
        """The alias on the opposite side of ``alias``."""
        if self.left.alias == alias:
            return self.right.alias
        if self.right.alias == alias:
            return self.left.alias
        raise KeyError(f"join condition {self.key()} does not involve alias {alias!r}")

    def __str__(self) -> str:
        return f"{self.left.key()} = {self.right.key()}"


@dataclass
class Query:
    """A bound query.

    Attributes:
        tables: mapping of alias -> base table name.
        join_conditions: equi-join conditions between aliases.
        predicate: the WHERE expression (``None`` means no WHERE clause).
        select: columns materialized by the execution engine; empty means
            ``SELECT *``.  For aggregate queries this is the set of physical
            columns the aggregates and GROUP BY need.
        name: optional identifier used by workloads and reports.
        distinct: apply DISTINCT to the output rows.
        aggregates: aggregate specifications (empty for plain queries).
        group_by: grouping columns (must be non-empty only with aggregates).
        order_by: output ordering keys.
        limit: maximum number of output rows (``None`` means no limit).
    """

    tables: dict[str, str]
    join_conditions: list[JoinCondition] = field(default_factory=list)
    predicate: BooleanExpr | None = None
    select: list[ColumnRef] = field(default_factory=list)
    name: str = ""
    distinct: bool = False
    aggregates: list[AggregateSpec] = field(default_factory=list)
    group_by: list[ColumnRef] = field(default_factory=list)
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None

    def __post_init__(self) -> None:
        if not self.tables:
            raise ValueError("a query must reference at least one table")
        if self.predicate is not None:
            self.predicate = flatten(self.predicate)
        if self.limit is not None and self.limit < 0:
            raise ValueError("LIMIT must be non-negative")
        if self.group_by and not self.aggregates:
            raise ValueError("GROUP BY requires at least one aggregate in the SELECT list")
        self._validate_aliases()

    def _validate_aliases(self) -> None:
        known = set(self.tables)
        for condition in self.join_conditions:
            missing = condition.aliases() - known
            if missing:
                raise ValueError(
                    f"join condition {condition} references unknown aliases {sorted(missing)}"
                )
        if self.predicate is not None:
            missing = self.predicate.tables() - known
            if missing:
                raise ValueError(
                    f"predicate references unknown aliases {sorted(missing)}"
                )
        for column in self.select:
            if column.alias not in known:
                raise ValueError(f"projection column {column.key()} has unknown alias")
        for column in self.group_by:
            if column.alias not in known:
                raise ValueError(f"GROUP BY column {column.key()} has unknown alias")
        for aggregate in self.aggregates:
            if aggregate.argument is not None and aggregate.argument.alias not in known:
                raise ValueError(
                    f"aggregate argument {aggregate.argument.key()} has unknown alias"
                )

    # ------------------------------------------------------------------ #
    # Output shaping
    # ------------------------------------------------------------------ #
    @property
    def has_output_shaping(self) -> bool:
        """True when any post-projection clause must run."""
        return bool(
            self.distinct
            or self.aggregates
            or self.group_by
            or self.order_by
            or self.limit is not None
        )

    def output_names(self) -> list[str]:
        """Names of the final output columns, in order."""
        if self.aggregates:
            names = [column.key() for column in self.group_by]
            names.extend(aggregate.label() for aggregate in self.aggregates)
            return names
        if self.select:
            return [column.key() for column in self.select]
        return []

    @property
    def aliases(self) -> list[str]:
        """All table aliases in declaration order."""
        return list(self.tables)

    def base_predicates(self) -> list[BooleanExpr]:
        """Distinct base predicates appearing in the WHERE expression."""
        if self.predicate is None:
            return []
        seen: dict[str, BooleanExpr] = {}
        for predicate in iter_base_predicates(self.predicate):
            seen.setdefault(predicate.key(), predicate)
        return list(seen.values())

    def canonical_key(self) -> str:
        """Canonical textual form of the query, stable across equivalent spellings.

        Two queries that differ only in irrelevant surface details — SQL
        whitespace, the order of commutative AND/OR children, or the
        orientation of an equi-join condition — produce the same key.  The
        service layer hashes this key (together with planner name and catalog
        version) to address its plan cache.

        Details that *do* change semantics are all included: alias→table
        bindings, join conditions, the normalized WHERE expression, the
        projection list (order-sensitive), DISTINCT, aggregates, GROUP BY,
        ORDER BY and LIMIT.
        """
        parts = [
            "tables=" + ",".join(
                f"{alias}:{table}" for alias, table in sorted(self.tables.items())
            ),
            "joins=" + ",".join(sorted(condition.key() for condition in self.join_conditions)),
            "where=" + (self.predicate.key() if self.predicate is not None else "TRUE"),
            "select=" + ",".join(column.key() for column in self.select),
            "distinct=" + str(self.distinct),
            "aggregates=" + ",".join(aggregate.label() for aggregate in self.aggregates),
            "group_by=" + ",".join(column.key() for column in self.group_by),
            "order_by=" + ",".join(
                f"{item.key}:{'desc' if item.descending else 'asc'}"
                for item in self.order_by
            ),
            "limit=" + str(self.limit),
        ]
        return ";".join(parts)

    def conditions_between(self, left_aliases: frozenset[str], right_aliases: frozenset[str]) -> list[JoinCondition]:
        """Join conditions connecting two disjoint alias sets."""
        out = []
        for condition in self.join_conditions:
            left_in_left = condition.left.alias in left_aliases
            left_in_right = condition.left.alias in right_aliases
            right_in_left = condition.right.alias in left_aliases
            right_in_right = condition.right.alias in right_aliases
            if (left_in_left and right_in_right) or (left_in_right and right_in_left):
                out.append(condition)
        return out

    def __str__(self) -> str:
        tables = ", ".join(f"{table} AS {alias}" for alias, table in self.tables.items())
        joins = " AND ".join(str(condition) for condition in self.join_conditions)
        where = self.predicate.key() if self.predicate is not None else "TRUE"
        return f"SELECT ... FROM {tables} ON {joins or 'TRUE'} WHERE {where}"

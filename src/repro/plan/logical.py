"""Logical plan trees.

Both execution models share the same logical plan vocabulary: table scans,
filters, joins and a projection root.  The tagged planner later decorates
filter and join nodes with tag maps (see :mod:`repro.core.tagmap`); the
traditional planner runs them directly.

Plan nodes are immutable; rewrites (pulling a filter up, pushing one down)
build new trees via the helpers at the bottom of this module.  Every node has
a stable ``node_id`` assigned at construction so side tables (tag maps, cost
annotations) can reference nodes without mutating them.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterator

from repro.expr.ast import BooleanExpr, ColumnRef
from repro.plan.query import JoinCondition

_NODE_COUNTER = itertools.count(1)


class PlanNode:
    """Base class of logical plan nodes."""

    def __init__(self, children: list["PlanNode"]) -> None:
        self.children = list(children)
        self.node_id = next(_NODE_COUNTER)

    @property
    def aliases(self) -> frozenset[str]:
        """Table aliases produced by this subtree."""
        result: frozenset[str] = frozenset()
        for child in self.children:
            result |= child.aliases
        return result

    def walk(self) -> Iterator["PlanNode"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def label(self) -> str:
        """Human-readable one-line description."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{self.label()} [#{self.node_id}]"


class TableScanNode(PlanNode):
    """Scan of a base table under an alias."""

    def __init__(self, alias: str, table_name: str) -> None:
        super().__init__([])
        self.alias = alias
        self.table_name = table_name

    @property
    def aliases(self) -> frozenset[str]:
        return frozenset({self.alias})

    def label(self) -> str:
        return f"Scan({self.table_name} AS {self.alias})"


class FilterNode(PlanNode):
    """Apply a predicate expression to the child's output."""

    def __init__(self, predicate: BooleanExpr, child: PlanNode) -> None:
        super().__init__([child])
        self.predicate = predicate

    @property
    def child(self) -> PlanNode:
        """The single input of this filter."""
        return self.children[0]

    def label(self) -> str:
        return f"Filter({self.predicate.key()})"


class JoinNode(PlanNode):
    """Equi-join of two inputs on one or more conditions."""

    def __init__(
        self, left: PlanNode, right: PlanNode, conditions: list[JoinCondition]
    ) -> None:
        if not conditions:
            raise ValueError("a join node requires at least one join condition")
        super().__init__([left, right])
        self.conditions = list(conditions)

    @property
    def left(self) -> PlanNode:
        """Left (build-side candidate) input."""
        return self.children[0]

    @property
    def right(self) -> PlanNode:
        """Right (probe-side candidate) input."""
        return self.children[1]

    def label(self) -> str:
        rendered = " AND ".join(str(condition) for condition in self.conditions)
        return f"Join({rendered})"


class ProjectNode(PlanNode):
    """Projection root; also the final tag-based filtering point."""

    def __init__(self, child: PlanNode, columns: list[ColumnRef] | None = None) -> None:
        super().__init__([child])
        self.columns = list(columns or [])

    @property
    def child(self) -> PlanNode:
        """The single input of the projection."""
        return self.children[0]

    def label(self) -> str:
        if not self.columns:
            return "Project(*)"
        return "Project(" + ", ".join(column.key() for column in self.columns) + ")"


# --------------------------------------------------------------------------- #
# Plan rewriting helpers
# --------------------------------------------------------------------------- #
def clone_plan(node: PlanNode) -> PlanNode:
    """Deep-copy a plan tree (fresh node ids)."""
    if isinstance(node, TableScanNode):
        return TableScanNode(node.alias, node.table_name)
    if isinstance(node, FilterNode):
        return FilterNode(node.predicate, clone_plan(node.child))
    if isinstance(node, JoinNode):
        return JoinNode(clone_plan(node.left), clone_plan(node.right), node.conditions)
    if isinstance(node, ProjectNode):
        return ProjectNode(clone_plan(node.child), node.columns)
    raise TypeError(f"unknown plan node type: {type(node).__name__}")


def map_plan(node: PlanNode, transform: Callable[[PlanNode], PlanNode | None]) -> PlanNode:
    """Rebuild a plan bottom-up, applying ``transform`` at every node.

    ``transform`` receives a node whose children have already been rebuilt;
    returning ``None`` keeps that node as is.
    """
    if isinstance(node, TableScanNode):
        rebuilt: PlanNode = TableScanNode(node.alias, node.table_name)
    elif isinstance(node, FilterNode):
        rebuilt = FilterNode(node.predicate, map_plan(node.child, transform))
    elif isinstance(node, JoinNode):
        rebuilt = JoinNode(
            map_plan(node.left, transform), map_plan(node.right, transform), node.conditions
        )
    elif isinstance(node, ProjectNode):
        rebuilt = ProjectNode(map_plan(node.child, transform), node.columns)
    else:
        raise TypeError(f"unknown plan node type: {type(node).__name__}")
    replacement = transform(rebuilt)
    return rebuilt if replacement is None else replacement


def collect_filters(node: PlanNode) -> list[FilterNode]:
    """All filter nodes in a plan, pre-order."""
    return [candidate for candidate in node.walk() if isinstance(candidate, FilterNode)]


def collect_joins(node: PlanNode) -> list[JoinNode]:
    """All join nodes in a plan, pre-order."""
    return [candidate for candidate in node.walk() if isinstance(candidate, JoinNode)]


def remove_filter(node: PlanNode, target_predicate_key: str) -> PlanNode:
    """Return a copy of the plan with the first filter on ``target_predicate_key`` removed."""
    removed = False

    def rebuild(current: PlanNode) -> PlanNode:
        nonlocal removed
        if isinstance(current, TableScanNode):
            return TableScanNode(current.alias, current.table_name)
        if isinstance(current, FilterNode):
            child = rebuild(current.child)
            if not removed and current.predicate.key() == target_predicate_key:
                removed = True
                return child
            return FilterNode(current.predicate, child)
        if isinstance(current, JoinNode):
            return JoinNode(rebuild(current.left), rebuild(current.right), current.conditions)
        if isinstance(current, ProjectNode):
            return ProjectNode(rebuild(current.child), current.columns)
        raise TypeError(f"unknown plan node type: {type(current).__name__}")

    result = rebuild(node)
    if not removed:
        raise ValueError(f"no filter with predicate {target_predicate_key!r} found in plan")
    return result


def plan_to_string(node: PlanNode, indent: int = 0) -> str:
    """Pretty-print a plan tree, one node per line."""
    lines = ["  " * indent + node.label()]
    for child in node.children:
        lines.append(plan_to_string(child, indent + 1))
    return "\n".join(lines)

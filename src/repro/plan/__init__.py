"""Logical query descriptions and logical plans.

* :mod:`repro.plan.query` — the bound form of a query: which tables it
  touches (by alias), its equi-join conditions, its WHERE predicate and its
  projection list.
* :mod:`repro.plan.logical` — logical plan trees (scan / filter / join /
  project) shared by the tagged and traditional planners.
"""

from repro.plan.logical import (
    FilterNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    TableScanNode,
    plan_to_string,
)
from repro.plan.query import JoinCondition, Query

__all__ = [
    "FilterNode",
    "JoinCondition",
    "JoinNode",
    "PlanNode",
    "ProjectNode",
    "Query",
    "TableScanNode",
    "plan_to_string",
]

"""Partial aggregation pushdown for sharded execution.

Under scatter–gather execution (:mod:`repro.engine.shard`) each worker
process holds a contiguous block of the partitioning alias's partitions.
When every aggregate in the query is *exactly mergeable*, the coordinator
ships the aggregation down to the shards: each worker folds its merged
partition outputs into per-group partial states, and the coordinator
combines the partial states instead of concatenating full row sets.  The
combine step reuses the same vectorized grouping primitives as serial
aggregation (:mod:`repro.engine.postprocess`), so the final output is
**byte-identical** to aggregating the serially merged rows:

* shard blocks are contiguous in partition order, so concatenating the
  per-shard group lists (each in shard-local first-seen order) preserves the
  global first-seen group order and the first-seen representative rows;
* COUNT / COUNT(col) partials are exact integer counts;
* SUM / AVG partials are pushed only for integer and boolean columns, whose
  per-group sums accumulate Python ints in object arrays (arbitrary
  precision — addition is associative, unlike float rounding);
* MIN / MAX partials carry the per-group extreme *values*; the extreme of
  the per-shard extremes is the global extreme for any ordered type.

Anything not exactly mergeable disables the pushdown for the whole query
(the rows are gathered and aggregated once at the coordinator, as in serial
execution): ``COUNT(DISTINCT …)`` needs the raw value sets, and float
SUM/AVG accumulates in row order with non-associative rounding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.postprocess import (
    _column_index,
    _factorize,
    _group_codes,
    _group_extreme,
    _group_sums,
)
from repro.engine.result import OutputColumns
from repro.plan.postselect import AggregateFunction, AggregateSpec
from repro.plan.query import Query
from repro.storage.column import ColumnType

#: Column types whose SUM/AVG accumulates exactly (object-dtype Python ints).
_EXACT_SUM_TYPES = (ColumnType.INT, ColumnType.BOOL)


def aggregation_pushdown_supported(query: Query, catalog) -> bool:
    """Whether every aggregate of ``query`` can be partially pre-aggregated.

    ``catalog`` resolves argument columns to their declared types (a
    :class:`~repro.storage.catalog.Catalog` or a pinned snapshot).  The
    decision is all-or-nothing: one unmergeable aggregate keeps the whole
    query on the gather-then-aggregate path.
    """
    if not query.aggregates:
        return False
    for spec in query.aggregates:
        if spec.distinct:
            return False
        if spec.function in (
            AggregateFunction.COUNT,
            AggregateFunction.MIN,
            AggregateFunction.MAX,
        ):
            continue
        # SUM / AVG: exact (hence mergeable) only over integer-like columns.
        if spec.argument is None:
            return False
        table_name = query.tables.get(spec.argument.alias)
        if table_name is None or table_name not in catalog:
            return False
        try:
            column = catalog.get(table_name).column(spec.argument.column)
        except KeyError:
            return False
        if column.ctype not in _EXACT_SUM_TYPES:
            return False
    return True


@dataclass(frozen=True)
class PartialAggregate:
    """Per-group partial aggregate states computed on one shard.

    Attributes:
        num_groups: groups observed by this shard (first-seen order).
        keys: one ``(values, nulls)`` pair per GROUP BY column, holding the
            representative (first-seen) key row of each group.
        states: one state tuple per aggregate spec, aligned with the query's
            aggregate list: ``("count", counts)``, ``("sum", sums,
            non_null_counts)`` or ``("extreme", values, null_mask)``.
    """

    num_groups: int
    keys: list
    states: list


def _shape_groups(output: OutputColumns, query: Query):
    """Group codes + representative rows of ``output`` (serial semantics)."""
    group_names = [column.key() for column in query.group_by]
    positions = [_column_index(output, name) for name in group_names]
    key_codes = [
        _factorize(*output.columns[position])[0] for position in positions
    ]
    codes, representative_rows = _group_codes(key_codes, output.row_count)
    if query.group_by and output.row_count == 0:
        num_groups = 0
        representative_rows = representative_rows[:0]
    else:
        num_groups = int(representative_rows.size)
    return group_names, positions, codes, representative_rows, num_groups


def partial_aggregate(output: OutputColumns, query: Query) -> PartialAggregate:
    """Fold one shard's merged rows into per-group partial states."""
    _names, positions, codes, representative_rows, num_groups = _shape_groups(
        output, query
    )
    keys = []
    for position in positions:
        values, nulls = output.columns[position]
        keys.append((values[representative_rows], nulls[representative_rows]))

    states = []
    for spec in query.aggregates:
        states.append(_partial_state(spec, codes, num_groups, output))
    return PartialAggregate(num_groups=num_groups, keys=keys, states=states)


def _partial_state(
    spec: AggregateSpec, codes: np.ndarray, num_groups: int, output: OutputColumns
):
    if spec.argument is None:
        counts = np.bincount(codes, minlength=num_groups).astype(np.int64)
        return ("count", counts)
    position = _column_index(output, spec.argument.key())
    values, nulls = output.columns[position]
    mask = ~nulls
    if spec.function is AggregateFunction.COUNT:
        counts = np.bincount(codes[mask], minlength=num_groups).astype(np.int64)
        return ("count", counts)
    if spec.function in (AggregateFunction.SUM, AggregateFunction.AVG):
        sums = _group_sums(codes, values, mask, num_groups)
        non_null = np.bincount(codes[mask], minlength=num_groups).astype(np.int64)
        return ("sum", sums, non_null)
    value_codes, uniques = _factorize(values, nulls)
    extreme_values, null_mask = _group_extreme(
        codes,
        value_codes,
        uniques,
        mask,
        num_groups,
        take_max=spec.function is AggregateFunction.MAX,
    )
    return ("extreme", extreme_values, null_mask)


def _concat(arrays: list[np.ndarray]) -> np.ndarray:
    """Concatenate per-shard arrays, upcasting to object on dtype mismatch.

    A shard whose groups are all-NULL for a MIN/MAX argument carries an
    object-dtype placeholder array while other shards carry the column's
    native dtype; mixing them must not let NumPy coerce values.
    """
    if len({array.dtype for array in arrays}) > 1:
        arrays = [array.astype(object) for array in arrays]
    return np.concatenate(arrays)


def combine_partial_aggregates(
    partials: list[PartialAggregate], query: Query
) -> OutputColumns:
    """Combine per-shard partial states (in shard order) into the final rows.

    Byte-identical to serially aggregating the partition-order-merged rows:
    groups are re-grouped by their representative keys with the same
    first-seen semantics, counts and exact sums are added, and extremes take
    the extreme of the per-shard extremes.
    """
    group_names = [column.key() for column in query.group_by]
    total = sum(partial.num_groups for partial in partials)
    concatenated_keys = []
    for position in range(len(group_names)):
        values = _concat([partial.keys[position][0] for partial in partials])
        nulls = np.concatenate([partial.keys[position][1] for partial in partials])
        concatenated_keys.append((values, nulls))

    key_codes = [_factorize(values, nulls)[0] for values, nulls in concatenated_keys]
    codes, representative_rows = _group_codes(key_codes, total)
    if query.group_by and total == 0:
        num_groups = 0
        representative_rows = representative_rows[:0]
    else:
        num_groups = int(representative_rows.size)

    out_names = list(group_names) + [spec.label() for spec in query.aggregates]
    columns: list[tuple[np.ndarray, np.ndarray]] = []
    for values, nulls in concatenated_keys:
        columns.append((values[representative_rows], nulls[representative_rows]))

    for index, spec in enumerate(query.aggregates):
        states = [partial.states[index] for partial in partials]
        columns.append(_combine_state(spec, states, codes, num_groups))
    return OutputColumns(names=out_names, columns=columns, row_count=num_groups)


def _combine_state(
    spec: AggregateSpec, states: list, codes: np.ndarray, num_groups: int
):
    kind = states[0][0]
    if kind == "count":
        addends = np.concatenate([state[1] for state in states])
        counts = np.zeros(num_groups, dtype=np.int64)
        np.add.at(counts, codes, addends)
        return counts, np.zeros(num_groups, dtype=np.bool_)
    if kind == "sum":
        sums = _concat([state[1] for state in states])
        non_null = np.concatenate([state[2] for state in states])
        total_non_null = np.zeros(num_groups, dtype=np.int64)
        np.add.at(total_non_null, codes, non_null)
        accumulator = np.zeros(num_groups, dtype=object)
        if sums.size:
            np.add.at(accumulator, codes, sums)
        all_null = total_non_null == 0
        if spec.function is AggregateFunction.SUM:
            return accumulator, all_null
        averages = np.zeros(num_groups, dtype=np.float64)
        safe = ~all_null
        averages[safe] = accumulator[safe].astype(np.float64) / total_non_null[safe]
        return averages, all_null
    values = _concat([state[1] for state in states])
    nulls = np.concatenate([state[2] for state in states])
    value_codes, uniques = _factorize(values, nulls)
    return _group_extreme(
        codes,
        value_codes,
        uniques,
        ~nulls,
        num_groups,
        take_max=spec.function is AggregateFunction.MAX,
    )

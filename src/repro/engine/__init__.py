"""Execution engine: physical execution of plans under any model.

* :mod:`repro.engine.metrics` — runtime work counters and the execution
  context threaded through every operator (forked per morsel under
  parallel execution, reduced deterministically at the end).
* :mod:`repro.engine.executor` — model-specific entry points over the
  unified physical-operator layer (:mod:`repro.physical`).
* :mod:`repro.engine.parallel` — the morsel-driven parallel driver.
* :mod:`repro.engine.result` — query results returned to callers.
* :mod:`repro.engine.session` — the high-level public API (`Session`).
"""

from repro.engine.metrics import ExecContext, ExecutionMetrics, aggregate_metrics
from repro.engine.result import QueryResult
from repro.engine.session import PreparedPlan, Session

__all__ = [
    "ExecContext",
    "ExecutionMetrics",
    "PreparedPlan",
    "QueryResult",
    "Session",
    "aggregate_metrics",
]

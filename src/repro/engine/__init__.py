"""Execution engine: physical execution of plans under either model.

* :mod:`repro.engine.metrics` — runtime work counters and the execution
  context threaded through every operator.
* :mod:`repro.engine.executor` — plan walkers for tagged and traditional
  execution.
* :mod:`repro.engine.result` — query results returned to callers.
* :mod:`repro.engine.session` — the high-level public API (`Session`).
"""

from repro.engine.metrics import ExecContext, ExecutionMetrics, aggregate_metrics
from repro.engine.result import QueryResult
from repro.engine.session import PreparedPlan, Session

__all__ = [
    "ExecContext",
    "ExecutionMetrics",
    "PreparedPlan",
    "QueryResult",
    "Session",
    "aggregate_metrics",
]

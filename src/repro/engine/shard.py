"""Shared-nothing multi-process sharded execution (scatter–gather).

The morsel driver (:mod:`repro.engine.parallel`) parallelizes with Python
threads, so CPU-bound predicate and join work serializes on the GIL.  This
module adds the process tier behind the ``shards=N`` knob: the coordinator
splits the partitioning alias's partitions into **contiguous blocks** (one
per shard, ``np.array_split`` geometry), ships each block to a worker
*process* together with everything needed to re-create the physical plan —
the logical plan, tag annotations, predicate tree, the frozen
:class:`~repro.kernels.config.KernelConfig` and the resolved scan-candidate
bitmaps — and gathers the per-shard outputs back **in shard order**.

Because shard blocks are contiguous in partition order, gathering in shard
order *is* the partition-order merge: for a fixed partition count the result
is byte-identical to serial execution at any shard count (the differential
suite checks every combination against the oracle).  ``shards=1`` never
enters this module — it is exactly the in-process path.

Design notes:

* **Shared-nothing workers.**  A worker never sees the coordinator's
  :class:`~repro.storage.catalog.Catalog` (whose write lock and durability
  controller are process-local and unpicklable).  It receives the scanned
  base tables — immutable objects — and wraps them in a read-only
  :class:`~repro.mutation.snapshot.CatalogSnapshot` pinned at the
  coordinator's snapshot version.  No WAL writer, no mutation path: the
  durability invariants of the mutation subsystem are untouched.
* **Table shipping is cached.**  Immutable tables are stamped with a ship
  token on first use; each pool worker remembers which tokens it holds (an
  LRU bounded by :data:`WORKER_TABLE_CACHE_LIMIT`), so steady-state queries
  ship only partition geometry, not gigabytes of columns.  Object identity
  implies data identity because mutation commits register *new* table
  objects.
* **Metrics travel with results.**  Each worker runs its morsels against
  forked :class:`~repro.engine.metrics.ExecContext` children (exactly like
  the in-process driver) and returns the merged counters; the coordinator
  absorbs them through the same fork/absorb path, so ``--explain-analyze``,
  the feedback loop and all work counters keep working.  Page-cache
  hit/miss splits legitimately differ (each shard has a private cache) but
  the *total* page accesses, values read and every work counter match
  serial execution at the same partition count.
* **Aggregation/LIMIT pushdown.**  When every aggregate is exactly
  mergeable (:mod:`repro.engine.partial_agg`) workers pre-aggregate and the
  coordinator combines partial states; bare-LIMIT queries return at most
  ``LIMIT`` rows per shard.  Both transfers shrink without changing a byte
  of output.

The worker pool is process-wide, keyed by shard count (like the morsel
thread pools), guarded for exclusive use per query, and torn down by
:func:`shutdown_shard_pools` — registered via ``atexit`` alongside
:func:`repro.engine.parallel.shutdown_morsel_pools`.

The start method defaults to ``forkserver`` when available (``spawn``
otherwise): forking from the single-threaded server process sidesteps the
fork-while-multithreaded hazard that morsel/service thread pools would pose.
Override with the ``REPRO_SHARD_START_METHOD`` environment variable.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import threading
import traceback
from dataclasses import dataclass

from repro.engine.metrics import ExecContext
from repro.engine.partial_agg import (
    aggregation_pushdown_supported,
    combine_partial_aggregates,
    partial_aggregate,
)
from repro.engine.result import OutputColumns
from repro.physical.batches import merge_output_columns
from repro.physical.compile import compile_plan, plan_scan_aliases
from repro.storage.table import TablePartition

#: Environment variable overriding the multiprocessing start method used for
#: shard workers (``fork`` / ``forkserver`` / ``spawn``).
START_METHOD_ENV = "REPRO_SHARD_START_METHOD"

#: Most-recently-used tables each worker process keeps cached between
#: queries.  Bounded so long-lived pools serving many catalogs cannot grow
#: without limit; evictions are reported back so the coordinator re-ships.
WORKER_TABLE_CACHE_LIMIT = 32


class ShardExecutionError(RuntimeError):
    """A worker process failed while executing its shard (traceback attached)."""


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to re-create and run the physical plan.

    The spec is the shard-shippable projection of a
    :class:`~repro.engine.session.PreparedPlan`: the logical plan plus the
    frozen kernel configuration and the snapshot/table-version pins —
    everything *except* process-local state (catalog locks, access-path
    managers).  Access paths are resolved at the coordinator; only the
    resulting candidate bitmaps ship.

    Attributes:
        kind: execution model (``"tagged"`` / ``"traditional"`` / ``"bypass"``).
        plan: the logical plan (compiled per partition on the worker).
        annotations: tag maps for tagged plans.
        predicate_tree: the query's predicate tree.
        three_valued: SQL three-valued logic flag.
        kernels: frozen :class:`~repro.kernels.config.KernelConfig` (or None).
        collect_feedback: record per-predicate/per-operator observations.
        feedback_excluded_aliases: aliases whose observations are biased by
            candidate pruning (see :class:`~repro.engine.metrics.ExecContext`).
        scan_candidates: alias -> candidate bitmap, resolved at the
            coordinator from the access-path layer.
        partition_alias: the alias whose scan is partitioned.
        partition_table: the partitioning alias's base-table name.
        snapshot_version: catalog version the read is pinned at.
        table_versions: per-table version pins of the shipped tables.
        push_mode: ``"none"`` | ``"aggregate"`` | ``"limit"`` pushdown.
        query: the bound query (shipped only when a pushdown needs it).
        trace: when True the worker runs under a private
            :class:`~repro.obs.trace.Tracer` and ships the span tree back as
            plain data; the coordinator re-anchors it into the query trace.
            Never changes rows, metrics, or IO accounting.
    """

    kind: str
    plan: object
    annotations: object
    predicate_tree: object
    three_valued: bool
    kernels: object
    collect_feedback: bool
    feedback_excluded_aliases: frozenset
    scan_candidates: dict
    partition_alias: str
    partition_table: str
    snapshot_version: int
    table_versions: dict
    push_mode: str = "none"
    query: object = None
    trace: bool = False


@dataclass(frozen=True)
class ShardTask:
    """One worker's assignment: the spec plus its contiguous partition block.

    Attributes:
        spec: the shared :class:`ShardSpec`.
        ranges: ``(index, start, stop)`` per partition, ascending — the
            worker re-creates :class:`~repro.storage.table.TablePartition`
            objects from the shipped base table.
        parallelism: intra-shard morsel threads (the session's
            ``parallelism`` knob applies *within* each worker process).
    """

    spec: ShardSpec
    ranges: tuple
    parallelism: int = 1


# --------------------------------------------------------------------------- #
# Worker process
# --------------------------------------------------------------------------- #
def _run_task(task: ShardTask, tables: dict) -> tuple:
    """Execute one shard's partition block.

    Returns ``(payload, metrics, iostats, trace_payload)`` where
    ``trace_payload`` is the shipped span tree (plain data) when the spec
    asked for tracing, else ``None``.
    """
    from repro.engine.parallel import _morsel_pool
    from repro.mutation.snapshot import CatalogSnapshot

    spec = task.spec
    catalog = CatalogSnapshot(
        version=spec.snapshot_version,
        tables=tables,
        table_versions=dict(spec.table_versions),
    )
    tracer = None
    if spec.trace:
        from repro.obs.trace import Tracer

        tracer = Tracer()
    context = ExecContext(
        collect_feedback=spec.collect_feedback,
        feedback_excluded_aliases=spec.feedback_excluded_aliases,
        kernels=spec.kernels,
        tracer=tracer,
    )
    base_table = tables[spec.partition_table]
    morsels = [
        compile_plan(
            spec.kind,
            spec.plan,
            catalog,
            annotations=spec.annotations,
            predicate_tree=spec.predicate_tree,
            three_valued=spec.three_valued,
            partition_alias=spec.partition_alias,
            partition=TablePartition(
                table=base_table, index=index, start=start, stop=stop
            ),
            scan_candidates=spec.scan_candidates,
        )
        for index, start, stop in task.ranges
    ]

    def run_morsel(block_range, physical) -> tuple[OutputColumns, ExecContext]:
        child = context.fork()
        if child.tracer is not None:
            _index, start, stop = block_range
            with child.tracer.span("morsel", start_row=start, stop_row=stop):
                output = physical.execute(child)
        else:
            output = physical.execute(child)
        return output, child

    if tracer is not None:
        tracer.begin("shard", pid=os.getpid(), partitions=len(task.ranges))
    if task.parallelism <= 1 or len(morsels) == 1:
        outcomes = [
            run_morsel(block_range, physical)
            for block_range, physical in zip(task.ranges, morsels)
        ]
    else:
        pool = _morsel_pool(min(task.parallelism, len(morsels)))
        futures = [
            pool.submit(run_morsel, block_range, physical)
            for block_range, physical in zip(task.ranges, morsels)
        ]
        outcomes = [future.result() for future in futures]

    outputs = []
    for output, child in outcomes:
        context.absorb(child)
        context.metrics.morsels_executed += 1
        outputs.append(output)
    merged = merge_output_columns(outputs)
    if tracer is not None:
        tracer.end(
            pages_read=context.iostats.pages_read,
            morsels=context.metrics.morsels_executed,
        )

    if spec.push_mode == "aggregate":
        payload = ("partial", partial_aggregate(merged, spec.query))
    elif spec.push_mode == "limit":
        from repro.engine.postprocess import limit

        payload = ("rows", limit(merged, spec.query.limit))
    else:
        payload = ("rows", merged)
    trace_payload = tracer.to_payload() if tracer is not None else None
    return payload, context.metrics, context.iostats, trace_payload


def _worker_main(connection) -> None:
    """Worker-process loop: receive tasks, cache tables, ship results back.

    Protocol (coordinator -> worker): ``("exec", task, tables_payload)``
    where ``tables_payload`` maps table name to ``(token, table_or_None)``
    (None = use the cached copy), or ``None`` for graceful shutdown.
    Worker -> coordinator:
    ``("ok", payload, metrics, iostats, evicted, trace_payload)`` or
    ``("error", formatted_traceback)``.
    """
    from repro.engine.parallel import shutdown_morsel_pools

    cache: dict[int, object] = {}
    try:
        _worker_loop(connection, cache)
    finally:
        # The worker's own intra-shard morsel threads: tear them down through
        # the same helper the coordinator's atexit hook uses.
        shutdown_morsel_pools(wait=False)


def _worker_loop(connection, cache: dict) -> None:
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        try:
            _command, task, tables_payload = message
            tables = {}
            in_use = set()
            for name, (token, table) in tables_payload.items():
                if table is None:
                    table = cache[token]
                cache.pop(token, None)
                cache[token] = table  # (re-)insert at LRU tail
                tables[name] = table
                in_use.add(token)
            evicted = []
            for token in list(cache):
                if len(cache) <= WORKER_TABLE_CACHE_LIMIT:
                    break
                if token in in_use:
                    continue
                del cache[token]
                evicted.append(token)
            payload, metrics, iostats, trace_payload = _run_task(task, tables)
            connection.send(
                ("ok", payload, metrics, iostats, tuple(evicted), trace_payload)
            )
        except BaseException:  # noqa: BLE001 - shipped back as a traceback
            try:
                connection.send(("error", traceback.format_exc()))
            except (OSError, ValueError):
                return


# --------------------------------------------------------------------------- #
# The pool
# --------------------------------------------------------------------------- #
def _start_method() -> str:
    override = os.environ.get(START_METHOD_ENV)
    if override:
        return override
    if "forkserver" in multiprocessing.get_all_start_methods():
        return "forkserver"
    return "spawn"


#: Stamps immutable tables with a process-unique ship token on first use.
_TOKEN_ATTR = "_shard_ship_token"
_TOKENS = itertools.count(1)
_TOKEN_LOCK = threading.Lock()


def _table_token(table) -> int:
    token = getattr(table, _TOKEN_ATTR, None)
    if token is None:
        with _TOKEN_LOCK:
            token = getattr(table, _TOKEN_ATTR, None)
            if token is None:
                token = next(_TOKENS)
                setattr(table, _TOKEN_ATTR, token)
    return token


class _ShardWorker:
    """One pool slot: the process, its pipe, and the tokens it caches."""

    __slots__ = ("process", "connection", "shipped")

    def __init__(self, process, connection) -> None:
        self.process = process
        self.connection = connection
        self.shipped: set[int] = set()


class ShardPool:
    """A fixed-size pool of shard worker processes with cached table shipping.

    ``run`` is serialized by a lock: one scatter–gather at a time per pool
    (concurrent queries at the same shard count queue; inter-query
    concurrency composes with the service layer's thread pool unchanged,
    results are the same either way).
    """

    def __init__(self, shards: int) -> None:
        if shards < 2:
            raise ValueError(f"a shard pool needs at least 2 workers, got {shards}")
        self.shards = shards
        context = multiprocessing.get_context(_start_method())
        self._workers: list[_ShardWorker] = []
        self._lock = threading.Lock()
        self._closed = False
        try:
            for index in range(shards):
                parent, child = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(child,),
                    name=f"repro-shard-{shards}-{index}",
                    daemon=True,
                )
                process.start()
                child.close()
                self._workers.append(_ShardWorker(process, parent))
        except BaseException:
            self._close_locked()
            raise

    def run(self, spec: ShardSpec, tables: dict, assignments: list, parallelism: int):
        """Scatter one task per assignment block; gather results in order.

        Returns ``[(payload, metrics, iostats, trace_payload), ...]`` in
        shard (= partition) order.  A query error inside a worker raises
        :class:`ShardExecutionError` with the worker traceback and leaves the
        pool usable; a transport failure tears the pool down (a fresh pool is
        created on the next sharded query).
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("shard pool is closed")
            used = self._workers[: len(assignments)]
            try:
                sent_tokens: list[list[int]] = []
                for worker, ranges in zip(used, assignments):
                    payload = {}
                    tokens = []
                    for name, table in tables.items():
                        token = _table_token(table)
                        shipped = None if token in worker.shipped else table
                        payload[name] = (token, shipped)
                        tokens.append(token)
                    task = ShardTask(
                        spec=spec, ranges=tuple(ranges), parallelism=parallelism
                    )
                    worker.connection.send(("exec", task, payload))
                    sent_tokens.append(tokens)

                results = []
                error: ShardExecutionError | None = None
                for worker, tokens in zip(used, sent_tokens):
                    reply = worker.connection.recv()
                    if reply[0] == "error":
                        if error is None:
                            error = ShardExecutionError(
                                f"shard worker failed:\n{reply[1]}"
                            )
                        continue
                    _tag, payload, metrics, iostats, evicted, trace_payload = reply
                    worker.shipped.update(tokens)
                    worker.shipped.difference_update(evicted)
                    results.append((payload, metrics, iostats, trace_payload))
                if error is not None:
                    raise error
                return results
            except ShardExecutionError:
                raise
            except BaseException:
                # Transport-level failure (dead worker, broken pipe): the
                # pool's pipes may hold stale state — discard it entirely.
                self._close_locked()
                _discard_pool(self)
                raise

    def shutdown(self) -> None:
        """Terminate every worker (idempotent)."""
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.connection.send(None)
            except (OSError, ValueError):
                pass
        for worker in self._workers:
            try:
                worker.connection.close()
            except (OSError, ValueError):
                pass
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)


# Shard pools are shared process-wide, one per shard count, mirroring the
# morsel thread pools — worker processes are expensive to start (a fresh
# interpreter imports the engine), so serving reuses them across queries.
_SHARD_POOLS: dict[int, ShardPool] = {}
_SHARD_POOLS_LOCK = threading.Lock()


def shard_pool(shards: int) -> ShardPool:
    """The process-wide pool for ``shards`` workers (created on first use)."""
    with _SHARD_POOLS_LOCK:
        pool = _SHARD_POOLS.get(shards)
        if pool is None:
            pool = ShardPool(shards)
            _SHARD_POOLS[shards] = pool
        return pool


def _discard_pool(pool: ShardPool) -> None:
    with _SHARD_POOLS_LOCK:
        if _SHARD_POOLS.get(pool.shards) is pool:
            del _SHARD_POOLS[pool.shards]


def shutdown_shard_pools() -> None:
    """Shut down every process-wide shard pool (re-created on next use).

    Registered via ``atexit`` together with
    :func:`repro.engine.parallel.shutdown_morsel_pools`, so worker processes
    never outlive (or leak from) the coordinator.
    """
    with _SHARD_POOLS_LOCK:
        pools = list(_SHARD_POOLS.values())
        _SHARD_POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_shard_pools)


# --------------------------------------------------------------------------- #
# Coordinator entry point
# --------------------------------------------------------------------------- #
def scatter_gather(
    *,
    kind: str,
    plan,
    catalog,
    context: ExecContext,
    annotations,
    predicate_tree,
    three_valued: bool,
    scan_candidates: dict,
    alias: str,
    partitions: list,
    shards: int,
    parallelism: int,
    query=None,
) -> OutputColumns:
    """Execute ``partitions`` across shard workers; gather in partition order.

    Called by :func:`repro.engine.parallel.execute_plan` once partition
    pruning has run — only live partitions are shipped, so the coordinator
    keeps all pruning accounting.  Per-shard metrics/IO counters are merged
    back through ``context.fork()``/``absorb()``; when aggregation was pushed
    down, ``context.aggregates_prefolded`` is set so output shaping skips the
    (already folded) aggregate step.
    """
    scans = plan_scan_aliases(kind, plan)
    tables = {name: catalog.get(name) for name in sorted(set(scans.values()))}

    push_mode = "none"
    if query is not None:
        if query.aggregates:
            if aggregation_pushdown_supported(query, catalog):
                push_mode = "aggregate"
        elif (
            query.limit is not None
            and not query.distinct
            and not query.order_by
        ):
            push_mode = "limit"

    spec = ShardSpec(
        kind=kind,
        plan=plan,
        annotations=annotations,
        predicate_tree=predicate_tree,
        three_valued=three_valued,
        kernels=context.kernels,
        collect_feedback=context.collect_feedback,
        feedback_excluded_aliases=context.feedback_excluded_aliases,
        scan_candidates=scan_candidates,
        partition_alias=alias,
        partition_table=scans[alias],
        snapshot_version=catalog.version,
        table_versions={
            name: catalog.table_version(name) for name in tables
        },
        push_mode=push_mode,
        query=query if push_mode != "none" else None,
        trace=context.tracer is not None,
    )

    # Contiguous blocks in partition order (np.array_split geometry): the
    # shard-order gather below therefore *is* the partition-order merge.
    count = min(shards, len(partitions))
    base, extra = divmod(len(partitions), count)
    assignments = []
    cursor = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        block = partitions[cursor : cursor + size]
        cursor += size
        assignments.append(
            [(partition.index, partition.start, partition.stop) for partition in block]
        )

    tracer = context.tracer
    if tracer is not None:
        tracer.begin(
            "shard.scatter_gather", shards=count, push_mode=push_mode
        )
    try:
        results = shard_pool(shards).run(spec, tables, assignments, parallelism)
    except BaseException:
        if tracer is not None:
            tracer.end(error=True)
        raise

    outputs = []
    partials = []
    for payload, metrics, iostats, trace_payload in results:
        child = context.fork()
        child.metrics = metrics
        child.iostats = iostats
        context.absorb(child)
        if tracer is not None and trace_payload is not None:
            # Worker clocks have their own perf_counter origin; absorb
            # re-anchors the shipped spans under the scatter-gather span
            # (durations exact, cross-process offsets approximate).
            tracer.absorb_payload(trace_payload)
        if payload[0] == "partial":
            partials.append(payload[1])
        else:
            outputs.append(payload[1])
    context.metrics.shards_executed += len(results)
    if tracer is not None:
        tracer.end()

    if push_mode == "aggregate":
        context.aggregates_prefolded = True
        return combine_partial_aggregates(partials, query)
    merged = merge_output_columns(outputs)
    if push_mode == "limit":
        from repro.engine.postprocess import limit

        merged = limit(merged, query.limit)
    return merged

"""Physical execution of logical plans under either execution model."""

from __future__ import annotations

import numpy as np

from repro.baseline.operators import (
    FilterOperator,
    HashJoinOperator,
    ScanOperator,
    UnionOperator,
)
from repro.baseline.planners import TraditionalPlan
from repro.baseline.relation import Relation
from repro.core.operators import (
    TaggedFilterOperator,
    TaggedJoinOperator,
    TaggedProjectOperator,
)
from repro.core.predtree import PredicateTree
from repro.core.tagged_relation import TaggedRelation
from repro.core.tagmap import PlanTagAnnotations, ProjectionTagSet
from repro.engine.metrics import ExecContext
from repro.engine.result import OutputColumns, materialize_output
from repro.plan.logical import FilterNode, JoinNode, PlanNode, ProjectNode, TableScanNode
from repro.plan.query import Query
from repro.storage.catalog import Catalog


class TaggedExecutor:
    """Runs a tag-annotated logical plan with the tagged operators."""

    def __init__(
        self,
        catalog: Catalog,
        query: Query,
        annotations: PlanTagAnnotations,
        predicate_tree: PredicateTree | None,
    ) -> None:
        self._catalog = catalog
        self._query = query
        self._annotations = annotations
        self._tree = predicate_tree

    def execute(self, plan: PlanNode, context: ExecContext) -> OutputColumns:
        """Execute ``plan`` and return the materialized output columns."""
        if not isinstance(plan, ProjectNode):
            raise ValueError("tagged plans must be rooted at a ProjectNode")
        relation = self._execute_node(plan.child, context)

        projection = self._annotations.projection or ProjectionTagSet(
            allowed=set(relation.slices)
        )
        residual = self._tree.expression if self._tree is not None else None
        project = TaggedProjectOperator(projection, residual_predicate=residual)
        positions = project.execute(relation, context)
        return materialize_output(relation.tables, relation.indices, positions, plan.columns)

    def _execute_node(self, node: PlanNode, context: ExecContext) -> TaggedRelation:
        if isinstance(node, TableScanNode):
            context.metrics.operators_executed += 1
            return TaggedRelation.from_base_table(node.alias, self._catalog.get(node.table_name))

        if isinstance(node, FilterNode):
            child = self._execute_node(node.child, context)
            tag_map = self._annotations.filter_maps.get(node.node_id)
            if tag_map is None:
                return child
            operator = TaggedFilterOperator(node.predicate, tag_map)
            return operator.execute(child, context)

        if isinstance(node, JoinNode):
            left = self._execute_node(node.left, context)
            right = self._execute_node(node.right, context)
            tag_map = self._annotations.join_maps[node.node_id]
            operator = TaggedJoinOperator(node.conditions, tag_map)
            return operator.execute(left, right, context)

        if isinstance(node, ProjectNode):
            raise ValueError("nested ProjectNode encountered; plans must have a single root")

        raise TypeError(f"unknown plan node type: {type(node).__name__}")


class TraditionalExecutor:
    """Runs one or more conventional subplans, unioning their results."""

    def __init__(self, catalog: Catalog, query: Query) -> None:
        self._catalog = catalog
        self._query = query

    def execute(self, plan: TraditionalPlan, context: ExecContext) -> OutputColumns:
        """Execute a traditional plan and return the materialized output columns."""
        if not plan.subplans:
            raise ValueError("traditional plan has no subplans")

        relations: list[Relation] = []
        project_columns = None
        for subplan in plan.subplans:
            if not isinstance(subplan, ProjectNode):
                raise ValueError("traditional subplans must be rooted at a ProjectNode")
            project_columns = subplan.columns
            relations.append(self._execute_node(subplan.child, context))

        if len(relations) == 1 and not plan.needs_union:
            final = relations[0]
        else:
            non_empty = [relation for relation in relations if relation.num_rows > 0]
            if not non_empty:
                final = relations[0]
            else:
                final = UnionOperator().execute(non_empty, context)

        positions = np.arange(final.num_rows, dtype=np.int64)
        context.metrics.output_rows += final.num_rows
        return materialize_output(final.tables, final.indices, positions, project_columns or [])

    def _execute_node(self, node: PlanNode, context: ExecContext) -> Relation:
        if isinstance(node, TableScanNode):
            return ScanOperator(node.alias, self._catalog.get(node.table_name)).execute(context)

        if isinstance(node, FilterNode):
            child = self._execute_node(node.child, context)
            return FilterOperator(node.predicate).execute(child, context)

        if isinstance(node, JoinNode):
            left = self._execute_node(node.left, context)
            right = self._execute_node(node.right, context)
            return HashJoinOperator(node.conditions).execute(left, right, context)

        if isinstance(node, ProjectNode):
            raise ValueError("nested ProjectNode encountered; plans must have a single root")

        raise TypeError(f"unknown plan node type: {type(node).__name__}")

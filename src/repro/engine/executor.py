"""Physical execution of logical plans under either execution model.

Historically this module held two independent plan walkers (and the bypass
package a third).  All three now lower onto the unified physical-operator
layer (:mod:`repro.physical`): the executor classes remain as the stable,
model-specific entry points — they validate their inputs, compile the plan
with :func:`repro.physical.compile.compile_plan`, and run the resulting
operator tree.  Partitioned, parallel execution goes through
:mod:`repro.engine.parallel` instead, which compiles one tree per morsel.
"""

from __future__ import annotations

from repro.baseline.planners import TraditionalPlan
from repro.core.predtree import PredicateTree
from repro.core.tagmap import PlanTagAnnotations
from repro.engine.metrics import ExecContext
from repro.engine.result import OutputColumns
from repro.physical.compile import compile_plan
from repro.plan.logical import PlanNode
from repro.plan.query import Query
from repro.storage.catalog import Catalog


class TaggedExecutor:
    """Runs a tag-annotated logical plan with the tagged operators."""

    def __init__(
        self,
        catalog: Catalog,
        query: Query,
        annotations: PlanTagAnnotations,
        predicate_tree: PredicateTree | None,
    ) -> None:
        self._catalog = catalog
        self._query = query
        self._annotations = annotations
        self._tree = predicate_tree

    def execute(self, plan: PlanNode, context: ExecContext) -> OutputColumns:
        """Execute ``plan`` and return the materialized output columns."""
        physical = compile_plan(
            "tagged",
            plan,
            self._catalog,
            annotations=self._annotations,
            predicate_tree=self._tree,
        )
        return physical.execute(context)


class TraditionalExecutor:
    """Runs one or more conventional subplans, unioning their results."""

    def __init__(self, catalog: Catalog, query: Query) -> None:
        self._catalog = catalog
        self._query = query

    def execute(self, plan: TraditionalPlan, context: ExecContext) -> OutputColumns:
        """Execute a traditional plan and return the materialized output columns."""
        physical = compile_plan("traditional", plan, self._catalog)
        return physical.execute(context)

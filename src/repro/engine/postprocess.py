"""Output shaping: aggregation, DISTINCT, ORDER BY and LIMIT.

These steps run on the :class:`~repro.engine.result.OutputColumns` produced
by the projection operator, after the execution model (traditional, tagged or
bypass) has done its work.  They are therefore shared by every planner and do
not interact with tag management — but they are part of the timed execution,
just as they would be in a real engine.  Under parallel execution they run
exactly once, on the partition-order-merged output.

All three shaping steps are vectorized with NumPy.  The common primitive is
*factorization* (:func:`_factorize`): each column is mapped to dense integer
codes such that equal values (and all NULLs) get equal codes and code order
matches value order.  Grouping and DISTINCT then reduce to ``np.unique`` over
small integer matrices, and ORDER BY becomes one ``np.lexsort`` over
rank-encoded keys — no per-row Python loops anywhere on the shaping path.
"""

from __future__ import annotations

import numpy as np

from repro.engine.result import OutputColumns
from repro.plan.postselect import AggregateFunction, AggregateSpec, OrderItem
from repro.plan.query import Query


class OutputShapingError(ValueError):
    """Raised when an output-shaping clause references an unknown column."""


def apply_output_shaping(
    output: OutputColumns, query: Query, skip_aggregates: bool = False
) -> OutputColumns:
    """Apply aggregation, DISTINCT, ORDER BY and LIMIT to ``output``.

    ``skip_aggregates`` is set by the session when sharded execution already
    pushed the aggregation down and combined the partial states
    (:mod:`repro.engine.partial_agg`): ``output`` then *is* the aggregated
    row set and only the later shaping steps still apply.
    """
    if query.aggregates and not skip_aggregates:
        output = aggregate(output, query.group_by, query.aggregates)
    if query.distinct:
        output = distinct(output)
    if query.order_by:
        output = order_by(output, query.order_by)
    if query.limit is not None:
        output = limit(output, query.limit)
    return output


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def _column_index(output: OutputColumns, name: str) -> int:
    try:
        return output.names.index(name)
    except ValueError:
        raise OutputShapingError(
            f"output column {name!r} not found; available: {', '.join(output.names)}"
        ) from None


def _take(output: OutputColumns, positions: np.ndarray) -> OutputColumns:
    """A new OutputColumns holding only the rows at ``positions``."""
    columns = [(values[positions], nulls[positions]) for values, nulls in output.columns]
    return OutputColumns(names=list(output.names), columns=columns, row_count=int(positions.size))


def _factorize(values: np.ndarray, nulls: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Dense integer codes for a column: equal values get equal codes.

    Returns ``(codes, uniques)``.  Non-NULL rows get codes ``0 .. U-1`` in
    ascending value order; every NULL row gets code ``-1``, so NULLs compare
    equal to each other and unequal to every value — the semantics GROUP BY,
    DISTINCT and ORDER BY all share.
    """
    codes = np.full(values.shape[0], -1, dtype=np.int64)
    mask = ~nulls
    if mask.any():
        uniques, inverse = np.unique(values[mask], return_inverse=True)
        codes[mask] = inverse.astype(np.int64, copy=False)
    else:
        uniques = values[:0]
    return codes, uniques


def _group_codes(
    code_columns: list[np.ndarray], num_rows: int
) -> tuple[np.ndarray, np.ndarray]:
    """Group ids (first-seen order) from per-column factorized codes.

    Returns ``(group_of_row, representative_row)``: one dense group id per
    input row, groups numbered in order of first appearance — matching the
    SQL-typical (and previously per-row Python) first-seen output order —
    plus the first input row of each group.
    """
    if not code_columns:
        # No GROUP BY: the whole input is one group (even when empty).
        return np.zeros(num_rows, dtype=np.int64), np.zeros(1, dtype=np.int64)
    matrix = np.stack(code_columns, axis=1)
    _uniques, first_rows, inverse = np.unique(
        matrix, axis=0, return_index=True, return_inverse=True
    )
    order = np.argsort(first_rows, kind="stable")
    remap = np.empty(order.size, dtype=np.int64)
    remap[order] = np.arange(order.size, dtype=np.int64)
    return remap[inverse.reshape(-1)], first_rows[order]


# --------------------------------------------------------------------------- #
# Aggregation
# --------------------------------------------------------------------------- #
def _sum_accumulator_dtype(values: np.ndarray) -> np.dtype:
    if np.issubdtype(values.dtype, np.floating):
        return np.dtype(np.float64)
    # Integer (and bool) sums accumulate Python ints in an object array:
    # arbitrary precision, like the per-row ``sum()`` this replaced — a
    # fixed-width accumulator would silently wrap past 2**63.
    return np.dtype(object)


def _group_sums(
    codes: np.ndarray, values: np.ndarray, mask: np.ndarray, num_groups: int
) -> np.ndarray:
    """Per-group sums over the non-NULL rows (``mask``), vectorized.

    ``np.add.at`` accumulates in row order, so float results are bit-identical
    to the left-to-right Python ``sum`` this replaces.
    """
    accumulator_dtype = _sum_accumulator_dtype(values)
    accumulator = np.zeros(num_groups, dtype=accumulator_dtype)
    if mask.any():
        addends = values[mask]
        if accumulator_dtype == np.dtype(object) and addends.dtype != np.dtype(object):
            # tolist() yields Python ints/bools, keeping the sum exact.
            addends = np.array(addends.tolist(), dtype=object)
        np.add.at(accumulator, codes[mask], addends)
    return accumulator


def _group_extreme(
    codes: np.ndarray,
    value_codes: np.ndarray,
    uniques: np.ndarray,
    mask: np.ndarray,
    num_groups: int,
    take_max: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-group MIN/MAX via factorized ranks (works for every value type).

    Returns ``(values, null_mask)``; groups with no non-NULL input are NULL.
    """
    if not mask.any() or uniques.size == 0:
        return np.zeros(num_groups, dtype=object), np.ones(num_groups, np.bool_)
    empty = ~np.isin(np.arange(num_groups), codes[mask])
    extreme = np.full(num_groups, -1 if take_max else np.iinfo(np.int64).max, dtype=np.int64)
    operation = np.maximum if take_max else np.minimum
    operation.at(extreme, codes[mask], value_codes[mask])
    extreme[empty] = 0  # placeholder rank; masked as NULL below
    return uniques[extreme], empty


def _count_distinct(
    codes: np.ndarray, value_codes: np.ndarray, mask: np.ndarray, num_groups: int
) -> np.ndarray:
    """Per-group COUNT(DISTINCT column) over non-NULL rows."""
    if not mask.any():
        return np.zeros(num_groups, dtype=np.int64)
    unique_pairs = np.unique(np.stack([codes[mask], value_codes[mask]], axis=1), axis=0)
    return np.bincount(unique_pairs[:, 0], minlength=num_groups).astype(np.int64)


def _evaluate_aggregate(
    spec: AggregateSpec,
    codes: np.ndarray,
    num_groups: int,
    output: OutputColumns,
) -> tuple[np.ndarray, np.ndarray]:
    """One aggregate column: ``(values, null_mask)`` with one row per group."""
    if spec.argument is None:
        counts = np.bincount(codes, minlength=num_groups).astype(np.int64)
        return counts, np.zeros(num_groups, dtype=np.bool_)

    position = _column_index(output, spec.argument.key())
    values, nulls = output.columns[position]
    mask = ~nulls
    never_null = np.zeros(num_groups, dtype=np.bool_)

    if spec.function is AggregateFunction.COUNT:
        if spec.distinct:
            value_codes, _uniques = _factorize(values, nulls)
            return _count_distinct(codes, value_codes, mask, num_groups), never_null
        counts = np.bincount(codes[mask], minlength=num_groups).astype(np.int64)
        return counts, never_null

    non_null_counts = np.bincount(codes[mask], minlength=num_groups).astype(np.int64)
    all_null = non_null_counts == 0

    if spec.function in (AggregateFunction.SUM, AggregateFunction.AVG):
        sums = _group_sums(codes, values, mask, num_groups)
        if spec.function is AggregateFunction.SUM:
            return sums, all_null
        averages = np.zeros(num_groups, dtype=np.float64)
        safe = ~all_null
        averages[safe] = sums[safe].astype(np.float64) / non_null_counts[safe]
        return averages, all_null

    if spec.function in (AggregateFunction.MIN, AggregateFunction.MAX):
        value_codes, uniques = _factorize(values, nulls)
        return _group_extreme(
            codes,
            value_codes,
            uniques,
            mask,
            num_groups,
            take_max=spec.function is AggregateFunction.MAX,
        )

    raise OutputShapingError(f"unsupported aggregate function {spec.function!r}")


def aggregate(
    output: OutputColumns,
    group_by: list,
    aggregates: list[AggregateSpec],
) -> OutputColumns:
    """GROUP BY + aggregate evaluation, fully vectorized.

    With an empty ``group_by`` the whole input forms a single group; in that
    case SQL still produces one output row even for an empty input.  Groups
    appear in first-seen input order, as before the vectorization.
    """
    group_names = [column.key() for column in group_by]
    group_positions = [_column_index(output, name) for name in group_names]
    key_codes = [
        _factorize(*output.columns[position])[0] for position in group_positions
    ]

    codes, representative_rows = _group_codes(key_codes, output.row_count)
    if group_by and output.row_count == 0:
        num_groups = 0
        representative_rows = representative_rows[:0]
    else:
        num_groups = int(representative_rows.size)

    out_names = list(group_names) + [spec.label() for spec in aggregates]
    columns: list[tuple[np.ndarray, np.ndarray]] = []
    for position in group_positions:
        values, nulls = output.columns[position]
        columns.append((values[representative_rows], nulls[representative_rows]))
    for spec in aggregates:
        columns.append(_evaluate_aggregate(spec, codes, num_groups, output))
    return OutputColumns(names=out_names, columns=columns, row_count=num_groups)


# --------------------------------------------------------------------------- #
# DISTINCT / ORDER BY / LIMIT
# --------------------------------------------------------------------------- #
def distinct(output: OutputColumns) -> OutputColumns:
    """Remove duplicate rows, keeping the first occurrence of each.

    Every column is factorized to integer codes and duplicates are found
    with one ``np.unique`` over the resulting row matrix (the structured-
    array formulation of multi-column uniqueness), replacing the previous
    per-row Python set.
    """
    if output.row_count == 0 or not output.columns:
        return output
    matrix = np.stack(
        [_factorize(values, nulls)[0] for values, nulls in output.columns], axis=1
    )
    _uniques, first_rows = np.unique(matrix, axis=0, return_index=True)
    return _take(output, np.sort(first_rows))


def order_by(output: OutputColumns, items: list[OrderItem]) -> OutputColumns:
    """Sort the output rows; NULLs sort last for every direction.

    Each key column is rank-encoded (ascending value order, NULLs mapped
    past the largest rank so they always sort last, descending keys
    rank-reversed) and a single stable ``np.lexsort`` orders the rows —
    ties keep their input order, exactly like the repeated stable sorts
    this replaces.
    """
    if output.row_count == 0 or not items:
        return output
    keys = []
    for item in items:
        values, nulls = output.columns[_column_index(output, item.key)]
        codes, uniques = _factorize(values, nulls)
        ranks = codes.copy()
        if item.descending:
            ranks[codes >= 0] = (uniques.size - 1) - codes[codes >= 0]
        ranks[codes < 0] = uniques.size  # NULLS LAST in either direction
        keys.append(ranks)
    # lexsort sorts by the *last* key first; our first item is primary.
    positions = np.lexsort(tuple(reversed(keys)))
    return _take(output, positions.astype(np.int64, copy=False))


def limit(output: OutputColumns, count: int) -> OutputColumns:
    """Keep only the first ``count`` rows."""
    if count < 0:
        raise OutputShapingError("LIMIT must be non-negative")
    if output.row_count <= count:
        return output
    return _take(output, np.arange(count, dtype=np.int64))

"""Output shaping: aggregation, DISTINCT, ORDER BY and LIMIT.

These steps run on the :class:`~repro.engine.result.OutputColumns` produced
by the projection operator, after the execution model (traditional, tagged or
bypass) has done its work.  They are therefore shared by every planner and do
not interact with tag management — but they are part of the timed execution,
just as they would be in a real engine.

Grouping and ordering are implemented over the materialized column arrays.
Output sizes at this point are the final result sizes (thousands of rows in
the paper's workloads), so clarity is preferred over micro-optimization.
"""

from __future__ import annotations

import numpy as np

from repro.engine.result import OutputColumns
from repro.plan.postselect import AggregateFunction, AggregateSpec, OrderItem
from repro.plan.query import Query


class OutputShapingError(ValueError):
    """Raised when an output-shaping clause references an unknown column."""


def apply_output_shaping(output: OutputColumns, query: Query) -> OutputColumns:
    """Apply aggregation, DISTINCT, ORDER BY and LIMIT to ``output``."""
    if query.aggregates:
        output = aggregate(output, query.group_by, query.aggregates)
    if query.distinct:
        output = distinct(output)
    if query.order_by:
        output = order_by(output, query.order_by)
    if query.limit is not None:
        output = limit(output, query.limit)
    return output


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def _column_index(output: OutputColumns, name: str) -> int:
    try:
        return output.names.index(name)
    except ValueError:
        raise OutputShapingError(
            f"output column {name!r} not found; available: {', '.join(output.names)}"
        ) from None


def _row_values(output: OutputColumns, column_positions: list[int]) -> list[tuple]:
    """Materialize per-row tuples (NULL -> None) for the listed columns."""
    columns = []
    for position in column_positions:
        values, nulls = output.columns[position]
        python_values = values.tolist()
        for null_position in np.flatnonzero(nulls):
            python_values[int(null_position)] = None
        columns.append(python_values)
    if not columns:
        return [() for _row in range(output.row_count)]
    return list(zip(*columns))


def _take(output: OutputColumns, positions: np.ndarray) -> OutputColumns:
    """A new OutputColumns holding only the rows at ``positions``."""
    columns = [(values[positions], nulls[positions]) for values, nulls in output.columns]
    return OutputColumns(names=list(output.names), columns=columns, row_count=int(positions.size))


def _column_from_python(values: list) -> tuple[np.ndarray, np.ndarray]:
    """Build a (values, nulls) column pair from Python values (None = NULL)."""
    nulls = np.array([value is None for value in values], dtype=np.bool_)
    cleaned = list(values)
    non_null = [value for value in values if value is not None]
    if non_null and all(isinstance(value, bool) for value in non_null):
        filler: object = False
    elif non_null and all(isinstance(value, (int, np.integer)) for value in non_null):
        filler = 0
    elif non_null and all(isinstance(value, (int, float, np.integer, np.floating)) for value in non_null):
        filler = 0.0
    elif non_null and all(isinstance(value, str) for value in non_null):
        filler = ""
    else:
        filler = None
    for position, value in enumerate(cleaned):
        if value is None:
            cleaned[position] = filler
    if filler is None:
        data = np.array(cleaned, dtype=object)
    else:
        data = np.array(cleaned)
    return data, nulls


# --------------------------------------------------------------------------- #
# Aggregation
# --------------------------------------------------------------------------- #
def _aggregate_group(spec: AggregateSpec, values: list) -> object:
    """Evaluate one aggregate over the (Python) values of one group."""
    if spec.function is AggregateFunction.COUNT:
        if spec.argument is None:
            return len(values)
        non_null = [value for value in values if value is not None]
        if spec.distinct:
            return len(set(non_null))
        return len(non_null)

    non_null = [value for value in values if value is not None]
    if not non_null:
        return None
    if spec.function is AggregateFunction.SUM:
        return sum(non_null)
    if spec.function is AggregateFunction.AVG:
        return sum(non_null) / len(non_null)
    if spec.function is AggregateFunction.MIN:
        return min(non_null)
    if spec.function is AggregateFunction.MAX:
        return max(non_null)
    raise OutputShapingError(f"unsupported aggregate function {spec.function!r}")


def aggregate(
    output: OutputColumns,
    group_by: list,
    aggregates: list[AggregateSpec],
) -> OutputColumns:
    """GROUP BY + aggregate evaluation.

    With an empty ``group_by`` the whole input forms a single group; in that
    case SQL still produces one output row even for an empty input.
    """
    group_names = [column.key() for column in group_by]
    group_positions = [_column_index(output, name) for name in group_names]
    group_keys = _row_values(output, group_positions)

    argument_values: dict[str, list] = {}
    for spec in aggregates:
        if spec.argument is None:
            continue
        name = spec.argument.key()
        if name not in argument_values:
            position = _column_index(output, name)
            argument_values[name] = _row_values(output, [position])

    groups: dict[tuple, list[int]] = {}
    order: list[tuple] = []
    for row, key in enumerate(group_keys):
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    if not group_by and not groups:
        groups[()] = []
        order.append(())

    out_names = list(group_names) + [spec.label() for spec in aggregates]
    group_columns: list[list] = [[] for _name in group_names]
    aggregate_columns: list[list] = [[] for _spec in aggregates]
    for key in order:
        rows = groups[key]
        for position, value in enumerate(key):
            group_columns[position].append(value)
        for position, spec in enumerate(aggregates):
            if spec.argument is None:
                values = [None] * len(rows)
            else:
                source = argument_values[spec.argument.key()]
                values = [source[row][0] for row in rows]
            aggregate_columns[position].append(_aggregate_group(spec, values))

    columns = [_column_from_python(values) for values in group_columns + aggregate_columns]
    return OutputColumns(names=out_names, columns=columns, row_count=len(order))


# --------------------------------------------------------------------------- #
# DISTINCT / ORDER BY / LIMIT
# --------------------------------------------------------------------------- #
def distinct(output: OutputColumns) -> OutputColumns:
    """Remove duplicate rows, keeping the first occurrence of each."""
    if output.row_count == 0:
        return output
    rows = _row_values(output, list(range(len(output.columns))))
    seen: set[tuple] = set()
    keep: list[int] = []
    for position, row in enumerate(rows):
        if row not in seen:
            seen.add(row)
            keep.append(position)
    return _take(output, np.array(keep, dtype=np.int64))


def order_by(output: OutputColumns, items: list[OrderItem]) -> OutputColumns:
    """Sort the output rows; NULLs sort last for every direction."""
    if output.row_count == 0 or not items:
        return output
    positions = list(range(output.row_count))
    # Stable sorts applied from the least-significant key to the most.
    for item in reversed(items):
        column_position = _column_index(output, item.key)
        values = _row_values(output, [column_position])

        def sort_key(row: int, column=values) -> tuple:
            value = column[row][0]
            return (value is None, value)

        positions.sort(key=sort_key, reverse=item.descending)
        if item.descending:
            # Reversing moved NULLs to the front; push them back to the end.
            nulls = [row for row in positions if values[row][0] is None]
            non_nulls = [row for row in positions if values[row][0] is not None]
            positions = non_nulls + nulls
    return _take(output, np.array(positions, dtype=np.int64))


def limit(output: OutputColumns, count: int) -> OutputColumns:
    """Keep only the first ``count`` rows."""
    if count < 0:
        raise OutputShapingError("LIMIT must be non-negative")
    if output.row_count <= count:
        return output
    return _take(output, np.arange(count, dtype=np.int64))

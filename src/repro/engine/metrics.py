"""Runtime work counters and the per-query execution context.

The paper explains its speedups in terms of work avoided: predicate
subexpressions evaluated once instead of per root clause, tuples materialized
once instead of per clause, joins that touch only the slices named in their
tag maps, and no final union operator.  These counters measure exactly those
quantities so benchmarks can report them next to wall-clock time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.kernels.config import KernelConfig
from repro.storage.iostats import IOStats
from repro.storage.pagecache import LFUPageCache


@dataclass
class ExecutionMetrics:
    """Work counters accumulated while executing one query."""

    predicate_rows_evaluated: int = 0
    predicate_evaluations: int = 0
    residual_rows_evaluated: int = 0
    join_build_rows: int = 0
    join_probe_rows: int = 0
    join_output_rows: int = 0
    tuples_materialized: int = 0
    union_input_rows: int = 0
    union_output_rows: int = 0
    operators_executed: int = 0
    slices_created: int = 0
    streams_created: int = 0
    hash_tables_built: int = 0
    output_rows: int = 0
    morsels_executed: int = 0
    #: Pages skipped by zone-map / index scan pruning, summed over scans
    #: (in units of one column's pages; a skipped page is never read, so it
    #: contributes to neither ``pages_read`` nor ``pages_hit`` of IOStats).
    pages_pruned: int = 0
    #: Morsels the parallel driver skipped because the partitioning alias
    #: had no candidate rows in their row range.
    partitions_skipped: int = 0
    #: Worker processes that executed partition blocks for this query under
    #: sharded execution (0 on the in-process path).  Counted only at the
    #: coordinator, so it is the one scalar that differs between a serial
    #: and a sharded run of the same partitioning — comparisons of merged
    #: counters should exclude it.
    shards_executed: int = 0
    #: Rows actually fed to base-predicate clause evaluations.  The legacy
    #: path charges ``num_rows × clauses`` per predicate (every clause sees
    #: every row); the fused kernels charge only the rows still alive when
    #: each clause runs — the ratio between the two is the kernel benchmark's
    #: work metric.
    clause_rows_evaluated: int = 0
    #: Per-predicate observation counts: expression key -> [rows evaluated,
    #: rows matched].  Only populated when the execution context runs with
    #: ``collect_feedback`` (the observed ratio feeds re-optimization).
    predicate_counts: dict[str, list[int]] = field(default_factory=dict)
    #: Per-operator actual row counts: logical node id -> [rows in, rows out]
    #: (``--explain-analyze``); populated under ``collect_feedback`` only.
    operator_actuals: dict[int, list[int]] = field(default_factory=dict)
    #: Per-scan pruning outcome: logical node id -> [pages in range, pages
    #: pruned].  Recorded whenever a scan prunes (cheap: once per scan), so
    #: ``--explain-analyze`` can report pages pruned per operator.
    scan_pruning: dict[int, list[int]] = field(default_factory=dict)

    def record_predicate(self, key: str, evaluated: int, matched: int) -> None:
        """Accumulate one predicate evaluation's observed pass counts."""
        bucket = self.predicate_counts.setdefault(key, [0, 0])
        bucket[0] += evaluated
        bucket[1] += matched

    def record_operator(self, node_id: int, rows_in: int, rows_out: int) -> None:
        """Accumulate one operator invocation's actual rows in/out."""
        bucket = self.operator_actuals.setdefault(node_id, [0, 0])
        bucket[0] += rows_in
        bucket[1] += rows_out

    def record_scan_pruning(self, node_id: int | None, pages_total: int, pages_pruned: int) -> None:
        """Accumulate one scan invocation's page-pruning outcome."""
        self.pages_pruned += pages_pruned
        if node_id is not None:
            bucket = self.scan_pruning.setdefault(node_id, [0, 0])
            bucket[0] += pages_total
            bucket[1] += pages_pruned

    def observed_selectivity(self, key: str) -> float | None:
        """Observed pass rate of a recorded predicate (None when unseen)."""
        bucket = self.predicate_counts.get(key)
        if bucket is None or bucket[0] <= 0:
            return None
        return bucket[1] / bucket[0]

    def merge(self, other: "ExecutionMetrics") -> None:
        """Accumulate another metrics object into this one."""
        self.predicate_rows_evaluated += other.predicate_rows_evaluated
        self.predicate_evaluations += other.predicate_evaluations
        self.residual_rows_evaluated += other.residual_rows_evaluated
        self.join_build_rows += other.join_build_rows
        self.join_probe_rows += other.join_probe_rows
        self.join_output_rows += other.join_output_rows
        self.tuples_materialized += other.tuples_materialized
        self.union_input_rows += other.union_input_rows
        self.union_output_rows += other.union_output_rows
        self.operators_executed += other.operators_executed
        self.slices_created += other.slices_created
        self.streams_created += other.streams_created
        self.hash_tables_built += other.hash_tables_built
        self.output_rows += other.output_rows
        self.morsels_executed += other.morsels_executed
        self.pages_pruned += other.pages_pruned
        self.partitions_skipped += other.partitions_skipped
        self.shards_executed += other.shards_executed
        self.clause_rows_evaluated += other.clause_rows_evaluated
        for key, (evaluated, matched) in other.predicate_counts.items():
            self.record_predicate(key, evaluated, matched)
        for node_id, (rows_in, rows_out) in other.operator_actuals.items():
            self.record_operator(node_id, rows_in, rows_out)
        for node_id, (pages_total, pages_pruned) in other.scan_pruning.items():
            # The scalar total was already merged above; only the per-node
            # buckets accumulate here.
            bucket = self.scan_pruning.setdefault(node_id, [0, 0])
            bucket[0] += pages_total
            bucket[1] += pages_pruned

    def as_dict(self) -> dict[str, int]:
        """The scalar counters as a plain dictionary (for reports).

        The per-predicate and per-operator observation maps are exposed via
        :attr:`predicate_counts` / :attr:`operator_actuals` instead so the
        tabular reports stay scalar-valued.
        """
        return {
            "predicate_rows_evaluated": self.predicate_rows_evaluated,
            "predicate_evaluations": self.predicate_evaluations,
            "residual_rows_evaluated": self.residual_rows_evaluated,
            "join_build_rows": self.join_build_rows,
            "join_probe_rows": self.join_probe_rows,
            "join_output_rows": self.join_output_rows,
            "tuples_materialized": self.tuples_materialized,
            "union_input_rows": self.union_input_rows,
            "union_output_rows": self.union_output_rows,
            "operators_executed": self.operators_executed,
            "slices_created": self.slices_created,
            "streams_created": self.streams_created,
            "hash_tables_built": self.hash_tables_built,
            "output_rows": self.output_rows,
            "morsels_executed": self.morsels_executed,
            "pages_pruned": self.pages_pruned,
            "partitions_skipped": self.partitions_skipped,
            "shards_executed": self.shards_executed,
            "clause_rows_evaluated": self.clause_rows_evaluated,
        }


def aggregate_metrics(metrics_iterable) -> ExecutionMetrics:
    """Sum a collection of :class:`ExecutionMetrics` into one.

    Batch front ends (the query service, the throughput benchmarks) report
    the total work performed across many queries; this folds the per-query
    counters into a single object without mutating any of the inputs.
    """
    total = ExecutionMetrics()
    for metrics in metrics_iterable:
        total.merge(metrics)
    return total


@dataclass
class ExecContext:
    """State threaded through operators during one query execution.

    Under parallel execution each morsel runs against a private *forked*
    context (:meth:`fork`) and the driver reduces the children back into the
    parent (:meth:`absorb`) after all morsels finish.  Counters are therefore
    never incremented concurrently — only the page cache is shared, and it
    serializes its own accesses.
    """

    metrics: ExecutionMetrics = field(default_factory=ExecutionMetrics)
    iostats: IOStats = field(default_factory=IOStats)
    cache: LFUPageCache = field(default_factory=LFUPageCache)
    #: When True, operators additionally record per-predicate match counts
    #: and per-operator actual row counts (the raw material of the feedback
    #: loop and of ``--explain-analyze``).  Off by default: the counting
    #: passes cost extra array reductions on the execution hot path.
    collect_feedback: bool = False
    #: Aliases whose scans were restricted by access-path pruning this
    #: execution.  Predicate observations touching them are *conditioned on
    #: the candidate set* (an index-pruned scan makes its own predicate look
    #: ~100% selective), so the feedback recorder skips them — the feedback
    #: loop then falls back to a-priori estimates for those clauses instead
    #: of learning biased ones.
    feedback_excluded_aliases: frozenset = frozenset()
    #: Fused-kernel configuration, or ``None`` for the legacy expression
    #: path.  ``None`` is the dataclass default so every direct ExecContext
    #: construction (tests, tools, crash harnesses) keeps the unchanged
    #: legacy behavior; the session opts executions in explicitly.
    kernels: KernelConfig | None = None
    #: Set by the sharded scatter–gather coordinator when aggregation was
    #: pushed down to the shards and already combined: output shaping must
    #: then skip its aggregate step (DISTINCT / ORDER BY / LIMIT still run).
    #: Coordinator-level state — never set on forked children, never merged
    #: by :meth:`absorb`.
    aggregates_prefolded: bool = False
    #: Opt-in :class:`~repro.obs.trace.Tracer` collecting this execution's
    #: span tree and per-operator timings.  ``None`` (the default) keeps the
    #: hot path free of any timing work — operators and drivers test this
    #: field before touching the tracer.  Forked and absorbed alongside the
    #: counters so traces merge across morsel workers exactly like metrics.
    tracer: object | None = None

    def timer(self) -> "Stopwatch":
        """A fresh stopwatch (convenience for callers timing phases)."""
        return Stopwatch()

    def fork(self) -> "ExecContext":
        """A child context for one morsel: fresh counters, shared page cache."""
        return ExecContext(
            cache=self.cache,
            collect_feedback=self.collect_feedback,
            feedback_excluded_aliases=self.feedback_excluded_aliases,
            kernels=self.kernels,
            tracer=self.tracer.fork() if self.tracer is not None else None,
        )

    def absorb(self, child: "ExecContext") -> None:
        """Merge a forked child's counters back into this context."""
        self.metrics.merge(child.metrics)
        self.iostats.merge(child.iostats)
        if self.tracer is not None and child.tracer is not None:
            self.tracer.absorb(child.tracer)


class Stopwatch:
    """Tiny helper measuring elapsed wall-clock time."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction."""
        return time.perf_counter() - self._start

    def restart(self) -> float:
        """Return elapsed seconds and restart the stopwatch."""
        now = time.perf_counter()
        elapsed = now - self._start
        self._start = now
        return elapsed

"""Query results.

The projection operator materializes the output *columns* as NumPy arrays
(the same index-based lookups Basilisk performs at projection time, and part
of the timed execution).  Building Python row tuples out of those arrays is
an artefact of returning results to Python callers, so it happens lazily the
first time :attr:`QueryResult.rows` is accessed and is not part of the timed
path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.metrics import ExecutionMetrics
from repro.storage.iostats import IOStats
from repro.storage.table import Table


@dataclass
class OutputColumns:
    """Materialized output: qualified names plus value/null arrays."""

    names: list[str]
    columns: list[tuple[np.ndarray, np.ndarray]]
    row_count: int

    @classmethod
    def empty(cls) -> "OutputColumns":
        return cls(names=[], columns=[], row_count=0)


class QueryResult:
    """The outcome of executing one query.

    Attributes:
        planner_name: which planner produced the executed plan.
        column_names: qualified output column names (``alias.column``).
        planning_seconds / execution_seconds: wall-clock split, as reported
            separately in the paper's Figure 4c.
        metrics: engine work counters.
        iostats: simulated storage traffic.
        plan_description: pretty-printed plan (or plans) that ran.
        cache_hit: True when the executed plan came out of a plan cache
            (set by the service layer; always False for direct Session use).
        kernel_tier: the expression-kernel tier that actually ran —
            ``"off"`` (legacy path), ``"numpy"`` or ``"jit"`` (a requested
            ``"jit"`` that downgraded reports ``"numpy"``).
        trace: the :class:`~repro.obs.trace.Tracer` that followed this
            execution, or ``None`` when tracing was off (the default).
    """

    def __init__(
        self,
        planner_name: str,
        output: OutputColumns,
        planning_seconds: float,
        execution_seconds: float,
        metrics: ExecutionMetrics | None = None,
        iostats: IOStats | None = None,
        plan_description: str = "",
        cache_hit: bool = False,
        kernel_tier: str = "off",
        trace=None,
    ) -> None:
        self.planner_name = planner_name
        self.output = output
        self.planning_seconds = planning_seconds
        self.execution_seconds = execution_seconds
        self.metrics = metrics if metrics is not None else ExecutionMetrics()
        self.iostats = iostats if iostats is not None else IOStats()
        self.plan_description = plan_description
        self.cache_hit = cache_hit
        self.kernel_tier = kernel_tier
        self.trace = trace
        self._rows_cache: list[tuple] | None = None

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def column_names(self) -> list[str]:
        """Qualified output column names."""
        return self.output.names

    @property
    def row_count(self) -> int:
        """Number of output rows."""
        return self.output.row_count

    @property
    def total_seconds(self) -> float:
        """Planning plus execution time."""
        return self.planning_seconds + self.execution_seconds

    @property
    def rows(self) -> list[tuple]:
        """Output rows as Python tuples (NULLs become ``None``); built lazily."""
        if self._rows_cache is None:
            columns = []
            for values, nulls in self.output.columns:
                python_values = values.tolist()
                for position in np.flatnonzero(nulls):
                    python_values[int(position)] = None
                columns.append(python_values)
            self._rows_cache = list(zip(*columns)) if columns else []
        return self._rows_cache

    def to_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries keyed by qualified column name."""
        return [dict(zip(self.column_names, row)) for row in self.rows]

    def sorted_rows(self) -> list[tuple]:
        """Rows in a deterministic order (for comparisons in tests)."""
        return sorted(self.rows, key=lambda row: tuple(str(value) for value in row))

    def __repr__(self) -> str:
        return (
            f"QueryResult(planner={self.planner_name!r}, rows={self.row_count}, "
            f"total={self.total_seconds:.4f}s)"
        )


def materialize_output(
    tables: dict[str, Table],
    indices: dict[str, np.ndarray],
    positions: np.ndarray,
    select: list,
) -> OutputColumns:
    """Materialize output columns for the projection operator.

    Args:
        tables: alias -> base table.
        indices: alias -> row-index array of the final relation.
        positions: relation row positions belonging to the result.
        select: projection columns (empty means every column of every alias).
    """
    if select:
        wanted = [(column.alias, column.column) for column in select]
    else:
        wanted = [
            (alias, column_name)
            for alias in sorted(indices)
            for column_name in tables[alias].column_names
        ]

    names = [f"{alias}.{column_name}" for alias, column_name in wanted]
    columns: list[tuple[np.ndarray, np.ndarray]] = []
    for alias, column_name in wanted:
        row_ids = indices[alias][positions]
        values, nulls = tables[alias].read_column_at(column_name, row_ids)
        columns.append((values, nulls))
    return OutputColumns(names=names, columns=columns, row_count=int(positions.size))


def materialize_empty_output(
    tables: dict[str, Table],
    aliases: "list[str] | dict",
    select: list,
) -> OutputColumns:
    """A zero-row :class:`OutputColumns` that still carries the schema.

    Used when a plan root accepts no rows at all: downstream shaping
    (aggregation over an empty input yields ``COUNT = 0`` / NULL extremes)
    and sharded partial aggregation both need the column names and dtypes
    even when there is nothing to read.  Builds typed empty arrays directly
    from the column metadata — no pages are touched, so IO accounting is
    identical to not materializing at all.
    """
    if select:
        wanted = [(column.alias, column.column) for column in select]
    else:
        wanted = [
            (alias, column_name)
            for alias in sorted(aliases)
            for column_name in tables[alias].column_names
        ]
    names = [f"{alias}.{column_name}" for alias, column_name in wanted]
    columns: list[tuple[np.ndarray, np.ndarray]] = []
    for alias, column_name in wanted:
        dtype = tables[alias].column(column_name).ctype.numpy_dtype
        columns.append((np.empty(0, dtype=dtype), np.zeros(0, dtype=np.bool_)))
    return OutputColumns(names=names, columns=columns, row_count=0)

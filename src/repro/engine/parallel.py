"""The morsel-driven parallel execution driver.

A query's physical plan is compiled once per table partition ("morsel") of a
deterministically chosen partitioning alias; morsels execute on a worker
pool and their output batches are merged **in partition order**, so for a
fixed partition count the result is byte-identical at any worker count —
only scheduling changes with ``parallelism``, never the work or the merge
order.  ``partitions=1`` is exactly the legacy unpartitioned path.  The
*partition count* is part of the physical plan: changing it never changes
the result set (the differential suite checks every setting against the
oracle), but it may reorder rows — join output follows probe order, so a
partitioned build side groups output by build partition.

Determinism and correctness rest on three invariants:

* scan→filter→join pipelines are linear in each input, so restricting one
  alias's scan to a row range and unioning the per-range outputs equals the
  unpartitioned output (the partitioned alias sits on exactly one side of
  every join);
* each morsel runs against a *forked* execution context (private metrics and
  I/O counters, shared thread-safe page cache); the driver reduces children
  back into the query context in partition order after all morsels finish,
  so counters are merge-safe under concurrency;
* output shaping (aggregation / DISTINCT / ORDER BY / LIMIT) runs **after**
  the merge, exactly once, in :meth:`Session.execute_prepared`.

The partitioning alias is the scanned alias whose base table has the most
rows (ties broken by alias name) — a deterministic choice that sends the
largest scan through the morsel loop while smaller build sides are rebuilt
per morsel.
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.engine.metrics import ExecContext
from repro.engine.result import OutputColumns
from repro.physical.batches import merge_output_columns
from repro.physical.compile import compile_plan, plan_scan_aliases
from repro.plan.logical import TableScanNode
from repro.storage.catalog import Catalog
from repro.storage.table import owned_page_range

# Morsel pools are shared process-wide, one per worker count (in practice a
# handful of distinct counts).  Creating a pool per query would spawn and
# join threads on the serving hot path; idle pool threads are reused by
# every subsequent query at that parallelism.  shutdown_morsel_pools()
# (registered via atexit, also invoked by the shard workers' own exit path)
# tears them down; the registry repopulates lazily afterwards.
_POOLS: dict[int, ThreadPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _morsel_pool(workers: int) -> ThreadPoolExecutor:
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=f"repro-morsel-{workers}"
            )
            _POOLS[workers] = pool
        return pool


def shutdown_morsel_pools(wait: bool = True) -> None:
    """Shut down every process-wide morsel thread pool (re-created on use).

    The registry otherwise grows one never-collected pool per distinct
    worker count for the life of the process.  Registered via ``atexit``
    (alongside :func:`repro.engine.shard.shutdown_shard_pools`, which shard
    worker processes also call before exiting) and callable directly by
    embedders that want deterministic teardown.
    """
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=wait)


atexit.register(shutdown_morsel_pools)


def choose_partition_alias(kind: str, plan, catalog: Catalog) -> str | None:
    """The alias whose scan the driver partitions (deterministic).

    Picks the scanned alias with the largest base table, breaking ties by
    alias name; returns ``None`` when the plan scans nothing.
    """
    return _choose_from_scans(plan_scan_aliases(kind, plan), catalog)


def _choose_from_scans(scans: dict[str, str], catalog: Catalog) -> str | None:
    if not scans:
        return None
    return max(
        sorted(scans),
        key=lambda alias: catalog.get(scans[alias]).num_rows,
    )


def _alias_scan_node_id(kind: str, plan, alias: str) -> int | None:
    """The logical node id of ``alias``'s scan, when it is unambiguous.

    Traditional plans scan every alias once *per subplan*, so per-node
    attribution of driver-skipped pages is ambiguous there (None keeps the
    accounting in the scalar ``pages_pruned`` counter only).
    """
    if kind == "traditional":
        return None
    ids = [
        node.node_id
        for node in plan.walk()
        if isinstance(node, TableScanNode) and node.alias == alias
    ]
    return ids[0] if len(ids) == 1 else None


def execute_plan(
    kind: str,
    plan,
    catalog: Catalog,
    context: ExecContext,
    annotations=None,
    predicate_tree=None,
    three_valued: bool = True,
    parallelism: int = 1,
    partitions: int | None = None,
    access_plan=None,
    shards: int = 1,
    query=None,
) -> OutputColumns:
    """Execute a planner's output through the physical layer.

    Args:
        kind: execution model (``"tagged"``, ``"traditional"``, ``"bypass"``).
        plan: the planner output (see :func:`repro.physical.compile.compile_plan`).
        catalog: base tables.
        context: the query's execution context; per-morsel forks are reduced
            into it before returning.
        annotations: tag maps (tagged plans).
        predicate_tree: the query's predicate tree.
        three_valued: SQL three-valued logic (bypass evaluation).
        parallelism: worker threads driving morsels (1 = run inline).  Under
            sharded execution this is the *intra-shard* thread count.
        partitions: number of table partitions; defaults to
            ``parallelism × shards``.  ``partitions=1`` bypasses the morsel
            loop entirely.
        access_plan: optional
            :class:`~repro.access.chooser.QueryAccessPlan`; its resolved
            candidate bitmaps restrict the scans (zone-map/index pruning) and
            let the driver skip morsels whose partition of the partitioning
            alias holds no candidate row.  Pruning never changes the rows
            returned, only the pages touched.
        shards: worker *processes* executing contiguous partition blocks
            (see :mod:`repro.engine.shard`).  ``shards=1`` is exactly the
            in-process path; for a fixed partition count the output is
            byte-identical at every shard count.
        query: the bound :class:`~repro.plan.query.Query`; when provided,
            sharded execution may push exactly-mergeable aggregation (or a
            bare LIMIT) down to the shards, flagging
            ``context.aggregates_prefolded`` so output shaping skips the
            already-folded step.
    """
    if parallelism < 1:
        raise ValueError(f"parallelism must be positive, got {parallelism}")
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    num_partitions = parallelism * shards if partitions is None else partitions
    if num_partitions < 1:
        raise ValueError(f"partitions must be positive, got {num_partitions}")

    if access_plan is not None:
        if context.tracer is not None:
            with context.tracer.span("access_paths.resolve"):
                scan_candidates = access_plan.resolve_all()
        else:
            scan_candidates = access_plan.resolve_all()
    else:
        scan_candidates = {}
    if scan_candidates and context.collect_feedback:
        # Predicate observations over pruned aliases are conditioned on the
        # candidate set and must not feed the selectivity feedback loop.
        context.feedback_excluded_aliases = frozenset(scan_candidates)

    alias = None
    if num_partitions > 1:
        scans = plan_scan_aliases(kind, plan)
        alias = _choose_from_scans(scans, catalog)

    if alias is None or num_partitions == 1:
        physical = compile_plan(
            kind,
            plan,
            catalog,
            annotations=annotations,
            predicate_tree=predicate_tree,
            three_valued=three_valued,
            scan_candidates=scan_candidates,
        )
        context.metrics.morsels_executed += 1
        return physical.execute(context)

    table = catalog.get(scans[alias])
    all_partitions = table.partitions(num_partitions)
    alias_candidates = scan_candidates.get(alias)
    if alias_candidates is not None:
        # A morsel whose slice of the partitioning alias holds no candidate
        # row contributes nothing to the output; skip compiling and running
        # it.  Keep at least one morsel so the root still emits its (empty)
        # output structure.
        live = [
            partition
            for partition in all_partitions
            if bool(alias_candidates.mask[partition.start : partition.stop].any())
        ]
        if not live:
            live = all_partitions[:1]
        page_size = table.page_size
        scan_node_id = _alias_scan_node_id(kind, plan, alias)
        for partition in all_partitions:
            if partition in live:
                continue
            # Every page owned by a skipped morsel is pruned; record it
            # here (against the scan's node when unambiguous) since no scan
            # operator runs for the morsel.
            first_page, end_page = owned_page_range(
                partition.start, partition.stop, page_size
            )
            if end_page > first_page:
                pages = end_page - first_page
                context.metrics.record_scan_pruning(scan_node_id, pages, pages)
        context.metrics.partitions_skipped += len(all_partitions) - len(live)
        all_partitions = live

    if shards > 1 and len(all_partitions) > 1:
        # Scatter the live partitions across worker processes as contiguous
        # blocks; the shard-order gather is the partition-order merge, so
        # the result is byte-identical to the in-process path below.  All
        # pruning accounting already happened above, at the coordinator.
        from repro.engine.shard import scatter_gather

        return scatter_gather(
            kind=kind,
            plan=plan,
            catalog=catalog,
            context=context,
            annotations=annotations,
            predicate_tree=predicate_tree,
            three_valued=three_valued,
            scan_candidates=scan_candidates,
            alias=alias,
            partitions=all_partitions,
            shards=shards,
            parallelism=parallelism,
            query=query,
        )

    morsels = [
        (
            partition,
            compile_plan(
                kind,
                plan,
                catalog,
                annotations=annotations,
                predicate_tree=predicate_tree,
                three_valued=three_valued,
                partition_alias=alias,
                partition=partition,
                scan_candidates=scan_candidates,
            ),
        )
        for partition in all_partitions
    ]

    def run_morsel(partition, physical) -> tuple[OutputColumns, ExecContext]:
        child = context.fork()
        if child.tracer is not None:
            with child.tracer.span(
                "morsel", start_row=partition.start, stop_row=partition.stop
            ):
                output = physical.execute(child)
        else:
            output = physical.execute(child)
        return output, child

    if parallelism == 1 or len(morsels) == 1:
        outcomes = [run_morsel(partition, physical) for partition, physical in morsels]
    else:
        pool = _morsel_pool(min(parallelism, len(morsels)))
        futures = [
            pool.submit(run_morsel, partition, physical)
            for partition, physical in morsels
        ]
        outcomes = [future.result() for future in futures]

    # Reduce per-morsel contexts and outputs in partition order: counters are
    # summed deterministically and the merged output is byte-identical to
    # running the same morsels serially.
    outputs = []
    for output, child in outcomes:
        context.absorb(child)
        context.metrics.morsels_executed += 1
        outputs.append(output)
    return merge_output_columns(outputs)

"""The public, high-level API: :class:`Session`.

A session wraps a catalog of base tables and executes queries — written in
SQL or built programmatically as :class:`~repro.plan.query.Query` objects —
under any of the planners evaluated in the paper:

==============  ======================================================
planner name    meaning
==============  ======================================================
``tcombined``   tagged execution, cheapest of the four tagged planners
``tpushdown``   tagged execution, all base predicates pushed down
``tpullup``     tagged execution, Algorithm 2 pull-up search
``titerpush``   tagged execution, iterative push-down search
``tpushconj``   tagged execution forced to mimic a conjunctive planner
``texhaustive`` tagged execution, DP join ordering (extension beyond the paper)
``tmin``        oracle: execute every tagged candidate planner, keep the fastest
``bdisj``       traditional execution, per-root-clause plans + union
``bpushconj``   traditional execution, conjunctive pushdown only
``bypass``      bypass-technique execution (related-work comparator)
==============  ======================================================

Example::

    from repro import Session
    from repro.workloads.imdb import generate_imdb_catalog

    session = Session(generate_imdb_catalog(scale=0.1, seed=7))
    result = session.execute(
        "SELECT * FROM title AS t JOIN movie_info_idx AS mi_idx "
        "ON t.id = mi_idx.movie_id "
        "WHERE (t.production_year > 2000 AND mi_idx.info > 7.0) "
        "   OR (t.production_year > 1980 AND mi_idx.info > 8.0)",
        planner="tcombined",
    )
    print(result.row_count, result.total_seconds)

Execution is split into two phases so callers can reuse the expensive one:
:meth:`Session.prepare` parses, collects statistics and plans, returning a
:class:`PreparedPlan`; :meth:`Session.execute_prepared` runs a prepared plan.
:meth:`Session.execute` simply chains the two.  The service layer
(:mod:`repro.service`) caches :class:`PreparedPlan` objects keyed by a
normalized query fingerprint so repeated queries skip the prepare phase
entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baseline.planners import BDisjPlanner, BPushConjPlanner, TraditionalPlan
from repro.bypass.planner import BypassPlan, BypassPlanner
from repro.core.planner import PLANNER_REGISTRY, TMIN_CANDIDATES
from repro.core.planner.base import PlannerContext
from repro.core.planner.cost import CostParams
from repro.core.predtree import PredicateTree
from repro.core.tagmap import PlanTagAnnotations
from repro.engine.metrics import ExecContext, Stopwatch
from repro.engine.parallel import execute_plan
from repro.engine.postprocess import apply_output_shaping
from repro.engine.result import QueryResult
from repro.kernels.config import KernelConfig, resolve_tier, validate_tier
from repro.plan.logical import PlanNode, plan_to_string
from repro.plan.query import Query
from repro.storage.catalog import Catalog

TAGGED_PLANNERS = tuple(PLANNER_REGISTRY)
TRADITIONAL_PLANNERS = ("bdisj", "bpushconj")
ALL_PLANNERS = TAGGED_PLANNERS + TRADITIONAL_PLANNERS + ("tmin", "bypass")


@dataclass
class PreparedPlan:
    """The reusable outcome of the prepare phase for one query.

    Holds everything execution needs and nothing it does not: the chosen
    plan, its tag annotations (tagged execution only) and the predicate tree.
    A prepared plan is immutable during execution, so one instance can be
    executed many times — including concurrently from several threads — as
    long as the catalog it was planned against is unchanged.

    Attributes:
        planner: the planner name the caller requested (``"tcombined"``, ...).
        kind: execution model — ``"tagged"``, ``"traditional"`` or ``"bypass"``.
        query: the bound query (drives output shaping and projection).
        naive_tags: whether tag maps were built without pruning.
        plan: the logical plan (:class:`PlanNode` for tagged plans,
            :class:`TraditionalPlan` or :class:`BypassPlan` otherwise).
        annotations: tag maps for tagged plans, ``None`` otherwise.
        predicate_tree: the query's predicate tree (``None`` without WHERE).
        plan_description: pretty-printed plan, as shown by ``explain``.
        planning_seconds: wall-clock cost of the prepare phase.
        catalog_version: catalog version the plan was built against.
        estimated_rows: estimated output rows per plan node id (tag-aware
            for tagged plans, generic bottom-up walk otherwise); consumed by
            ``--explain-analyze``.
        estimated_output_rows: the plan's estimated output cardinality —
            the root entry of ``estimated_rows`` (for traditional plans the
            sum over subplan roots, which over-counts rows matched by
            several clauses).  The service layer's feedback loop holds this
            against the observed output cardinality (q-error).
        selectivity_overrides: feedback-corrected selectivities the plan was
            built with (empty for a purely a-priori plan).
        clause_selectivities: estimated selectivity per AND/OR child of the
            WHERE expression (:func:`repro.optimizer.clause_order.\
clause_selectivities`); seeds the fused kernels' clause evaluation order
            and the ``--explain-analyze`` order annotation.
        snapshot: the :class:`~repro.mutation.snapshot.CatalogSnapshot`
            pinned at prepare time.  Execution always runs against it, which
            is what makes reads snapshot-isolated: a mutation committed
            after ``prepare()`` registers *new* table objects in the
            catalog, while this plan keeps reading the (immutable) objects
            it was planned against.
    """

    planner: str
    kind: str
    query: Query
    naive_tags: bool
    plan: PlanNode | TraditionalPlan | BypassPlan
    annotations: PlanTagAnnotations | None
    predicate_tree: PredicateTree | None
    plan_description: str
    planning_seconds: float
    catalog_version: int
    estimated_rows: dict[int, float] = field(default_factory=dict)
    estimated_output_rows: float = 0.0
    selectivity_overrides: dict[str, float] = field(default_factory=dict)
    clause_selectivities: dict[str, float] = field(default_factory=dict)
    #: Per-alias access-path choices
    #: (:class:`~repro.access.chooser.QueryAccessPlan`); ``None`` when access
    #: paths are disabled.  Execution resolves it into candidate bitmaps that
    #: prune scans; resolution is memoized per table version, so repeated
    #: executions of a cached plan pay nothing.  Resolution is version-pinned:
    #: once a table mutates past the plan's snapshot, its alias simply stops
    #: pruning (the snapshot scan stays correct on its own).
    access_plan: object | None = None
    snapshot: object | None = None


class Session:
    """Executes queries against a catalog under a chosen planner.

    Args:
        catalog: the base tables.
        cost_params: cost-model constants used by the planners.
        three_valued: evaluate predicates under SQL three-valued logic.
        stats_sample_size: rows sampled per table when measuring selectivities.
        selectivity_mode: ``"measured"`` or ``"histogram"``.
        stats_provider: optional provider of cached per-table statistics and
            sample draws (see :class:`repro.service.StatsCache`); ``None``
            recomputes statistics on every prepare, which is deterministic
            and therefore equivalent.
        parallelism: worker threads driving per-partition morsels during
            execution (1 = serial).  For a fixed ``partitions`` value the
            output is byte-identical at every worker count; see
            :mod:`repro.engine.parallel`.
        partitions: horizontal partitions of the largest scanned table;
            defaults to ``parallelism``, and ``1`` is exactly the legacy
            unpartitioned path.  Changing the partition count never changes
            the result *set*, but may reorder rows (join output follows
            probe order).  Planning is unaffected by either knob — only the
            execution phase is morselized.
        access_paths: consult the catalog's access-path layer (zone maps and
            secondary indexes, see :mod:`repro.access`) when planning and
            prune scans with it when executing.  Pruning is sound — results
            are byte-identical with the knob on or off — it only changes
            which pages are touched.  When enabled and the catalog has no
            :class:`~repro.access.manager.AccessPathManager` yet, one is
            registered lazily (zone maps build on first use; secondary
            indexes only ever exist when created explicitly).
        kernels: expression-kernel tier — ``"off"`` (legacy full-width
            truth arrays), ``"numpy"`` (fused selection-vector kernels with
            dictionary-aware string predicates; the default), or ``"jit"``
            (adds numba-compiled numeric comparison loops; silently
            downgrades to ``"numpy"`` when numba is not installed).  All
            tiers return byte-identical results; see
            :mod:`repro.kernels`.
        shards: shared-nothing worker *processes* executing contiguous
            blocks of the partitioned scan (see :mod:`repro.engine.shard`).
            ``shards=1`` (the default) is exactly the in-process path; above
            1, partitions default to ``parallelism × shards`` and
            ``parallelism`` becomes the intra-shard thread count.  For a
            fixed partition count the output is byte-identical at every
            shard count.  Worker processes read only shipped snapshot-pinned
            tables (no catalog, no WAL writer).
    """

    def __init__(
        self,
        catalog: Catalog,
        cost_params: CostParams | None = None,
        three_valued: bool = True,
        stats_sample_size: int = 20_000,
        selectivity_mode: str = "measured",
        stats_provider=None,
        parallelism: int = 1,
        partitions: int | None = None,
        access_paths: bool = True,
        kernels: str = "numpy",
        shards: int = 1,
    ) -> None:
        if parallelism < 1:
            raise ValueError(f"parallelism must be positive, got {parallelism}")
        if partitions is not None and partitions < 1:
            raise ValueError(f"partitions must be positive, got {partitions}")
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        self.catalog = catalog
        self.cost_params = cost_params or CostParams()
        self.three_valued = three_valued
        self.stats_sample_size = stats_sample_size
        self.selectivity_mode = selectivity_mode
        self.stats_provider = stats_provider
        self.parallelism = parallelism
        self.partitions = partitions
        self.access_paths = access_paths
        self.kernels = validate_tier(kernels)
        self.shards = shards

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: Query | str,
        planner: str = "tcombined",
        naive_tags: bool = False,
        parallelism: int | None = None,
        partitions: int | None = None,
        shards: int | None = None,
        trace: bool = False,
    ) -> QueryResult:
        """Plan and execute a query; returns a :class:`QueryResult`.

        ``parallelism`` / ``partitions`` / ``shards`` override the session
        defaults for this call only.  ``trace=True`` attaches a span tree to
        the result (see :meth:`execute_prepared`).

        When a process-ambient :class:`~repro.obs.history.WorkloadHistory`
        is installed (:func:`repro.obs.history.set_history`), the finished
        execution is recorded there — unless a :class:`~repro.service.\
QueryService` drove this call, in which case the service's publish point
        (which knows the real plan-cache fingerprint) records it instead.
        Recording happens after execution, from merged coordinator-side
        counters; rows and IO accounting are identical with history on or
        off.
        """
        from repro.obs import history as obs_history

        planner = planner.lower()
        query = self._bind(query)
        publish = obs_history.session_should_publish()
        wall_timer = Stopwatch() if publish else None
        if planner == "tmin":
            result = self._execute_tmin(
                query,
                naive_tags,
                parallelism=parallelism,
                partitions=partitions,
                shards=shards,
            )
        else:
            prepared = self.prepare(query, planner, naive_tags)
            result = self.execute_prepared(
                prepared,
                parallelism=parallelism,
                partitions=partitions,
                shards=shards,
                trace=trace,
            )
        if publish:
            history = obs_history.get_history()
            if history is not None:
                history.record_query(
                    fingerprint=obs_history.session_fingerprint(query, planner),
                    planner=result.planner_name,
                    seconds=wall_timer.elapsed(),
                    execution_seconds=result.execution_seconds,
                    rows=result.row_count,
                    pages_read=result.iostats.pages_read,
                    pages_pruned=result.metrics.pages_pruned,
                    cache_hit=result.cache_hit,
                    plan_hash=obs_history.plan_hash_of(result.plan_description),
                    trace=result.trace.to_dict() if result.trace is not None else None,
                )
        return result

    def begin_mutation(self):
        """Start a :class:`~repro.mutation.batch.MutationBatch` on the
        session's catalog.  Batches may overlap — commits race first-
        committer-wins per table, losers raise
        :class:`~repro.mutation.batch.ConflictError` (see
        :func:`~repro.mutation.concurrency.retry_on_conflict`)."""
        return self.catalog.begin_mutation()

    def prepare(
        self,
        query: Query | str,
        planner: str = "tcombined",
        naive_tags: bool = False,
        selectivity_overrides=None,
    ) -> PreparedPlan:
        """Parse, collect statistics and plan; returns a :class:`PreparedPlan`.

        ``tmin`` cannot be prepared: it is an oracle that *executes* every
        tagged candidate and keeps the fastest, so there is no single plan to
        hand back before execution.

        ``selectivity_overrides`` maps expression keys to observed
        selectivities (see
        :class:`~repro.optimizer.estimates.EstimateProvider`); the service
        layer injects runtime feedback here when re-planning a drifted query.
        Planning stays deterministic in all of its inputs, overrides
        included.
        """
        planner = planner.lower()
        if planner == "tmin":
            raise ValueError(
                "tmin executes every candidate planner and cannot be prepared; "
                "call execute() instead"
            )
        if planner not in ALL_PLANNERS:
            raise ValueError(
                f"unknown planner {planner!r}; choose one of {', '.join(ALL_PLANNERS)}"
            )
        bound = self._bind(query)
        timer = Stopwatch()
        context = self._planner_context(
            bound, naive_tags, selectivity_overrides=selectivity_overrides
        )
        from repro.optimizer.estimates import estimate_plan_rows

        if planner == "bypass":
            planned = BypassPlanner(context).plan()
            kind = "bypass"
            annotations = None
            plan = planned
            description = planned.to_string()
            estimated_rows = estimate_plan_rows(planned.plan, context.estimates)
            estimated_output = estimated_rows.get(planned.plan.node_id, 0.0)
        elif planner in TRADITIONAL_PLANNERS:
            planner_obj = (BDisjPlanner if planner == "bdisj" else BPushConjPlanner)(context)
            planned = planner_obj.plan()
            kind = "traditional"
            annotations = None
            plan = planned
            description = "\n---\n".join(
                plan_to_string(subplan) for subplan in planned.subplans
            )
            estimated_rows = {}
            estimated_output = 0.0
            for subplan in planned.subplans:
                subplan_rows = estimate_plan_rows(subplan, context.estimates)
                estimated_rows.update(subplan_rows)
                # Summing the subplan roots over-counts rows matched by
                # several root clauses; good enough for drift detection.
                estimated_output += subplan_rows.get(subplan.node_id, 0.0)
        else:
            planned = PLANNER_REGISTRY[planner](context).plan()
            kind = "tagged"
            annotations = planned.annotations
            plan = planned.plan
            description = plan_to_string(planned.plan)
            estimated_rows = dict(planned.node_rows)
            estimated_output = estimated_rows.get(planned.plan.node_id, 0.0)

        from repro.optimizer.clause_order import clause_selectivities

        predicate_tree = context.predicate_tree
        return PreparedPlan(
            planner=planner,
            kind=kind,
            query=bound,
            naive_tags=naive_tags,
            plan=plan,
            annotations=annotations,
            predicate_tree=predicate_tree,
            plan_description=description,
            planning_seconds=timer.elapsed(),
            catalog_version=self.catalog.version,
            estimated_rows=estimated_rows,
            estimated_output_rows=estimated_output,
            selectivity_overrides=dict(selectivity_overrides or {}),
            clause_selectivities=clause_selectivities(
                predicate_tree.expression if predicate_tree is not None else None,
                context.estimates,
            ),
            access_plan=context.estimates.access_plan(),
            # Pin only the tables this query reads: enough for isolated
            # execution, without keeping superseded generations of unrelated
            # tables alive for as long as the plan stays cached.
            snapshot=self.catalog.snapshot(tables=set(bound.tables.values())),
        )

    def execute_prepared(
        self,
        prepared: PreparedPlan,
        planning_seconds: float | None = None,
        cache_hit: bool = False,
        parallelism: int | None = None,
        partitions: int | None = None,
        collect_feedback: bool = False,
        kernels: str | None = None,
        shards: int | None = None,
        trace=False,
    ) -> QueryResult:
        """Execute a :class:`PreparedPlan` and return a :class:`QueryResult`.

        ``kernels`` overrides the session's kernel tier for this call only
        (``"off"`` / ``"numpy"`` / ``"jit"``); every tier returns
        byte-identical rows, so the knob is purely a performance choice.

        ``planning_seconds`` overrides the reported planning time (the
        service layer passes the cache-lookup time on a hit); by default the
        original prepare cost is reported, which makes
        ``execute() == prepare() + execute_prepared()`` faithful to the
        paper's planning/execution split.

        Execution goes through the unified physical-operator layer for all
        three models.  With ``parallelism`` / ``partitions`` above 1 (call
        arguments override session defaults), the plan runs morsel-by-morsel
        on a worker pool; the partition-order merge keeps the output
        byte-identical to running the same partitioning with one worker, at
        any worker count.  With ``shards`` above 1 the partitions execute as
        contiguous blocks on worker *processes* (:mod:`repro.engine.shard`)
        — same merge order, same bytes, and exactly-mergeable aggregations
        are pre-folded on the shards.  Output shaping runs once, after the
        gather.

        ``collect_feedback`` additionally records per-predicate match counts
        and per-operator actual row counts into the result's metrics (the
        inputs of ``--explain-analyze`` and the service feedback loop); it
        never changes the rows returned.

        Execution reads the plan's pinned catalog **snapshot** (see
        :mod:`repro.mutation`): a mutation committed between ``prepare`` and
        ``execute_prepared`` is invisible to this plan, which keeps the
        paper's planning/execution split deterministic under concurrent
        ingest.  Serve-current-data callers simply re-prepare (the service
        layer's per-table fingerprints do this automatically).  The same
        pinning carries prepared plans across an **online compaction**: the
        swap registers new table objects, but the snapshot keeps the old
        immutable ones — with the row positions the plan's access paths were
        built against — alive until the last pinning plan is dropped.

        ``trace`` opts this execution into structured tracing: pass ``True``
        for a fresh :class:`~repro.obs.trace.Tracer` or an existing tracer
        to nest the query under its open spans.  The result then carries the
        span tree (``result.trace``) — query → plan (synthetic, backfilled
        from the reported planning time) → execute (morsel / shard /
        per-operator detail) → postprocess — and per-operator timings.
        Tracing never changes rows, IO accounting, or work counters; with
        ``trace`` falsy (the default) no tracer object exists at all.
        """
        query = prepared.query
        tier = resolve_tier(self.kernels if kernels is None else kernels)
        kernel_config = (
            None
            if tier == "off"
            else KernelConfig(
                tier=tier, clause_selectivities=prepared.clause_selectivities
            )
        )
        tracer = None
        if trace:
            from repro.obs.trace import Tracer

            tracer = trace if isinstance(trace, Tracer) else Tracer()
        exec_context = ExecContext(
            collect_feedback=collect_feedback, kernels=kernel_config, tracer=tracer
        )
        effective_parallelism = (
            self.parallelism if parallelism is None else parallelism
        )
        effective_partitions = self.partitions if partitions is None else partitions
        effective_shards = self.shards if shards is None else shards
        reported_planning = (
            prepared.planning_seconds if planning_seconds is None else planning_seconds
        )

        if tracer is not None:
            tracer.begin(
                "query",
                planner=prepared.planner,
                kind=prepared.kind,
                kernel_tier=tier,
            )
            tracer.add_synthetic("plan", reported_planning, cache_hit=cache_hit)
            tracer.begin(
                "execute",
                parallelism=effective_parallelism,
                shards=effective_shards,
            )

        execution_timer = Stopwatch()
        output = execute_plan(
            prepared.kind,
            prepared.plan.plan if prepared.kind == "bypass" else prepared.plan,
            prepared.snapshot if prepared.snapshot is not None else self.catalog,
            exec_context,
            annotations=prepared.annotations,
            predicate_tree=prepared.predicate_tree,
            three_valued=self.three_valued,
            parallelism=effective_parallelism,
            partitions=effective_partitions,
            access_plan=prepared.access_plan if self.access_paths else None,
            shards=effective_shards,
            query=query,
        )
        if tracer is not None:
            # Materialize one span per operator under the still-open execute
            # span: duration is the operator's *self* time (additive across
            # operators), inclusive time and call count ride as attributes.
            for node_id, timing in sorted(tracer.operator_timings().items()):
                tracer.add_synthetic(
                    f"operator:{timing['label']}#{node_id}",
                    timing["self_seconds"],
                    inclusive_seconds=timing["seconds"],
                    calls=timing["calls"],
                )
            tracer.end(
                pages_read=exec_context.iostats.pages_read,
                pages_hit=exec_context.iostats.pages_hit,
                pages_pruned=exec_context.metrics.pages_pruned,
                morsels=exec_context.metrics.morsels_executed,
                shards_executed=exec_context.metrics.shards_executed,
            )
        if query.has_output_shaping:
            if tracer is not None:
                with tracer.span("postprocess"):
                    output = apply_output_shaping(
                        output,
                        query,
                        skip_aggregates=exec_context.aggregates_prefolded,
                    )
            else:
                output = apply_output_shaping(
                    output, query, skip_aggregates=exec_context.aggregates_prefolded
                )
        execution_seconds = execution_timer.elapsed()
        if tracer is not None:
            tracer.end(output_rows=output.row_count, cache_hit=cache_hit)

        return QueryResult(
            planner_name=prepared.planner,
            output=output,
            planning_seconds=reported_planning,
            execution_seconds=execution_seconds,
            metrics=exec_context.metrics,
            iostats=exec_context.iostats,
            plan_description=prepared.plan_description,
            cache_hit=cache_hit,
            kernel_tier=tier,
            trace=tracer,
        )

    def explain(
        self, query: Query | str, planner: str = "tcombined", naive_tags: bool = False
    ) -> str:
        """Return the chosen plan(s) as a pretty-printed string."""
        planner = planner.lower()
        if planner == "tmin":
            planner = "tcombined"
        if planner not in ALL_PLANNERS:
            planner = "tcombined"
        return self.prepare(query, planner, naive_tags).plan_description

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _bind(self, query: Query | str) -> Query:
        if isinstance(query, Query):
            return query
        from repro.sql import parse_query

        return parse_query(query)

    def _access_manager(self):
        """The catalog's access-path manager (created lazily), or None."""
        if not self.access_paths:
            return None
        from repro.access.manager import ensure_access_manager

        return ensure_access_manager(self.catalog)

    def _planner_context(
        self, query: Query, naive_tags: bool, selectivity_overrides=None
    ) -> PlannerContext:
        return PlannerContext.for_query(
            query,
            self.catalog,
            cost_params=self.cost_params,
            three_valued=self.three_valued,
            naive_tags=naive_tags,
            sample_size=self.stats_sample_size,
            selectivity_mode=self.selectivity_mode,
            stats_provider=self.stats_provider,
            selectivity_overrides=selectivity_overrides,
            access_manager=self._access_manager(),
        )

    def _execute_tmin(
        self,
        query: Query,
        naive_tags: bool,
        parallelism: int | None = None,
        partitions: int | None = None,
        shards: int | None = None,
    ) -> QueryResult:
        """Execute every tagged candidate planner and keep the fastest run."""
        best: QueryResult | None = None
        for planner in TMIN_CANDIDATES:
            prepared = self.prepare(query, planner, naive_tags)
            result = self.execute_prepared(
                prepared, parallelism=parallelism, partitions=partitions, shards=shards
            )
            if best is None or result.total_seconds < best.total_seconds:
                best = result
        assert best is not None
        best.planner_name = "tmin"
        return best

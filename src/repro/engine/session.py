"""The public, high-level API: :class:`Session`.

A session wraps a catalog of base tables and executes queries — written in
SQL or built programmatically as :class:`~repro.plan.query.Query` objects —
under any of the planners evaluated in the paper:

==============  ======================================================
planner name    meaning
==============  ======================================================
``tcombined``   tagged execution, cheapest of the four tagged planners
``tpushdown``   tagged execution, all base predicates pushed down
``tpullup``     tagged execution, Algorithm 2 pull-up search
``titerpush``   tagged execution, iterative push-down search
``tpushconj``   tagged execution forced to mimic a conjunctive planner
``texhaustive`` tagged execution, DP join ordering (extension beyond the paper)
``tmin``        oracle: execute every tagged candidate planner, keep the fastest
``bdisj``       traditional execution, per-root-clause plans + union
``bpushconj``   traditional execution, conjunctive pushdown only
``bypass``      bypass-technique execution (related-work comparator)
==============  ======================================================

Example::

    from repro import Session
    from repro.workloads.imdb import generate_imdb_catalog

    session = Session(generate_imdb_catalog(scale=0.1, seed=7))
    result = session.execute(
        "SELECT * FROM title AS t JOIN movie_info_idx AS mi_idx "
        "ON t.id = mi_idx.movie_id "
        "WHERE (t.production_year > 2000 AND mi_idx.info > 7.0) "
        "   OR (t.production_year > 1980 AND mi_idx.info > 8.0)",
        planner="tcombined",
    )
    print(result.row_count, result.total_seconds)

Execution is split into two phases so callers can reuse the expensive one:
:meth:`Session.prepare` parses, collects statistics and plans, returning a
:class:`PreparedPlan`; :meth:`Session.execute_prepared` runs a prepared plan.
:meth:`Session.execute` simply chains the two.  The service layer
(:mod:`repro.service`) caches :class:`PreparedPlan` objects keyed by a
normalized query fingerprint so repeated queries skip the prepare phase
entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baseline.planners import BDisjPlanner, BPushConjPlanner, TraditionalPlan
from repro.bypass.executor import BypassExecutor
from repro.bypass.planner import BypassPlan, BypassPlanner
from repro.core.planner import PLANNER_REGISTRY, TMIN_CANDIDATES
from repro.core.planner.base import PlannerContext
from repro.core.planner.cost import CostParams
from repro.core.predtree import PredicateTree
from repro.core.tagmap import PlanTagAnnotations
from repro.engine.executor import TaggedExecutor, TraditionalExecutor
from repro.engine.metrics import ExecContext, Stopwatch
from repro.engine.postprocess import apply_output_shaping
from repro.engine.result import QueryResult
from repro.plan.logical import PlanNode, plan_to_string
from repro.plan.query import Query
from repro.storage.catalog import Catalog

TAGGED_PLANNERS = tuple(PLANNER_REGISTRY)
TRADITIONAL_PLANNERS = ("bdisj", "bpushconj")
ALL_PLANNERS = TAGGED_PLANNERS + TRADITIONAL_PLANNERS + ("tmin", "bypass")


@dataclass
class PreparedPlan:
    """The reusable outcome of the prepare phase for one query.

    Holds everything execution needs and nothing it does not: the chosen
    plan, its tag annotations (tagged execution only) and the predicate tree.
    A prepared plan is immutable during execution, so one instance can be
    executed many times — including concurrently from several threads — as
    long as the catalog it was planned against is unchanged.

    Attributes:
        planner: the planner name the caller requested (``"tcombined"``, ...).
        kind: execution model — ``"tagged"``, ``"traditional"`` or ``"bypass"``.
        query: the bound query (drives output shaping and projection).
        naive_tags: whether tag maps were built without pruning.
        plan: the logical plan (:class:`PlanNode` for tagged plans,
            :class:`TraditionalPlan` or :class:`BypassPlan` otherwise).
        annotations: tag maps for tagged plans, ``None`` otherwise.
        predicate_tree: the query's predicate tree (``None`` without WHERE).
        plan_description: pretty-printed plan, as shown by ``explain``.
        planning_seconds: wall-clock cost of the prepare phase.
        catalog_version: catalog version the plan was built against.
    """

    planner: str
    kind: str
    query: Query
    naive_tags: bool
    plan: PlanNode | TraditionalPlan | BypassPlan
    annotations: PlanTagAnnotations | None
    predicate_tree: PredicateTree | None
    plan_description: str
    planning_seconds: float
    catalog_version: int


class Session:
    """Executes queries against a catalog under a chosen planner.

    Args:
        catalog: the base tables.
        cost_params: cost-model constants used by the planners.
        three_valued: evaluate predicates under SQL three-valued logic.
        stats_sample_size: rows sampled per table when measuring selectivities.
        selectivity_mode: ``"measured"`` or ``"histogram"``.
        stats_provider: optional provider of cached per-table statistics and
            sample draws (see :class:`repro.service.StatsCache`); ``None``
            recomputes statistics on every prepare, which is deterministic
            and therefore equivalent.
    """

    def __init__(
        self,
        catalog: Catalog,
        cost_params: CostParams | None = None,
        three_valued: bool = True,
        stats_sample_size: int = 20_000,
        selectivity_mode: str = "measured",
        stats_provider=None,
    ) -> None:
        self.catalog = catalog
        self.cost_params = cost_params or CostParams()
        self.three_valued = three_valued
        self.stats_sample_size = stats_sample_size
        self.selectivity_mode = selectivity_mode
        self.stats_provider = stats_provider

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: Query | str,
        planner: str = "tcombined",
        naive_tags: bool = False,
    ) -> QueryResult:
        """Plan and execute a query; returns a :class:`QueryResult`."""
        planner = planner.lower()
        if planner == "tmin":
            return self._execute_tmin(self._bind(query), naive_tags)
        prepared = self.prepare(query, planner, naive_tags)
        return self.execute_prepared(prepared)

    def prepare(
        self,
        query: Query | str,
        planner: str = "tcombined",
        naive_tags: bool = False,
    ) -> PreparedPlan:
        """Parse, collect statistics and plan; returns a :class:`PreparedPlan`.

        ``tmin`` cannot be prepared: it is an oracle that *executes* every
        tagged candidate and keeps the fastest, so there is no single plan to
        hand back before execution.
        """
        planner = planner.lower()
        if planner == "tmin":
            raise ValueError(
                "tmin executes every candidate planner and cannot be prepared; "
                "call execute() instead"
            )
        if planner not in ALL_PLANNERS:
            raise ValueError(
                f"unknown planner {planner!r}; choose one of {', '.join(ALL_PLANNERS)}"
            )
        bound = self._bind(query)
        timer = Stopwatch()
        context = self._planner_context(bound, naive_tags)

        if planner == "bypass":
            planned = BypassPlanner(context).plan()
            kind = "bypass"
            annotations = None
            plan = planned
            description = planned.to_string()
        elif planner in TRADITIONAL_PLANNERS:
            planner_obj = (BDisjPlanner if planner == "bdisj" else BPushConjPlanner)(context)
            planned = planner_obj.plan()
            kind = "traditional"
            annotations = None
            plan = planned
            description = "\n---\n".join(
                plan_to_string(subplan) for subplan in planned.subplans
            )
        else:
            planned = PLANNER_REGISTRY[planner](context).plan()
            kind = "tagged"
            annotations = planned.annotations
            plan = planned.plan
            description = plan_to_string(planned.plan)

        return PreparedPlan(
            planner=planner,
            kind=kind,
            query=bound,
            naive_tags=naive_tags,
            plan=plan,
            annotations=annotations,
            predicate_tree=context.predicate_tree,
            plan_description=description,
            planning_seconds=timer.elapsed(),
            catalog_version=self.catalog.version,
        )

    def execute_prepared(
        self,
        prepared: PreparedPlan,
        planning_seconds: float | None = None,
        cache_hit: bool = False,
    ) -> QueryResult:
        """Execute a :class:`PreparedPlan` and return a :class:`QueryResult`.

        ``planning_seconds`` overrides the reported planning time (the
        service layer passes the cache-lookup time on a hit); by default the
        original prepare cost is reported, which makes
        ``execute() == prepare() + execute_prepared()`` faithful to the
        paper's planning/execution split.
        """
        query = prepared.query
        exec_context = ExecContext()
        if prepared.kind == "tagged":
            executor = TaggedExecutor(
                self.catalog, query, prepared.annotations, prepared.predicate_tree
            )
        elif prepared.kind == "bypass":
            executor = BypassExecutor(
                self.catalog, prepared.predicate_tree, three_valued=self.three_valued
            )
        else:
            executor = TraditionalExecutor(self.catalog, query)

        execution_timer = Stopwatch()
        if prepared.kind == "bypass":
            output = executor.execute(prepared.plan.plan, exec_context)
        else:
            output = executor.execute(prepared.plan, exec_context)
        if query.has_output_shaping:
            output = apply_output_shaping(output, query)
        execution_seconds = execution_timer.elapsed()

        return QueryResult(
            planner_name=prepared.planner,
            output=output,
            planning_seconds=(
                prepared.planning_seconds if planning_seconds is None else planning_seconds
            ),
            execution_seconds=execution_seconds,
            metrics=exec_context.metrics,
            iostats=exec_context.iostats,
            plan_description=prepared.plan_description,
            cache_hit=cache_hit,
        )

    def explain(
        self, query: Query | str, planner: str = "tcombined", naive_tags: bool = False
    ) -> str:
        """Return the chosen plan(s) as a pretty-printed string."""
        planner = planner.lower()
        if planner == "tmin":
            planner = "tcombined"
        if planner not in ALL_PLANNERS:
            planner = "tcombined"
        return self.prepare(query, planner, naive_tags).plan_description

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _bind(self, query: Query | str) -> Query:
        if isinstance(query, Query):
            return query
        from repro.sql import parse_query

        return parse_query(query)

    def _planner_context(self, query: Query, naive_tags: bool) -> PlannerContext:
        return PlannerContext.for_query(
            query,
            self.catalog,
            cost_params=self.cost_params,
            three_valued=self.three_valued,
            naive_tags=naive_tags,
            sample_size=self.stats_sample_size,
            selectivity_mode=self.selectivity_mode,
            stats_provider=self.stats_provider,
        )

    def _execute_tmin(self, query: Query, naive_tags: bool) -> QueryResult:
        """Execute every tagged candidate planner and keep the fastest run."""
        best: QueryResult | None = None
        for planner in TMIN_CANDIDATES:
            prepared = self.prepare(query, planner, naive_tags)
            result = self.execute_prepared(prepared)
            if best is None or result.total_seconds < best.total_seconds:
                best = result
        assert best is not None
        best.planner_name = "tmin"
        return best

"""The public, high-level API: :class:`Session`.

A session wraps a catalog of base tables and executes queries — written in
SQL or built programmatically as :class:`~repro.plan.query.Query` objects —
under any of the planners evaluated in the paper:

==============  ======================================================
planner name    meaning
==============  ======================================================
``tcombined``   tagged execution, cheapest of the four tagged planners
``tpushdown``   tagged execution, all base predicates pushed down
``tpullup``     tagged execution, Algorithm 2 pull-up search
``titerpush``   tagged execution, iterative push-down search
``tpushconj``   tagged execution forced to mimic a conjunctive planner
``texhaustive`` tagged execution, DP join ordering (extension beyond the paper)
``tmin``        oracle: execute every tagged candidate planner, keep the fastest
``bdisj``       traditional execution, per-root-clause plans + union
``bpushconj``   traditional execution, conjunctive pushdown only
``bypass``      bypass-technique execution (related-work comparator)
==============  ======================================================

Example::

    from repro import Session
    from repro.workloads.imdb import generate_imdb_catalog

    session = Session(generate_imdb_catalog(scale=0.1, seed=7))
    result = session.execute(
        "SELECT * FROM title AS t JOIN movie_info_idx AS mi_idx "
        "ON t.id = mi_idx.movie_id "
        "WHERE (t.production_year > 2000 AND mi_idx.info > 7.0) "
        "   OR (t.production_year > 1980 AND mi_idx.info > 8.0)",
        planner="tcombined",
    )
    print(result.row_count, result.total_seconds)
"""

from __future__ import annotations

from repro.baseline.planners import BDisjPlanner, BPushConjPlanner
from repro.bypass.executor import BypassExecutor
from repro.bypass.planner import BypassPlanner
from repro.core.planner import PLANNER_REGISTRY, TMIN_CANDIDATES
from repro.core.planner.base import PlannerContext
from repro.core.planner.combined import TCombinedPlanner
from repro.core.planner.cost import CostParams
from repro.engine.executor import TaggedExecutor, TraditionalExecutor
from repro.engine.metrics import ExecContext, Stopwatch
from repro.engine.postprocess import apply_output_shaping
from repro.engine.result import QueryResult
from repro.plan.logical import plan_to_string
from repro.plan.query import Query
from repro.storage.catalog import Catalog

TAGGED_PLANNERS = tuple(PLANNER_REGISTRY)
TRADITIONAL_PLANNERS = ("bdisj", "bpushconj")
ALL_PLANNERS = TAGGED_PLANNERS + TRADITIONAL_PLANNERS + ("tmin", "bypass")


class Session:
    """Executes queries against a catalog under a chosen planner."""

    def __init__(
        self,
        catalog: Catalog,
        cost_params: CostParams | None = None,
        three_valued: bool = True,
        stats_sample_size: int = 20_000,
        selectivity_mode: str = "measured",
    ) -> None:
        self.catalog = catalog
        self.cost_params = cost_params or CostParams()
        self.three_valued = three_valued
        self.stats_sample_size = stats_sample_size
        self.selectivity_mode = selectivity_mode

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: Query | str,
        planner: str = "tcombined",
        naive_tags: bool = False,
    ) -> QueryResult:
        """Plan and execute a query; returns a :class:`QueryResult`."""
        planner = planner.lower()
        if planner not in ALL_PLANNERS:
            raise ValueError(
                f"unknown planner {planner!r}; choose one of {', '.join(ALL_PLANNERS)}"
            )
        bound = self._bind(query)

        if planner == "tmin":
            return self._execute_tmin(bound, naive_tags)
        if planner == "bypass":
            return self._execute_bypass(bound)
        if planner in TRADITIONAL_PLANNERS:
            return self._execute_traditional(bound, planner)
        return self._execute_tagged(bound, planner, naive_tags)

    def explain(
        self, query: Query | str, planner: str = "tcombined", naive_tags: bool = False
    ) -> str:
        """Return the chosen plan(s) as a pretty-printed string."""
        bound = self._bind(query)
        planner = planner.lower()
        context = self._planner_context(bound, naive_tags)
        if planner in TRADITIONAL_PLANNERS:
            planner_obj = (BDisjPlanner if planner == "bdisj" else BPushConjPlanner)(context)
            plan = planner_obj.plan()
            return "\n---\n".join(plan_to_string(subplan) for subplan in plan.subplans)
        if planner == "bypass":
            return BypassPlanner(context).plan().to_string()
        planner_class = PLANNER_REGISTRY.get(planner, TCombinedPlanner)
        result = planner_class(context).plan()
        return plan_to_string(result.plan)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _bind(self, query: Query | str) -> Query:
        if isinstance(query, Query):
            return query
        from repro.sql import parse_query

        return parse_query(query)

    def _planner_context(self, query: Query, naive_tags: bool) -> PlannerContext:
        return PlannerContext.for_query(
            query,
            self.catalog,
            cost_params=self.cost_params,
            three_valued=self.three_valued,
            naive_tags=naive_tags,
            sample_size=self.stats_sample_size,
            selectivity_mode=self.selectivity_mode,
        )

    def _execute_tagged(self, query: Query, planner: str, naive_tags: bool) -> QueryResult:
        planning_timer = Stopwatch()
        context = self._planner_context(query, naive_tags)
        planner_class = PLANNER_REGISTRY[planner]
        planned = planner_class(context).plan()
        planning_seconds = planning_timer.elapsed()

        exec_context = ExecContext()
        executor = TaggedExecutor(
            self.catalog, query, planned.annotations, context.predicate_tree
        )
        execution_timer = Stopwatch()
        output = executor.execute(planned.plan, exec_context)
        if query.has_output_shaping:
            output = apply_output_shaping(output, query)
        execution_seconds = execution_timer.elapsed()

        return QueryResult(
            planner_name=planned.planner_name,
            output=output,
            planning_seconds=planning_seconds,
            execution_seconds=execution_seconds,
            metrics=exec_context.metrics,
            iostats=exec_context.iostats,
            plan_description=plan_to_string(planned.plan),
        )

    def _execute_tmin(self, query: Query, naive_tags: bool) -> QueryResult:
        """Execute every tagged candidate planner and keep the fastest run."""
        best: QueryResult | None = None
        for planner in TMIN_CANDIDATES:
            result = self._execute_tagged(query, planner, naive_tags)
            if best is None or result.total_seconds < best.total_seconds:
                best = result
        assert best is not None
        best.planner_name = "tmin"
        return best

    def _execute_bypass(self, query: Query) -> QueryResult:
        planning_timer = Stopwatch()
        context = self._planner_context(query, naive_tags=False)
        planned = BypassPlanner(context).plan()
        planning_seconds = planning_timer.elapsed()

        exec_context = ExecContext()
        executor = BypassExecutor(
            self.catalog, context.predicate_tree, three_valued=self.three_valued
        )
        execution_timer = Stopwatch()
        output = executor.execute(planned.plan, exec_context)
        if query.has_output_shaping:
            output = apply_output_shaping(output, query)
        execution_seconds = execution_timer.elapsed()

        return QueryResult(
            planner_name=planned.planner_name,
            output=output,
            planning_seconds=planning_seconds,
            execution_seconds=execution_seconds,
            metrics=exec_context.metrics,
            iostats=exec_context.iostats,
            plan_description=planned.to_string(),
        )

    def _execute_traditional(self, query: Query, planner: str) -> QueryResult:
        planning_timer = Stopwatch()
        context = self._planner_context(query, naive_tags=False)
        planner_obj = (BDisjPlanner if planner == "bdisj" else BPushConjPlanner)(context)
        planned = planner_obj.plan()
        planning_seconds = planning_timer.elapsed()

        exec_context = ExecContext()
        executor = TraditionalExecutor(self.catalog, query)
        execution_timer = Stopwatch()
        output = executor.execute(planned, exec_context)
        if query.has_output_shaping:
            output = apply_output_shaping(output, query)
        execution_seconds = execution_timer.elapsed()

        return QueryResult(
            planner_name=planned.planner_name,
            output=output,
            planning_seconds=planning_seconds,
            execution_seconds=execution_seconds,
            metrics=exec_context.metrics,
            iostats=exec_context.iostats,
            plan_description="\n---\n".join(
                plan_to_string(subplan) for subplan in planned.subplans
            ),
        )

"""Boolean expression layer: AST, vectorized evaluation, three-valued logic.

Predicate expressions in queries are represented by the classes in
:mod:`repro.expr.ast`.  Evaluation is vectorized: a predicate evaluated
against a :class:`~repro.expr.eval.RowBatch` returns one truth value
(TRUE / FALSE / UNKNOWN) per row, encoded per :mod:`repro.expr.three_valued`.

The :mod:`repro.expr.builders` module offers a small DSL for constructing
expressions programmatically, which the workload generators and the examples
use; SQL text goes through :mod:`repro.sql` instead.
"""

from repro.expr.ast import (
    AndExpr,
    BetweenPredicate,
    BooleanExpr,
    ColumnRef,
    Comparison,
    InPredicate,
    IsNullPredicate,
    LikePredicate,
    Literal,
    NotExpr,
    OrExpr,
    ValueExpr,
)
from repro.expr.builders import and_, between, col, in_, is_null, like, lit, not_, or_
from repro.expr.eval import RowBatch
from repro.expr.three_valued import FALSE, TRUE, UNKNOWN, TruthValue

__all__ = [
    "AndExpr",
    "BetweenPredicate",
    "BooleanExpr",
    "ColumnRef",
    "Comparison",
    "InPredicate",
    "IsNullPredicate",
    "LikePredicate",
    "Literal",
    "NotExpr",
    "OrExpr",
    "RowBatch",
    "TruthValue",
    "ValueExpr",
    "TRUE",
    "FALSE",
    "UNKNOWN",
    "and_",
    "between",
    "col",
    "in_",
    "is_null",
    "like",
    "lit",
    "not_",
    "or_",
]

"""Three-valued (SQL) logic kernels.

SQL predicates over NULL values evaluate to UNKNOWN rather than TRUE or
FALSE.  Section 3.4 of the paper extends tagged execution to this
three-valued logic; the kernels here implement the truth tables from the SQL
standard over whole NumPy arrays so both the expression evaluator and the tag
generalization algorithm can share them.

Truth values are encoded as ``uint8``:

* ``FALSE``   = 0
* ``TRUE``    = 1
* ``UNKNOWN`` = 2

The encoding is chosen so that ``value == TRUE`` gives the usual "passes the
filter" boolean mask directly.
"""

from __future__ import annotations

import enum

import numpy as np


class TruthValue(enum.IntEnum):
    """A single three-valued-logic truth value."""

    FALSE = 0
    TRUE = 1
    UNKNOWN = 2

    def __str__(self) -> str:
        return {TruthValue.FALSE: "F", TruthValue.TRUE: "T", TruthValue.UNKNOWN: "U"}[self]

    @classmethod
    def from_bool(cls, value: bool) -> "TruthValue":
        """Lift a Python boolean into the three-valued domain."""
        return cls.TRUE if value else cls.FALSE


FALSE = TruthValue.FALSE
TRUE = TruthValue.TRUE
UNKNOWN = TruthValue.UNKNOWN

_TV_DTYPE = np.uint8


def from_bool_array(mask: np.ndarray, nulls: np.ndarray | None = None) -> np.ndarray:
    """Convert a boolean mask (plus optional NULL mask) into truth values.

    Rows where ``nulls`` is set become UNKNOWN regardless of the mask.
    """
    result = mask.astype(_TV_DTYPE)
    if nulls is not None and nulls.any():
        result = result.copy()
        result[nulls] = int(UNKNOWN)
    return result


def is_true(values: np.ndarray) -> np.ndarray:
    """Boolean mask of rows whose truth value is TRUE."""
    return values == int(TRUE)


def is_false(values: np.ndarray) -> np.ndarray:
    """Boolean mask of rows whose truth value is FALSE."""
    return values == int(FALSE)


def is_unknown(values: np.ndarray) -> np.ndarray:
    """Boolean mask of rows whose truth value is UNKNOWN."""
    return values == int(UNKNOWN)


def logical_not(values: np.ndarray) -> np.ndarray:
    """NOT under three-valued logic (UNKNOWN stays UNKNOWN)."""
    result = np.empty_like(values)
    result[values == int(TRUE)] = int(FALSE)
    result[values == int(FALSE)] = int(TRUE)
    result[values == int(UNKNOWN)] = int(UNKNOWN)
    return result


def logical_and(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """AND under three-valued logic.

    FALSE dominates; UNKNOWN AND TRUE = UNKNOWN.
    """
    result = np.full(left.shape, int(UNKNOWN), dtype=_TV_DTYPE)
    result[(left == int(TRUE)) & (right == int(TRUE))] = int(TRUE)
    result[(left == int(FALSE)) | (right == int(FALSE))] = int(FALSE)
    return result


def logical_or(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """OR under three-valued logic.

    TRUE dominates; UNKNOWN OR FALSE = UNKNOWN.
    """
    result = np.full(left.shape, int(UNKNOWN), dtype=_TV_DTYPE)
    result[(left == int(FALSE)) & (right == int(FALSE))] = int(FALSE)
    result[(left == int(TRUE)) | (right == int(TRUE))] = int(TRUE)
    return result


def and_all(operands: list[np.ndarray]) -> np.ndarray:
    """AND a non-empty list of truth-value arrays."""
    if not operands:
        raise ValueError("and_all requires at least one operand")
    result = operands[0]
    for operand in operands[1:]:
        result = logical_and(result, operand)
    return result


def or_all(operands: list[np.ndarray]) -> np.ndarray:
    """OR a non-empty list of truth-value arrays."""
    if not operands:
        raise ValueError("or_all requires at least one operand")
    result = operands[0]
    for operand in operands[1:]:
        result = logical_or(result, operand)
    return result


def scalar_not(value: TruthValue) -> TruthValue:
    """NOT for a single truth value."""
    if value is TRUE:
        return FALSE
    if value is FALSE:
        return TRUE
    return UNKNOWN


def scalar_and(left: TruthValue, right: TruthValue) -> TruthValue:
    """AND for single truth values."""
    if left is FALSE or right is FALSE:
        return FALSE
    if left is TRUE and right is TRUE:
        return TRUE
    return UNKNOWN


def scalar_or(left: TruthValue, right: TruthValue) -> TruthValue:
    """OR for single truth values."""
    if left is TRUE or right is TRUE:
        return TRUE
    if left is FALSE and right is FALSE:
        return FALSE
    return UNKNOWN

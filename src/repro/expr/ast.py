"""Expression AST.

Two families of nodes:

* :class:`ValueExpr` — value-producing expressions (column references and
  literals).  Only what the workloads and JOB-style queries need.
* :class:`BooleanExpr` — truth-valued expressions.  Leaves are *base
  predicates* (comparisons, LIKE, IN, BETWEEN, IS NULL); interior nodes are
  AND / OR / NOT.

Every boolean expression has a canonical structural ``key()``.  Two
structurally identical subexpressions share the same key, which is how the
tagged-execution core recognizes that the same predicate subexpression
appears multiple times in a query (Section 3.2, "Duplicates").
"""

from __future__ import annotations

import re
from collections.abc import Sequence

import numpy as np

from repro.expr import three_valued as tv
from repro.expr.eval import RowBatch


class ExprError(ValueError):
    """Raised for malformed expressions."""


# --------------------------------------------------------------------------- #
# Value expressions
# --------------------------------------------------------------------------- #
class ValueExpr:
    """Base class of value-producing expressions.

    Nodes are immutable, so :meth:`tables` and :meth:`key` memoize on first
    call (both sit on the per-clause, per-morsel hot path); subclasses
    implement ``_tables`` / ``_key``.
    """

    def tables(self) -> frozenset[str]:
        """Set of table aliases referenced by this expression (memoized)."""
        cached = self.__dict__.get("_tables_cache")
        if cached is None:
            cached = self._tables()
            self.__dict__["_tables_cache"] = cached
        return cached

    def key(self) -> str:
        """Canonical structural key (memoized)."""
        cached = self.__dict__.get("_key_cache")
        if cached is None:
            cached = self._key()
            self.__dict__["_key_cache"] = cached
        return cached

    def _tables(self) -> frozenset[str]:
        raise NotImplementedError

    def _key(self) -> str:
        raise NotImplementedError

    def evaluate(self, batch: RowBatch) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(values, nulls)`` aligned with the batch rows."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.key()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ValueExpr) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())


class ColumnRef(ValueExpr):
    """A reference to ``alias.column``."""

    __slots__ = ("alias", "column")

    def __init__(self, alias: str, column: str) -> None:
        self.alias = alias
        self.column = column

    def _tables(self) -> frozenset[str]:
        return frozenset({self.alias})

    def _key(self) -> str:
        return f"{self.alias}.{self.column}"

    def evaluate(self, batch: RowBatch) -> tuple[np.ndarray, np.ndarray]:
        return batch.column(self.alias, self.column)


class Literal(ValueExpr):
    """A constant value (int, float, str, bool or None)."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def _tables(self) -> frozenset[str]:
        return frozenset()

    def _key(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)

    def evaluate(self, batch: RowBatch) -> tuple[np.ndarray, np.ndarray]:
        size = batch.num_rows
        if self.value is None:
            return np.zeros(size), np.ones(size, dtype=np.bool_)
        values = np.full(size, self.value, dtype=object if isinstance(self.value, str) else None)
        return values, np.zeros(size, dtype=np.bool_)


# --------------------------------------------------------------------------- #
# Boolean expressions
# --------------------------------------------------------------------------- #
class BooleanExpr:
    """Base class of truth-valued expressions.

    Nodes are immutable, so :meth:`tables` and :meth:`key` memoize on first
    call; subclasses implement ``_tables`` / ``_key``.  Subclass ``__slots__``
    do not prevent this — the slot-less base class gives every instance a
    ``__dict__`` to cache into.
    """

    def tables(self) -> frozenset[str]:
        """Set of table aliases referenced anywhere below this node (memoized)."""
        cached = self.__dict__.get("_tables_cache")
        if cached is None:
            cached = self._tables()
            self.__dict__["_tables_cache"] = cached
        return cached

    def key(self) -> str:
        """Canonical structural key (memoized; identical subexpressions share keys)."""
        cached = self.__dict__.get("_key_cache")
        if cached is None:
            cached = self._key()
            self.__dict__["_key_cache"] = cached
        return cached

    def _tables(self) -> frozenset[str]:
        raise NotImplementedError

    def _key(self) -> str:
        raise NotImplementedError

    def evaluate(self, batch: RowBatch) -> np.ndarray:
        """Truth-value array (uint8, see :mod:`repro.expr.three_valued`)."""
        raise NotImplementedError

    def children(self) -> tuple["BooleanExpr", ...]:
        """Child boolean expressions (empty for base predicates)."""
        return ()

    def is_base_predicate(self) -> bool:
        """True for leaves of the predicate tree."""
        return not self.children()

    def __repr__(self) -> str:
        return self.key()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BooleanExpr) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())


_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}


def _compare(op: str, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Elementwise comparison returning a boolean mask."""
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExprError(f"unknown comparison operator {op!r}")


class Comparison(BooleanExpr):
    """``left <op> right`` where op is one of =, !=, <, <=, >, >=."""

    __slots__ = ("left", "op", "right")

    def __init__(self, left: ValueExpr, op: str, right: ValueExpr) -> None:
        if op not in _COMPARISON_OPS:
            raise ExprError(f"unsupported comparison operator {op!r}")
        self.left = left
        self.op = op
        self.right = right

    def _tables(self) -> frozenset[str]:
        return self.left.tables() | self.right.tables()

    def _key(self) -> str:
        return f"({self.left.key()} {self.op} {self.right.key()})"

    def evaluate(self, batch: RowBatch) -> np.ndarray:
        left_values, left_nulls = self.left.evaluate(batch)
        right_values, right_nulls = self.right.evaluate(batch)
        mask = _compare(self.op, left_values, right_values)
        nulls = left_nulls | right_nulls
        return tv.from_bool_array(mask, nulls)


class LikePredicate(BooleanExpr):
    """SQL LIKE / ILIKE pattern matching against a string column."""

    __slots__ = ("operand", "pattern", "case_insensitive", "_regex")

    def __init__(self, operand: ValueExpr, pattern: str, case_insensitive: bool = False) -> None:
        self.operand = operand
        self.pattern = pattern
        self.case_insensitive = case_insensitive
        self._regex = re.compile(
            self._pattern_to_regex(pattern), re.IGNORECASE if case_insensitive else 0
        )

    @property
    def regex(self) -> re.Pattern:
        """The compiled (anchored) regex equivalent of the LIKE pattern."""
        return self._regex

    @staticmethod
    def _pattern_to_regex(pattern: str) -> str:
        """Translate a SQL LIKE pattern into an anchored regex."""
        out = ["^"]
        for char in pattern:
            if char == "%":
                out.append(".*")
            elif char == "_":
                out.append(".")
            else:
                out.append(re.escape(char))
        out.append("$")
        return "".join(out)

    def _tables(self) -> frozenset[str]:
        return self.operand.tables()

    def _key(self) -> str:
        op = "ILIKE" if self.case_insensitive else "LIKE"
        return f"({self.operand.key()} {op} '{self.pattern}')"

    def evaluate(self, batch: RowBatch) -> np.ndarray:
        values, nulls = self.operand.evaluate(batch)
        regex = self._regex
        mask = np.fromiter(
            (bool(regex.search(str(value))) for value in values),
            dtype=np.bool_,
            count=len(values),
        )
        return tv.from_bool_array(mask, nulls)


class InPredicate(BooleanExpr):
    """``operand IN (v1, v2, ...)`` against literal values."""

    __slots__ = ("operand", "values")

    def __init__(self, operand: ValueExpr, values: Sequence) -> None:
        if not values:
            raise ExprError("IN predicate requires at least one value")
        self.operand = operand
        self.values = tuple(values)

    def _tables(self) -> frozenset[str]:
        return self.operand.tables()

    def _key(self) -> str:
        rendered = ", ".join(
            f"'{value}'" if isinstance(value, str) else repr(value) for value in self.values
        )
        return f"({self.operand.key()} IN ({rendered}))"

    def evaluate(self, batch: RowBatch) -> np.ndarray:
        values, nulls = self.operand.evaluate(batch)
        mask = np.isin(values, np.array(self.values, dtype=values.dtype))
        return tv.from_bool_array(mask, nulls)


class BetweenPredicate(BooleanExpr):
    """``operand BETWEEN low AND high`` (inclusive bounds)."""

    __slots__ = ("operand", "low", "high")

    def __init__(self, operand: ValueExpr, low: ValueExpr, high: ValueExpr) -> None:
        self.operand = operand
        self.low = low
        self.high = high

    def _tables(self) -> frozenset[str]:
        return self.operand.tables() | self.low.tables() | self.high.tables()

    def _key(self) -> str:
        return f"({self.operand.key()} BETWEEN {self.low.key()} AND {self.high.key()})"

    def evaluate(self, batch: RowBatch) -> np.ndarray:
        values, nulls = self.operand.evaluate(batch)
        low_values, low_nulls = self.low.evaluate(batch)
        high_values, high_nulls = self.high.evaluate(batch)
        mask = (values >= low_values) & (values <= high_values)
        return tv.from_bool_array(mask, nulls | low_nulls | high_nulls)


class IsNullPredicate(BooleanExpr):
    """``operand IS [NOT] NULL`` — always two-valued."""

    __slots__ = ("operand", "negated")

    def __init__(self, operand: ValueExpr, negated: bool = False) -> None:
        self.operand = operand
        self.negated = negated

    def _tables(self) -> frozenset[str]:
        return self.operand.tables()

    def _key(self) -> str:
        return f"({self.operand.key()} IS {'NOT ' if self.negated else ''}NULL)"

    def evaluate(self, batch: RowBatch) -> np.ndarray:
        _values, nulls = self.operand.evaluate(batch)
        mask = ~nulls if self.negated else nulls
        return tv.from_bool_array(mask, None)


class NotExpr(BooleanExpr):
    """Logical negation."""

    __slots__ = ("child",)

    def __init__(self, child: BooleanExpr) -> None:
        self.child = child

    def _tables(self) -> frozenset[str]:
        return self.child.tables()

    def _key(self) -> str:
        return f"(NOT {self.child.key()})"

    def children(self) -> tuple[BooleanExpr, ...]:
        return (self.child,)

    def evaluate(self, batch: RowBatch) -> np.ndarray:
        return tv.logical_not(self.child.evaluate(batch))


class _NaryExpr(BooleanExpr):
    """Shared implementation of AND/OR nodes."""

    _CONNECTIVE = ""

    __slots__ = ("_children",)

    def __init__(self, children: Sequence[BooleanExpr]) -> None:
        if len(children) < 2:
            raise ExprError(
                f"{type(self).__name__} requires at least two children, got {len(children)}"
            )
        self._children = tuple(children)

    def _tables(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for child in self._children:
            result |= child.tables()
        return result

    def children(self) -> tuple[BooleanExpr, ...]:
        return self._children

    def _key(self) -> str:
        # Child keys are sorted so that commutative rearrangements of the
        # same subexpressions produce the same canonical key.
        child_keys = sorted(child.key() for child in self._children)
        connective = f" {self._CONNECTIVE} "
        return f"({connective.join(child_keys)})"


class AndExpr(_NaryExpr):
    """N-ary conjunction."""

    _CONNECTIVE = "AND"

    def evaluate(self, batch: RowBatch) -> np.ndarray:
        return tv.and_all([child.evaluate(batch) for child in self._children])


class OrExpr(_NaryExpr):
    """N-ary disjunction."""

    _CONNECTIVE = "OR"

    def evaluate(self, batch: RowBatch) -> np.ndarray:
        return tv.or_all([child.evaluate(batch) for child in self._children])


# --------------------------------------------------------------------------- #
# Structural helpers
# --------------------------------------------------------------------------- #
def flatten(expr: BooleanExpr) -> BooleanExpr:
    """Normalize an expression: AND-under-AND and OR-under-OR are merged.

    The paper's predicate trees require that no interior node has a parent of
    the same type (Section 3.2, footnote 3).  Double negations are also
    collapsed.
    """
    if isinstance(expr, NotExpr):
        child = flatten(expr.child)
        if isinstance(child, NotExpr):
            return child.child
        return NotExpr(child)
    if isinstance(expr, (AndExpr, OrExpr)):
        node_type = type(expr)
        merged: list[BooleanExpr] = []
        for child in expr.children():
            child = flatten(child)
            if isinstance(child, node_type):
                merged.extend(child.children())
            else:
                merged.append(child)
        if len(merged) == 1:
            return merged[0]
        return node_type(merged)
    return expr


def iter_base_predicates(expr: BooleanExpr):
    """Yield every base-predicate occurrence below ``expr`` (with repeats)."""
    if expr.is_base_predicate():
        yield expr
        return
    for child in expr.children():
        yield from iter_base_predicates(child)


def count_nodes(expr: BooleanExpr) -> int:
    """Total number of AST nodes below and including ``expr``."""
    return 1 + sum(count_nodes(child) for child in expr.children())

"""A small DSL for constructing expressions programmatically.

Example::

    from repro.expr import col, lit, and_, or_

    predicate = or_(
        and_(col("t", "year") > lit(2000), col("mi", "score") > lit(7.0)),
        and_(col("t", "year") > lit(1980), col("mi", "score") > lit(8.0)),
    )

``col(...) > lit(...)`` builds a :class:`~repro.expr.ast.Comparison`; the
other helpers wrap the remaining node types.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.expr.ast import (
    AndExpr,
    BetweenPredicate,
    BooleanExpr,
    ColumnRef,
    Comparison,
    InPredicate,
    IsNullPredicate,
    LikePredicate,
    Literal,
    NotExpr,
    OrExpr,
    ValueExpr,
    flatten,
)


class _ComparableColumn(ColumnRef):
    """Column reference with comparison operators building predicates."""

    def _as_value(self, other) -> ValueExpr:
        if isinstance(other, ValueExpr):
            return other
        return Literal(other)

    def __gt__(self, other) -> Comparison:
        return Comparison(self, ">", self._as_value(other))

    def __ge__(self, other) -> Comparison:
        return Comparison(self, ">=", self._as_value(other))

    def __lt__(self, other) -> Comparison:
        return Comparison(self, "<", self._as_value(other))

    def __le__(self, other) -> Comparison:
        return Comparison(self, "<=", self._as_value(other))

    # NB: __eq__/__ne__ are kept as structural equality (inherited); use
    # ``eq``/``ne`` to build comparison predicates.
    def eq(self, other) -> Comparison:
        """Build an equality predicate ``self = other``."""
        return Comparison(self, "=", self._as_value(other))

    def ne(self, other) -> Comparison:
        """Build an inequality predicate ``self != other``."""
        return Comparison(self, "!=", self._as_value(other))

    def __hash__(self) -> int:
        return super().__hash__()


def col(alias: str, column: str) -> _ComparableColumn:
    """Reference column ``alias.column``."""
    return _ComparableColumn(alias, column)


def lit(value) -> Literal:
    """A literal constant."""
    return Literal(value)


def and_(*children: BooleanExpr) -> BooleanExpr:
    """Conjunction of one or more boolean expressions (flattened)."""
    if not children:
        raise ValueError("and_ requires at least one child")
    if len(children) == 1:
        return children[0]
    return flatten(AndExpr(list(children)))


def or_(*children: BooleanExpr) -> BooleanExpr:
    """Disjunction of one or more boolean expressions (flattened)."""
    if not children:
        raise ValueError("or_ requires at least one child")
    if len(children) == 1:
        return children[0]
    return flatten(OrExpr(list(children)))


def not_(child: BooleanExpr) -> BooleanExpr:
    """Negation (double negations collapse)."""
    return flatten(NotExpr(child))


def like(operand: ValueExpr, pattern: str) -> LikePredicate:
    """Case-sensitive SQL LIKE."""
    return LikePredicate(operand, pattern, case_insensitive=False)


def ilike(operand: ValueExpr, pattern: str) -> LikePredicate:
    """Case-insensitive SQL LIKE (PostgreSQL's ILIKE)."""
    return LikePredicate(operand, pattern, case_insensitive=True)


def in_(operand: ValueExpr, values: Sequence) -> InPredicate:
    """``operand IN (values...)``."""
    return InPredicate(operand, values)


def between(operand: ValueExpr, low, high) -> BetweenPredicate:
    """``operand BETWEEN low AND high``."""
    low_expr = low if isinstance(low, ValueExpr) else Literal(low)
    high_expr = high if isinstance(high, ValueExpr) else Literal(high)
    return BetweenPredicate(operand, low_expr, high_expr)


def is_null(operand: ValueExpr, negated: bool = False) -> IsNullPredicate:
    """``operand IS [NOT] NULL``."""
    return IsNullPredicate(operand, negated=negated)

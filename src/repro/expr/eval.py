"""Evaluation context for vectorized predicate evaluation.

Predicates are evaluated against a :class:`RowBatch`: a logical set of rows,
each of which may span several base tables (after joins).  The batch exposes,
for every referenced ``(table alias, column)`` pair, the column values and
NULL mask aligned with the batch's rows.  Basilisk keeps only row *indices*
in its intermediate relations and fetches values lazily (Section 2.5.1); the
row batch is where that lazy fetch happens, so I/O accounting flows through
the storage layer naturally.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.storage.iostats import IOStats
from repro.storage.pagecache import LFUPageCache
from repro.storage.table import Table


class RowBatch:
    """A batch of logical rows used as predicate-evaluation input.

    Each logical row is described by one row index per table alias.  Columns
    are fetched lazily from the backing base tables and memoized per
    ``(alias, column)`` so a predicate referencing the same column twice only
    pays for one read.

    Args:
        tables: mapping of alias -> backing base :class:`Table`.
        indices: mapping of alias -> int64 array of row indices (all arrays
            must be the same length).  Aliases bound to ``None`` arrays are
            not usable in this batch.
        cache: optional page cache used for read accounting.
        iostats: optional I/O counter object.
    """

    def __init__(
        self,
        tables: Mapping[str, Table],
        indices: Mapping[str, np.ndarray],
        cache: LFUPageCache | None = None,
        iostats: IOStats | None = None,
    ) -> None:
        self._tables = dict(tables)
        self._indices = {alias: np.asarray(idx, dtype=np.int64) for alias, idx in indices.items()}
        lengths = {idx.shape[0] for idx in self._indices.values()}
        if len(lengths) > 1:
            raise ValueError(f"index arrays have differing lengths: {lengths}")
        self._num_rows = lengths.pop() if lengths else 0
        self._cache = cache
        self._iostats = iostats
        self._column_cache: dict[tuple[str, str], tuple[np.ndarray, np.ndarray]] = {}

    @property
    def num_rows(self) -> int:
        """Number of logical rows in the batch."""
        return self._num_rows

    @property
    def aliases(self) -> list[str]:
        """Table aliases addressable from this batch."""
        return list(self._indices)

    @property
    def cache(self) -> LFUPageCache | None:
        """Page cache used for read accounting (may be None)."""
        return self._cache

    @property
    def iostats(self) -> IOStats | None:
        """I/O counter object (may be None)."""
        return self._iostats

    def table(self, alias: str) -> Table | None:
        """Backing base table of ``alias``, or None when unbound."""
        return self._tables.get(alias)

    def restricted(self, rows: np.ndarray) -> "RestrictedBatch":
        """A view of this batch narrowed to ``rows`` (positions into it).

        Column reads still happen — and memoize, and account I/O — at this
        batch's full selection; the view merely slices them.  That is what
        keeps the fused kernels' I/O accounting identical to the legacy
        path while their clause work shrinks with the alive set.
        """
        return RestrictedBatch(self, rows)

    def indices_for(self, alias: str) -> np.ndarray:
        """Row-index array for ``alias``."""
        try:
            return self._indices[alias]
        except KeyError:
            raise KeyError(
                f"alias {alias!r} is not part of this row batch; "
                f"available: {', '.join(self._indices)}"
            ) from None

    def column(self, alias: str, column_name: str) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(values, nulls)`` for a column, aligned with batch rows."""
        key = (alias, column_name)
        if key in self._column_cache:
            return self._column_cache[key]
        if alias not in self._tables:
            raise KeyError(
                f"alias {alias!r} is not bound to a table; available: {', '.join(self._tables)}"
            )
        table = self._tables[alias]
        positions = self.indices_for(alias)
        values, nulls = table.read_column_at(
            column_name, positions, cache=self._cache, iostats=self._iostats
        )
        self._column_cache[key] = (values, nulls)
        return values, nulls

    @classmethod
    def for_base_table(
        cls,
        alias: str,
        table: Table,
        positions: np.ndarray | None = None,
        cache: LFUPageCache | None = None,
        iostats: IOStats | None = None,
    ) -> "RowBatch":
        """Build a batch over (a subset of) a single base table."""
        if positions is None:
            positions = np.arange(table.num_rows, dtype=np.int64)
        return cls({alias: table}, {alias: positions}, cache=cache, iostats=iostats)


class RestrictedBatch:
    """A row-subset view over a :class:`RowBatch`.

    Exposes the same evaluation surface (``num_rows`` / ``column`` /
    ``indices_for``) over a subset of the parent's rows, given as positions
    *into the parent batch*.  Column data comes from the parent's memoized
    full-selection reads and is sliced per call — the view itself never
    issues storage reads, so evaluating an expression against it is
    byte-identical to evaluating against the parent and slicing the result.
    """

    __slots__ = ("_parent", "_rows", "num_rows")

    def __init__(self, parent: RowBatch, rows: np.ndarray) -> None:
        self._parent = parent
        self._rows = rows
        self.num_rows = int(rows.shape[0])

    @property
    def aliases(self) -> list[str]:
        """Table aliases addressable from this view."""
        return self._parent.aliases

    def indices_for(self, alias: str) -> np.ndarray:
        """Row-index array for ``alias``, narrowed to the view's rows."""
        return self._parent.indices_for(alias)[self._rows]

    def column(self, alias: str, column_name: str) -> tuple[np.ndarray, np.ndarray]:
        """``(values, nulls)`` for the view's rows (sliced parent read)."""
        values, nulls = self._parent.column(alias, column_name)
        return values[self._rows], nulls[self._rows]

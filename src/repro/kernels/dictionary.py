"""Dictionary-aware predicate and join-key evaluation.

Low-cardinality string columns — venue names, field tags, genre labels — are
exactly where predicate evaluation over decoded Python strings hurts most.
The access layer already knows how to dictionary-encode a column
(:class:`repro.access.dictionary.DictionaryEncoding`); this module puts those
codes on the expression hot path:

* **Predicates**: equality / IN / LIKE / ordered comparisons against string
  literals evaluate the operation once per *distinct* value (a lookup table
  over the sorted dictionary) and then gather per row over int32 codes —
  rows never materialize decoded strings.  Because the same elementwise
  operation runs on every distinct value, the result is byte-identical to
  the legacy row-at-a-time evaluation, including the miss case: a constant
  absent from the dictionary simply matches no code (no ``KeyError``).
* **Join keys**: when both sides of an equi-join condition are
  dictionary-encoded string columns, :func:`join_code_columns` substitutes
  int code arrays for the decoded strings before key factorization, with the
  probe side remapped into the build side's code space (values absent from
  the build dictionary get codes beyond it — they can never match, which is
  the correct no-match outcome).

I/O accounting: reading codes instead of values touches the same simulated
pages (the dictionary is a per-column sidecar, not a narrower projection),
so code reads are accounted exactly like a value read of the same positions
via :meth:`repro.storage.column.Column.account_read` — the win is the
avoided string decode and per-row regex/compare work, not avoided pages.
"""

from __future__ import annotations

import numpy as np

from repro.access.dictionary import NULL_CODE, DictionaryEncoding, table_dictionary
from repro.expr.ast import ColumnRef, Comparison, InPredicate, LikePredicate, Literal, _compare
from repro.storage.table import Table


def leaf_operand(expr) -> ColumnRef | None:
    """The single column a dictionary-eligible base predicate reads.

    Returns ``None`` for shapes the dictionary path does not cover (the
    caller falls back to the generic evaluator): column-vs-column
    comparisons, non-string literals, BETWEEN, IS NULL, …
    """
    if isinstance(expr, Comparison):
        if (
            isinstance(expr.left, ColumnRef)
            and isinstance(expr.right, Literal)
            and isinstance(expr.right.value, str)
        ):
            return expr.left
        return None
    if isinstance(expr, InPredicate):
        if isinstance(expr.operand, ColumnRef) and all(
            isinstance(value, str) for value in expr.values
        ):
            return expr.operand
        return None
    if isinstance(expr, LikePredicate):
        if isinstance(expr.operand, ColumnRef):
            return expr.operand
        return None
    return None


def leaf_code_table(expr, encoding: DictionaryEncoding) -> np.ndarray | None:
    """Boolean match table over dictionary codes for a base predicate.

    Entry ``c`` answers "does distinct value ``c`` satisfy the predicate?".
    The predicate's own elementwise operation runs over the (sorted) distinct
    values, so semantics are exactly those of the row-at-a-time evaluator.
    """
    values = encoding.values
    if isinstance(expr, Comparison):
        return np.asarray(_compare(expr.op, values, expr.right.value), dtype=np.bool_)
    if isinstance(expr, InPredicate):
        return np.isin(values, np.array(expr.values, dtype=values.dtype))
    if isinstance(expr, LikePredicate):
        regex = expr.regex
        return np.fromiter(
            (bool(regex.search(str(value))) for value in values),
            dtype=np.bool_,
            count=len(values),
        )
    return None


def gather_truth(code_table: np.ndarray, codes: np.ndarray) -> np.ndarray:
    """Three-valued truth from a per-code match table and per-row codes.

    NULL rows (``NULL_CODE``) become UNKNOWN; every other row gathers its
    code's entry.  Implemented as one fancy-indexing pass: the table is
    extended with a trailing slot that code ``-1`` naturally indexes.
    """
    from repro.expr import three_valued as tv

    extended = np.append(code_table, False)
    mask = extended[codes]
    return tv.from_bool_array(mask, codes == NULL_CODE)


def join_code_columns(
    left_table: Table,
    left_column: str,
    left_rows: np.ndarray,
    right_table: Table,
    right_column: str,
    right_rows: np.ndarray,
    cache=None,
    iostats=None,
) -> tuple[tuple[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]] | None:
    """Code-valued ``(values, nulls)`` pairs for one join condition.

    Returns ``None`` when either side has no dictionary (caller reads the
    decoded values as before).  Row order, NULL handling and the equality
    structure of the keys are preserved exactly, so the join output is
    byte-identical to the string path.
    """
    left_encoding = table_dictionary(left_table, left_column)
    if left_encoding is None:
        return None
    right_encoding = table_dictionary(right_table, right_column)
    if right_encoding is None:
        return None

    left_table.column(left_column).account_read(left_rows, cache=cache, iostats=iostats)
    right_table.column(right_column).account_read(right_rows, cache=cache, iostats=iostats)

    left_codes = left_encoding.codes[left_rows].astype(np.int64)
    right_codes = right_encoding.codes[right_rows].astype(np.int64)
    if left_encoding is not right_encoding:
        right_codes = _remap_codes(right_codes, right_encoding, left_encoding)
    return (
        (left_codes, left_codes == NULL_CODE),
        (right_codes, right_codes == NULL_CODE),
    )


def _remap_codes(
    codes: np.ndarray, source: DictionaryEncoding, target: DictionaryEncoding
) -> np.ndarray:
    """Translate codes of ``source`` into ``target``'s code space.

    Source values present in the target dictionary get the target's code;
    absent values get distinct codes *beyond* the target's range, so they
    factorize as non-matching keys instead of colliding.  NULL codes stay
    NULL codes.
    """
    if target.num_values:
        positions = np.searchsorted(target.values, source.values)
        positions = np.minimum(positions, target.num_values - 1)
        found = target.values[positions] == source.values
    else:
        positions = np.zeros(source.num_values, dtype=np.int64)
        found = np.zeros(source.num_values, dtype=np.bool_)
    overflow = target.num_values + np.arange(source.num_values, dtype=np.int64)
    translation = np.where(found, positions, overflow)
    out = np.full(codes.shape, NULL_CODE, dtype=np.int64)
    valid = codes != NULL_CODE
    out[valid] = translation[codes[valid]]
    return out

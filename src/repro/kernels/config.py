"""Kernel-tier selection for the fused expression kernels.

The engine evaluates predicates through one of three tiers:

* ``"off"``   — the legacy path: every clause evaluates over the full
  truth arrays of :mod:`repro.expr.three_valued` (the oracle semantics).
* ``"numpy"`` — fused selection-vector kernels (:mod:`repro.kernels.fused`):
  AND chains short-circuit over candidate positions, OR trees merge
  per-disjunct selections without intermediate truth bitmaps, and
  dictionary-encoded string columns compare integer codes.
* ``"jit"``   — same as ``"numpy"`` plus numba-compiled comparison loops
  for numeric columns.  numba is an *optional* dependency
  (``pip install .[jit]``); when it is absent the tier silently downgrades
  to ``"numpy"`` so the knob is always safe to set.

:func:`resolve_tier` maps a requested tier to the tier that will actually
run; the resolved value is what the service layer hashes into plan-cache
fingerprints and what ``--explain-analyze`` reports.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

#: Valid values of the ``kernels`` knob on Session / QueryService / CLI.
KERNEL_TIERS = ("off", "numpy", "jit")

#: The session default: fused NumPy kernels (always available).
DEFAULT_TIER = "numpy"


def validate_tier(tier: str) -> str:
    """Return ``tier`` lower-cased, raising ``ValueError`` when unknown."""
    normalized = str(tier).lower()
    if normalized not in KERNEL_TIERS:
        raise ValueError(
            f"unknown kernel tier {tier!r}; choose one of {', '.join(KERNEL_TIERS)}"
        )
    return normalized


def jit_available() -> bool:
    """Whether the optional numba dependency is importable."""
    from repro.kernels import jit

    return jit.AVAILABLE


def resolve_tier(tier: str) -> str:
    """The tier that will actually run: ``"jit"`` downgrades without numba."""
    normalized = validate_tier(tier)
    if normalized == "jit" and not jit_available():
        return "numpy"
    return normalized


@dataclass(frozen=True)
class KernelConfig:
    """Resolved kernel configuration carried on an execution context.

    Attributes:
        tier: the resolved tier (``"numpy"`` or ``"jit"``; ``"off"`` never
            builds a config — the execution context carries ``None`` and the
            expression path stays on the legacy code).
        clause_selectivities: estimated selectivity per AND/OR child
            expression key, computed at prepare time from the
            :class:`~repro.optimizer.estimates.EstimateProvider` (and
            therefore refined by feedback overrides on re-plans).  The fused
            kernels order conjuncts ascending / disjuncts descending by
            these values; unknown keys default to 0.5.
    """

    tier: str = DEFAULT_TIER
    clause_selectivities: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Normalize to a plain dict so the config is always shard-shippable
        # (pickled to worker processes) regardless of what mapping type the
        # caller handed in (views, proxies, chained maps).
        if not isinstance(self.clause_selectivities, dict):
            object.__setattr__(
                self, "clause_selectivities", dict(self.clause_selectivities)
            )

    @property
    def use_jit(self) -> bool:
        """Whether the compiled tier should be attempted for hot loops."""
        return self.tier == "jit"

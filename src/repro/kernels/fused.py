"""Fused selection-vector kernels for predicate evaluation.

The legacy expression path (``BooleanExpr.evaluate``) computes a full-width
three-valued truth array for *every* clause of a predicate tree and combines
them afterwards (``tv.and_all`` / ``tv.or_all``).  For a conjunction of k
clauses over n rows that is Θ(n·k) clause work regardless of selectivity.

:class:`FusedEvaluator` evaluates the same tree over *selection vectors*:
an AND chain keeps an array of still-alive candidate positions and each
successive conjunct only evaluates those, so a selective first clause
short-circuits the rest of the chain; an OR tree dually retires rows as soon
as one disjunct accepts them.  Clause order comes from optimizer selectivity
estimates (ascending for AND — most selective first; descending for OR —
most accepting first), refined across executions by observed feedback pass
rates.  Three-valued NULL semantics are preserved exactly:

* AND: an UNKNOWN row *stays alive* (a later FALSE must still dominate it);
  rows alive at the end are TRUE unless flagged UNKNOWN along the way.
* OR: a TRUE verdict is final; rows never accepted are FALSE unless flagged
  UNKNOWN by some disjunct.

Leaves evaluate through (in order of preference) the dictionary code path
(:mod:`repro.kernels.dictionary`), the optional compiled path
(:mod:`repro.kernels.jit`), and finally the unmodified AST evaluator over a
restricted batch view — so every leaf is byte-identical to the legacy
oracle, only evaluated on fewer rows.
"""

from __future__ import annotations

import numpy as np

from repro.expr import three_valued as tv
from repro.expr.ast import (
    AndExpr,
    BooleanExpr,
    ColumnRef,
    Comparison,
    Literal,
    NotExpr,
    OrExpr,
)
from repro.expr.eval import RowBatch
from repro.kernels import dictionary as dict_kernels
from repro.kernels.config import KernelConfig

#: Selectivity assumed for clauses the optimizer has no estimate for.
DEFAULT_SELECTIVITY = 0.5


def ordered_children(
    expr: BooleanExpr, selectivities
) -> tuple[BooleanExpr, ...]:
    """Evaluation order of an AND/OR node's children.

    Conjuncts run most-selective first (ascending estimated selectivity) so
    the alive set shrinks as fast as possible; disjuncts run most-accepting
    first (descending) for the dual reason.  Ties break on the child's
    canonical key so the order — which ``--explain-analyze`` reports — is
    deterministic across runs and planner regroupings.
    """
    children = expr.children()
    if isinstance(expr, AndExpr):
        return tuple(
            sorted(
                children,
                key=lambda c: (selectivities.get(c.key(), DEFAULT_SELECTIVITY), c.key()),
            )
        )
    if isinstance(expr, OrExpr):
        return tuple(
            sorted(
                children,
                key=lambda c: (-selectivities.get(c.key(), DEFAULT_SELECTIVITY), c.key()),
            )
        )
    return children


class FusedEvaluator:
    """One predicate evaluation over one row batch.

    Args:
        batch: the full-selection :class:`RowBatch` the predicate runs over.
        config: resolved kernel configuration (tier + clause selectivities).
        context: execution context; ``context.metrics.clause_rows_evaluated``
            accumulates the actual per-leaf row counts (the bench counter).
        record_observations: when True (the caller has already applied the
            feedback gating that guards the root observation), the first
            conjunct/disjunct of a root AND/OR — which runs unconditioned,
            over the full selection — also records its pass rate, feeding the
            clause-ordering refinement loop.
    """

    def __init__(
        self,
        batch: RowBatch,
        config: KernelConfig,
        context,
        record_observations: bool = False,
    ) -> None:
        self.batch = batch
        self.config = config
        self.context = context
        self.record_observations = record_observations
        # (alias, column) -> (encoding, full-selection codes) or None.
        self._codes_cache: dict = {}
        # leaf key -> per-code boolean match table.
        self._code_tables: dict = {}

    def evaluate(self, predicate: BooleanExpr) -> np.ndarray:
        """Full-width three-valued truth array, byte-identical to legacy."""
        rows = np.arange(self.batch.num_rows, dtype=np.int64)
        return self._evaluate(predicate, rows, record=self.record_observations)

    # ------------------------------------------------------------------ #
    # Tree recursion
    # ------------------------------------------------------------------ #
    def _evaluate(
        self, expr: BooleanExpr, rows: np.ndarray, record: bool = False
    ) -> np.ndarray:
        if rows.size == 0:
            return np.zeros(0, dtype=np.uint8)
        if isinstance(expr, AndExpr):
            return self._evaluate_and(expr, rows, record)
        if isinstance(expr, OrExpr):
            return self._evaluate_or(expr, rows, record)
        if isinstance(expr, NotExpr):
            return tv.logical_not(self._evaluate(expr.child, rows))
        return self._evaluate_leaf(expr, rows)

    def _evaluate_and(self, expr: BooleanExpr, rows: np.ndarray, record: bool) -> np.ndarray:
        n = rows.size
        result = np.full(n, int(tv.FALSE), dtype=np.uint8)
        alive = np.arange(n, dtype=np.int64)
        unknown = np.zeros(n, dtype=np.bool_)
        for position, child in enumerate(
            ordered_children(expr, self.config.clause_selectivities)
        ):
            if alive.size == 0:
                break
            truth = self._evaluate(child, rows[alive])
            if record and position == 0:
                self._record_child(child, truth)
            unknown[alive[tv.is_unknown(truth)]] = True
            # UNKNOWN rows stay alive: a later FALSE still dominates them.
            alive = alive[~tv.is_false(truth)]
        result[alive] = int(tv.TRUE)
        flagged = alive[unknown[alive]]
        result[flagged] = int(tv.UNKNOWN)
        return result

    def _evaluate_or(self, expr: BooleanExpr, rows: np.ndarray, record: bool) -> np.ndarray:
        n = rows.size
        result = np.full(n, int(tv.FALSE), dtype=np.uint8)
        alive = np.arange(n, dtype=np.int64)
        unknown = np.zeros(n, dtype=np.bool_)
        for position, child in enumerate(
            ordered_children(expr, self.config.clause_selectivities)
        ):
            if alive.size == 0:
                break
            truth = self._evaluate(child, rows[alive])
            if record and position == 0:
                self._record_child(child, truth)
            accepted = tv.is_true(truth)
            result[alive[accepted]] = int(tv.TRUE)
            unknown[alive[tv.is_unknown(truth)]] = True
            # A TRUE verdict is final; everything else stays alive.
            alive = alive[~accepted]
        flagged = alive[unknown[alive]]
        result[flagged] = int(tv.UNKNOWN)
        return result

    # ------------------------------------------------------------------ #
    # Leaves
    # ------------------------------------------------------------------ #
    def _evaluate_leaf(self, expr: BooleanExpr, rows: np.ndarray) -> np.ndarray:
        self.context.metrics.clause_rows_evaluated += int(rows.size)
        truth = self._dictionary_leaf(expr, rows)
        if truth is not None:
            return truth
        truth = self._jit_leaf(expr, rows)
        if truth is not None:
            return truth
        return expr.evaluate(self.batch.restricted(rows))

    def _dictionary_leaf(self, expr: BooleanExpr, rows: np.ndarray) -> np.ndarray | None:
        operand = dict_kernels.leaf_operand(expr)
        if operand is None:
            return None
        entry = self._codes(operand.alias, operand.column)
        if entry is None:
            return None
        encoding, codes = entry
        leaf_key = expr.key()
        code_table = self._code_tables.get(leaf_key)
        if code_table is None:
            code_table = dict_kernels.leaf_code_table(expr, encoding)
            if code_table is None:
                return None
            self._code_tables[leaf_key] = code_table
        return dict_kernels.gather_truth(code_table, codes[rows])

    def _codes(self, alias: str, column: str):
        """Full-selection codes for a column, read (and accounted) once."""
        key = (alias, column)
        if key in self._codes_cache:
            return self._codes_cache[key]
        entry = None
        table = self.batch.table(alias)
        if table is not None:
            encoding = dict_kernels.table_dictionary(table, column)
            if encoding is not None:
                positions = self.batch.indices_for(alias)
                table.column(column).account_read(
                    positions, cache=self.batch.cache, iostats=self.batch.iostats
                )
                entry = (encoding, encoding.codes[positions])
        self._codes_cache[key] = entry
        return entry

    def _jit_leaf(self, expr: BooleanExpr, rows: np.ndarray) -> np.ndarray | None:
        if not self.config.use_jit:
            return None
        if not isinstance(expr, Comparison):
            return None
        if not (isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal)):
            return None
        literal = expr.right.value
        if isinstance(literal, bool) or not isinstance(literal, (int, float)):
            return None
        from repro.kernels import jit

        # Full-selection read (memoized on the batch) keeps I/O accounting
        # identical to the legacy path; only the compare runs restricted.
        values, nulls = self.batch.column(expr.left.alias, expr.left.column)
        return jit.compare_select(values[rows], nulls[rows], expr.op, literal)

    # ------------------------------------------------------------------ #
    # Feedback
    # ------------------------------------------------------------------ #
    def _record_child(self, child: BooleanExpr, truth: np.ndarray) -> None:
        if truth.size == 0:
            return
        self.context.metrics.record_predicate(
            child.key(), int(truth.size), int(tv.is_true(truth).sum())
        )

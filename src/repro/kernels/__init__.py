"""Fused vectorized predicate & join-key kernels.

Public surface is the configuration layer only; the engine imports the
evaluator modules (:mod:`repro.kernels.fused`, :mod:`repro.kernels.dictionary`,
:mod:`repro.kernels.jit`) directly where they are used, which keeps this
package importable from :mod:`repro.engine.metrics` without cycles.
"""

from repro.kernels.config import (
    DEFAULT_TIER,
    KERNEL_TIERS,
    KernelConfig,
    jit_available,
    resolve_tier,
    validate_tier,
)

__all__ = [
    "DEFAULT_TIER",
    "KERNEL_TIERS",
    "KernelConfig",
    "jit_available",
    "resolve_tier",
    "validate_tier",
]

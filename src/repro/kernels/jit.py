"""Optional numba-compiled kernels (the ``"jit"`` tier).

numba is deliberately *not* a hard dependency: this module imports it inside
a guard, exposes :data:`AVAILABLE`, and every public function degrades to
``None`` (meaning "caller should use the NumPy path") when the import failed.
:func:`repro.kernels.config.resolve_tier` downgrades a requested ``"jit"``
tier to ``"numpy"`` in that case, so the knob is always safe to set.

The compiled surface is intentionally small: a fused compare-against-literal
loop over numeric columns that produces three-valued truth codes directly
(NULL rows become UNKNOWN without materializing an intermediate boolean
mask).  Everything else — string predicates, dictionary lookups, the
selection-vector recursion — is already dominated by NumPy kernels that
release the GIL, so compiling them buys nothing.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only when numba is installed
    from numba import njit

    AVAILABLE = True
except ImportError:  # pragma: no cover - the common case in minimal installs
    njit = None
    AVAILABLE = False

#: Comparison operators encoded as integers for the compiled loop.
_OP_CODES = {"=": 0, "!=": 1, "<": 2, "<=": 3, ">": 4, ">=": 5}

#: Three-valued truth codes, duplicated here so the compiled loop does not
#: close over Python enum objects (must match repro.expr.three_valued).
_FALSE = np.uint8(0)
_TRUE = np.uint8(1)
_UNKNOWN = np.uint8(2)

_compiled_compare = None


def _compare_loop(values, nulls, op_code, literal):  # pragma: no cover
    n = values.shape[0]
    out = np.empty(n, dtype=np.uint8)
    for i in range(n):
        if nulls[i]:
            out[i] = _UNKNOWN
            continue
        value = values[i]
        if op_code == 0:
            matched = value == literal
        elif op_code == 1:
            matched = value != literal
        elif op_code == 2:
            matched = value < literal
        elif op_code == 3:
            matched = value <= literal
        elif op_code == 4:
            matched = value > literal
        else:
            matched = value >= literal
        out[i] = _TRUE if matched else _FALSE
    return out


def _kernel():
    """The compiled compare loop, compiled once on first use."""
    global _compiled_compare
    if _compiled_compare is None:
        _compiled_compare = njit(cache=False)(_compare_loop)
    return _compiled_compare


def compare_select(
    values: np.ndarray, nulls: np.ndarray, op: str, literal
) -> np.ndarray | None:
    """Three-valued truth of ``values <op> literal`` via the compiled loop.

    Returns ``None`` when the combination is not compiled (numba missing,
    non-numeric dtype, non-numeric literal) — the caller falls back to the
    NumPy leaf evaluator, which is semantically identical.
    """
    if not AVAILABLE:
        return None
    if values.dtype.kind not in "if":
        return None
    if isinstance(literal, bool) or not isinstance(literal, (int, float)):
        return None
    op_code = _OP_CODES.get(op)
    if op_code is None:
        return None
    # The literal is passed through untouched: numba specializes the loop per
    # (values dtype, literal type), and casting an int literal to float here
    # would lose exactness against int64 columns where NumPy would not.
    return _kernel()(
        values, np.ascontiguousarray(nulls, dtype=np.bool_), op_code, literal
    )

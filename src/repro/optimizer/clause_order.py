"""Clause-ordering selectivities for the fused expression kernels.

The fused kernels (:mod:`repro.kernels.fused`) run AND chains most-selective
clause first and OR trees most-accepting disjunct first.  The order is fixed
at prepare time from the same :class:`~repro.optimizer.estimates.\
EstimateProvider` the planners use — which means it is automatically refined
by the service layer's feedback loop: observed pass rates become selectivity
overrides on re-plan, and the re-planned order reflects them.

The estimates travel as a flat ``expression key -> selectivity`` map rather
than a per-node order: planners regroup AND/OR trees while pushing clauses
around, and since :meth:`~repro.expr.ast._NaryExpr.key` is canonical, a
subexpression keeps its estimate wherever it ends up in the executed plan.
"""

from __future__ import annotations

from repro.expr.ast import AndExpr, BooleanExpr, NotExpr, OrExpr


def clause_selectivities(expression: BooleanExpr | None, estimates) -> dict[str, float]:
    """Estimated selectivity for every AND/OR child below ``expression``.

    Only children of conjunctions/disjunctions are recorded — they are the
    units the fused kernels order.  Estimation failures (an expression shape
    the estimator does not model) simply omit the key; the kernels fall back
    to their neutral default for it.
    """
    out: dict[str, float] = {}
    if expression is None or estimates is None:
        return out
    _walk(expression, estimates, out)
    return out


def _walk(expr: BooleanExpr, estimates, out: dict[str, float]) -> None:
    if isinstance(expr, (AndExpr, OrExpr)):
        for child in expr.children():
            key = child.key()
            if key not in out:
                try:
                    out[key] = float(estimates.selectivity(child))
                except Exception:
                    pass
            _walk(child, estimates, out)
    elif isinstance(expr, NotExpr):
        _walk(expr.child, estimates, out)

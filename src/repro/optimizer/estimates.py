"""The unified estimation layer: one provider for every planning number.

Before this module existed, "get the selectivity of this expression" lived in
three near-copies — the measured estimator in :mod:`repro.stats.selectivity`,
the cost model in :mod:`repro.core.planner.cost` and the per-table caches in
:mod:`repro.service.stats_cache` each re-derived the same quantities.  An
:class:`EstimateProvider` is now the single object every planner, the benefit
scorer and the cost model consume: it bundles per-table statistics,
per-expression selectivities (measured or histogram-backed), cardinality
formulas and the cost-model constants behind one interface.

The provider is also the injection point for **runtime feedback**: a mapping
of expression keys to *observed* selectivities (collected by the executor,
accumulated by :class:`repro.optimizer.feedback.FeedbackStore`) overrides the
a-priori estimates, so a re-planned query is costed with what actually
happened rather than what the sample predicted.  Estimation stays fully
deterministic: the same inputs (tables, sample seed, overrides) always
produce the same numbers, which keeps plans reproducible and cacheable.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.planner.cost import CostParams
from repro.expr.ast import BooleanExpr
from repro.plan.logical import (
    FilterNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    TableScanNode,
)
from repro.plan.query import JoinCondition, Query
from repro.stats.selectivity import SelectivityEstimator
from repro.stats.table_stats import TableStats, collect_table_stats
from repro.storage.catalog import Catalog


def build_estimate_provider(
    query: Query,
    catalog: Catalog,
    cost_params: CostParams | None = None,
    sample_size: int = 20_000,
    selectivity_mode: str = "measured",
    stats_provider=None,
    seed: int = 0,
    selectivity_overrides: Mapping[str, float] | None = None,
    access_manager=None,
) -> "EstimateProvider":
    """Collect statistics and build the :class:`EstimateProvider` for one query.

    ``selectivity_mode`` selects how base-predicate selectivities are
    estimated: ``"measured"`` evaluates each predicate on a sample (the
    paper's approach), ``"histogram"`` answers simple numeric predicates from
    per-column equi-depth histograms.

    ``stats_provider`` optionally supplies the two cacheable (per-table,
    query-independent) ingredients — ``table_stats(table)`` summaries and
    ``sample_positions(table, sample_size, seed)`` draws — so a caller
    serving many queries (the service layer's stats cache) computes them once
    per table version instead of once per call.  When omitted, both are
    computed from scratch, which is byte-for-byte equivalent because stats
    collection and sampling are deterministic.

    ``selectivity_overrides`` maps expression keys
    (:meth:`~repro.expr.ast.BooleanExpr.key`) to observed selectivities; the
    service layer injects feedback-corrected values here when re-planning a
    query whose estimates drifted from reality.

    ``access_manager`` optionally supplies the catalog's
    :class:`~repro.access.manager.AccessPathManager`; when given, the
    provider exposes per-leaf access-path choices (index-scan vs
    zone-pruned-scan vs full-scan) through :meth:`EstimateProvider.access_plan`
    and the cost model's scan term.  Planners consume those choices only
    through the provider, keeping ``repro.core.planner`` free of access-path
    imports.
    """
    if stats_provider is not None:
        table_stats = {
            table_name: stats_provider.table_stats(catalog.get(table_name))
            for table_name in set(query.tables.values())
        }
        sample_provider = stats_provider.sample_positions
    else:
        table_stats = {
            table_name: collect_table_stats(catalog.get(table_name))
            for table_name in set(query.tables.values())
        }
        sample_provider = None
    if selectivity_mode == "measured":
        estimator = SelectivityEstimator(
            catalog,
            query,
            sample_size=sample_size,
            seed=seed,
            sample_provider=sample_provider,
        )
    elif selectivity_mode == "histogram":
        from repro.stats.histograms import HistogramSelectivityEstimator

        estimator = HistogramSelectivityEstimator(
            catalog,
            query,
            sample_size=sample_size,
            seed=seed,
            sample_provider=sample_provider,
        )
    else:
        raise ValueError(
            f"unknown selectivity_mode {selectivity_mode!r}; "
            "choose 'measured' or 'histogram'"
        )
    access_chooser = None
    if access_manager is not None:
        from repro.access.chooser import AccessPathChooser

        access_chooser = AccessPathChooser(query, access_manager)
    return EstimateProvider(
        query,
        table_stats,
        estimator,
        cost_params=cost_params,
        overrides=selectivity_overrides,
        access_chooser=access_chooser,
    )


class EstimateProvider:
    """Every number a planner needs about one query, behind one interface.

    Args:
        query: the query being planned (supplies alias -> table bindings).
        table_stats: per-table summary statistics, keyed by table name.
        estimator: the selectivity backend (measured or histogram).  Its
            cache-first AND/OR/NOT recursion is the single implementation of
            the independence-assumption combination; overrides are *seeded*
            into that cache, so a pinned sub-expression affects every
            combination containing it.
        cost_params: cost-model calibration constants.
        overrides: expression key -> observed selectivity.  This is how
            runtime feedback corrects the independence assumption for, say,
            a correlated conjunction.
    """

    def __init__(
        self,
        query: Query,
        table_stats: dict[str, TableStats],
        estimator: SelectivityEstimator,
        cost_params: CostParams | None = None,
        overrides: Mapping[str, float] | None = None,
        access_chooser=None,
    ) -> None:
        self.query = query
        self.table_stats = dict(table_stats)
        self.cost_params = cost_params or CostParams()
        self._estimator = estimator
        self._overrides = {
            key: min(max(float(value), 0.0), 1.0)
            for key, value in dict(overrides or {}).items()
        }
        self._access_chooser = access_chooser
        self._access_plan = None
        self._seed_overrides()

    def _seed_overrides(self) -> None:
        for key, value in self._overrides.items():
            self._estimator.seed_selectivity(key, value)

    # ------------------------------------------------------------------ #
    # Selectivity
    # ------------------------------------------------------------------ #
    def selectivity(self, expr: BooleanExpr) -> float:
        """Estimated fraction of rows satisfying ``expr`` (override-aware)."""
        return self._estimator.selectivity(expr)

    def cost_factor(self, expr: BooleanExpr) -> float:
        """Relative per-row evaluation cost of a predicate (``F_P``)."""
        return self._estimator.cost_factor(expr)

    def set_selectivity(self, expr: BooleanExpr, value: float) -> None:
        """Pin the estimate for an expression (tests, ablations, feedback).

        Already-derived combinations are recomputed, so pinning a
        sub-expression after its parents were estimated still takes effect.
        """
        self._overrides[expr.key()] = min(max(float(value), 0.0), 1.0)
        self._estimator.reset_estimates()
        self._seed_overrides()

    @property
    def overrides(self) -> dict[str, float]:
        """The active selectivity overrides (a copy)."""
        return dict(self._overrides)

    # ------------------------------------------------------------------ #
    # Cardinality
    # ------------------------------------------------------------------ #
    def base_rows(self, alias: str) -> float:
        """Number of rows in the base table bound to ``alias``."""
        table_name = self.query.tables[alias]
        return float(self.table_stats[table_name].num_rows)

    def distinct_values(self, alias: str, column: str) -> float:
        """Distinct-value count of ``alias.column``."""
        table_name = self.query.tables[alias]
        return float(self.table_stats[table_name].distinct_count(column))

    def filtered_rows(self, alias: str, predicates: list[BooleanExpr]) -> float:
        """Rows of ``alias`` surviving the given (conjunctive) predicates."""
        rows = self.base_rows(alias)
        for predicate in predicates:
            rows *= self.selectivity(predicate)
        return rows

    def join_rows(
        self, left_rows: float, right_rows: float, condition: JoinCondition
    ) -> float:
        """Estimated output size of an equi-join (PostgreSQL-style)."""
        return self.join_rows_multi(left_rows, right_rows, [condition])

    def join_rows_multi(
        self, left_rows: float, right_rows: float, conditions: list[JoinCondition]
    ) -> float:
        """Join estimate for multiple equi-conditions (independence across keys)."""
        if not conditions:
            return left_rows * right_rows
        result = left_rows * right_rows
        for condition in conditions:
            left_ndv = self.distinct_values(condition.left.alias, condition.left.column)
            right_ndv = self.distinct_values(condition.right.alias, condition.right.column)
            result /= max(left_ndv, right_ndv, 1.0)
        return result

    # ------------------------------------------------------------------ #
    # Access paths
    # ------------------------------------------------------------------ #
    def access_plan(self):
        """Per-alias access-path choices (:class:`QueryAccessPlan`) or None.

        Built lazily from the :class:`~repro.access.chooser.AccessPathChooser`
        this provider was constructed with; ``None`` when access paths are
        disabled or no manager is registered on the catalog.  This is the
        *only* interface through which planners (and the session) learn about
        zone maps and indexes.
        """
        if self._access_chooser is None:
            return None
        if self._access_plan is None:
            self._access_plan = self._access_chooser.build_plan(self)
        return self._access_plan

    def scan_pages(self, alias: str) -> float:
        """Estimated pages one scan of ``alias`` touches per referenced column.

        Reflects the chosen access path: a full scan reads every page, an
        index or zone-pruned scan only its estimated candidate pages.  Used
        by the cost model's per-leaf scan term, so every planner costs
        index-scan vs zone-pruned-scan vs full-scan without importing the
        access layer.
        """
        plan = self.access_plan()
        choice = plan.choice(alias) if plan is not None else None
        if choice is None:
            return float(self.table_stats[self.query.tables[alias]].num_pages)
        return float(choice.total_pages if choice.kind == "full" else choice.est_pages)

    # ------------------------------------------------------------------ #
    # Whole-query estimate
    # ------------------------------------------------------------------ #
    def estimate_query_rows(self) -> float:
        """Plan-independent estimate of the query's output cardinality.

        Joins every table (chaining the per-condition NDV reduction) and
        applies the selectivity of the full WHERE predicate.  A diagnostic
        companion to the *plan-derived* root estimates the session stores on
        prepared plans (see :class:`~repro.engine.session.PreparedPlan`):
        because this number does not depend on plan shape, it is comparable
        across planners for the same query.
        """
        rows = 1.0
        for alias in self.query.tables:
            rows *= self.base_rows(alias)
        for condition in self.query.join_conditions:
            left_ndv = self.distinct_values(condition.left.alias, condition.left.column)
            right_ndv = self.distinct_values(condition.right.alias, condition.right.column)
            rows /= max(left_ndv, right_ndv, 1.0)
        if self.query.predicate is not None:
            rows *= self.selectivity(self.query.predicate)
        return max(rows, 0.0)


def estimate_plan_rows(plan: PlanNode, estimates: EstimateProvider) -> dict[int, float]:
    """Estimated output rows of every node in a logical plan tree.

    A model-agnostic bottom-up walk (scans emit base rows, filters multiply
    by predicate selectivity, joins apply the NDV formula); used to annotate
    traditional and bypass plans for ``--explain-analyze``.  Tagged plans get
    their (tag-aware) per-node estimates from the cost model instead.
    """
    rows_by_node: dict[int, float] = {}

    def walk(node: PlanNode) -> float:
        if isinstance(node, TableScanNode):
            rows = estimates.base_rows(node.alias)
        elif isinstance(node, FilterNode):
            rows = walk(node.child) * estimates.selectivity(node.predicate)
        elif isinstance(node, JoinNode):
            rows = estimates.join_rows_multi(
                walk(node.left), walk(node.right), node.conditions
            )
        elif isinstance(node, ProjectNode):
            rows = walk(node.child)
        else:
            raise TypeError(f"unknown plan node type: {type(node).__name__}")
        rows_by_node[node.node_id] = rows
        return rows

    walk(plan)
    return rows_by_node

"""``EXPLAIN ANALYZE``-style reporting: estimated vs. actual rows per operator.

:func:`explain_analyze_report` lines up the planner's per-node row estimates
(stored on a :class:`~repro.engine.session.PreparedPlan`) against the row
counts the physical operators actually observed (recorded into
:attr:`~repro.engine.metrics.ExecutionMetrics.operator_actuals` when the
execution context runs with ``collect_feedback=True``).  Large gaps in the
``est.rows`` / ``act.out`` columns are exactly the misestimates the feedback
loop corrects.
"""

from __future__ import annotations

from repro.expr.ast import AndExpr, OrExpr
from repro.plan.logical import FilterNode, PlanNode, TableScanNode


def _plan_roots(prepared) -> list[PlanNode]:
    """The logical root(s) of a prepared plan, across execution models."""
    if prepared.kind == "traditional":
        return list(prepared.plan.subplans)
    if prepared.kind == "bypass":
        return [prepared.plan.plan]
    return [prepared.plan]


def _format_rows(value: float | None) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.1f}"
    return str(int(value))


def _format_seconds(value: float | None) -> str:
    if value is None:
        return "-"
    return f"{value:.4f}"


def _format_rate(rows: float | None, seconds: float | None) -> str:
    if rows is None or seconds is None or seconds <= 0.0:
        return "-"
    return f"{rows / seconds:,.0f}"


def explain_analyze_report(prepared, result) -> str:
    """A per-operator table of estimated vs. actual rows for one execution.

    Args:
        prepared: the :class:`~repro.engine.session.PreparedPlan` that ran
            (supplies the plan tree and per-node row estimates).
        result: the :class:`~repro.engine.result.QueryResult` of executing it
            with ``collect_feedback=True`` (supplies per-operator actuals;
            without feedback collection the actual columns show ``-``).

    Actual counts are *summed over operator invocations*: under partitioned
    execution a join's build side re-runs per morsel, so its actuals can
    exceed the serial row counts — the columns report work done, not
    distinct tuples.

    Scan rows carry an extra ``pruned`` column (``pages pruned / pages in
    range``) plus the chosen access path, fed by the per-scan pruning
    counters and the prepared plan's
    :class:`~repro.access.chooser.QueryAccessPlan`; ``-`` means the scan ran
    unpruned (full access path, or access paths disabled).

    When the execution was traced (``result.trace`` is set), two more
    columns report wall-clock per operator: ``actual s`` — the operator's
    inclusive ``next_batch`` seconds, summed over invocations and, under
    parallel execution, over workers (so it measures work, like the row
    counts) — and ``rows/s`` (``act.out`` over those seconds).  Untraced
    executions show ``-`` in both.
    """
    actuals = result.metrics.operator_actuals
    estimates = prepared.estimated_rows
    pruning = result.metrics.scan_pruning
    access_plan = prepared.access_plan
    kernel_tier = getattr(result, "kernel_tier", "off")
    trace = getattr(result, "trace", None)
    timings = trace.operator_timings() if trace is not None else {}
    rows: list[tuple[str, str, str, str, str, str, str]] = []

    def clause_order_annotation(node: FilterNode) -> str:
        """The fused kernels' clause evaluation order for a filter node.

        Rendered as 1-based positions into the predicate's written child
        order (``3→1→2`` means the third conjunct runs first).  Empty when
        the legacy path ran or the predicate has a single clause.
        """
        if kernel_tier == "off":
            return ""
        predicate = node.predicate
        if not isinstance(predicate, (AndExpr, OrExpr)):
            return ""
        from repro.kernels.fused import ordered_children

        written = {id(child): i + 1 for i, child in enumerate(predicate.children())}
        ordered = ordered_children(predicate, prepared.clause_selectivities)
        return " [clause order: " + "→".join(str(written[id(c)]) for c in ordered) + "]"

    def scan_annotation(node: TableScanNode) -> tuple[str, str]:
        """(extra label text, pruned column) for a scan node."""
        choice = access_plan.choice(node.alias) if access_plan is not None else None
        label = ""
        if choice is not None and choice.kind != "full":
            label = f" [{choice.describe()}]"
        outcome = pruning.get(node.node_id)
        pruned = f"{outcome[1]}/{outcome[0]}" if outcome else "-"
        return label, pruned

    def walk(node: PlanNode, depth: int) -> None:
        label = "  " * depth + node.label()
        pruned = ""
        if isinstance(node, TableScanNode):
            extra, pruned = scan_annotation(node)
            label += extra
        elif isinstance(node, FilterNode):
            label += clause_order_annotation(node)
        actual = actuals.get(node.node_id)
        timing = timings.get(node.node_id)
        seconds = timing["seconds"] if timing is not None else None
        actual_out = actual[1] if actual else None
        rows.append(
            (
                label,
                _format_rows(estimates.get(node.node_id)),
                _format_rows(actual[0] if actual else None),
                _format_rows(actual_out),
                _format_seconds(seconds),
                _format_rate(actual_out, seconds),
                pruned,
            )
        )
        for child in node.children:
            walk(child, depth + 1)

    roots = _plan_roots(prepared)
    for index, root in enumerate(roots):
        if index:
            rows.append(("---", "", "", "", "", "", ""))
        walk(root, 0)

    headers = ("operator", "est.rows", "act.in", "act.out", "actual s", "rows/s", "pruned")
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in rows))
        for column in range(len(headers))
    ]
    value_columns = tuple(range(1, len(headers)))
    lines = [
        "  ".join(
            (headers[0].ljust(widths[0]),)
            + tuple(headers[column].rjust(widths[column]) for column in value_columns)
        )
    ]
    for row in rows:
        lines.append(
            "  ".join(
                (row[0].ljust(widths[0]),)
                + tuple(row[column].rjust(widths[column]) for column in value_columns)
            )
        )
    summary = (
        f"planner={prepared.planner} estimated_output_rows="
        f"{_format_rows(prepared.estimated_output_rows)} "
        f"actual_output_rows={result.metrics.output_rows} "
        f"pages_pruned={result.metrics.pages_pruned} "
        f"kernels={kernel_tier}"
    )
    return "\n".join(lines + [summary])

"""The optimizer layer: unified estimation plus runtime feedback.

This package is the single home of "numbers for the planner":

* :mod:`repro.optimizer.estimates` — :class:`EstimateProvider`, the one
  interface every planner, the benefit scorer and the cost model consume for
  table statistics, per-expression selectivities and cost constants;
* :mod:`repro.optimizer.feedback` — :class:`FeedbackStore` and
  :func:`q_error`, the runtime-observation side: accumulated per-clause
  match rates keyed by plan-cache fingerprint, and the re-plan policy;
* :mod:`repro.optimizer.explain` — ``--explain-analyze`` reporting of
  estimated vs. actual rows per operator;
* :mod:`repro.optimizer.clause_order` — per-clause selectivity estimates
  that seed the fused kernels' AND/OR evaluation order.

See the "Optimizer & runtime feedback" section of ``docs/architecture.md``
for how the pieces close the loop.
"""

from repro.optimizer.clause_order import clause_selectivities
from repro.optimizer.estimates import (
    EstimateProvider,
    build_estimate_provider,
    estimate_plan_rows,
)
from repro.optimizer.explain import explain_analyze_report
from repro.optimizer.feedback import (
    DEFAULT_QERROR_THRESHOLD,
    FeedbackStats,
    FeedbackStore,
    q_error,
)

__all__ = [
    "DEFAULT_QERROR_THRESHOLD",
    "EstimateProvider",
    "FeedbackStats",
    "FeedbackStore",
    "build_estimate_provider",
    "clause_selectivities",
    "estimate_plan_rows",
    "explain_analyze_report",
    "q_error",
]

"""Runtime cardinality feedback: observed selectivities and q-error.

Estimation errors are inevitable — samples miss skew and the independence
assumption misprices correlated predicates.  What a *serving* system can do
about it is observe: physical operators count rows-in/rows-out and per-clause
match rates during execution (see
:meth:`repro.engine.metrics.ExecutionMetrics.record_predicate`), and a
:class:`FeedbackStore` accumulates those observations per plan-cache
fingerprint.  When the **q-error** between a plan's estimated and observed
output cardinality exceeds a threshold, the service invalidates that plan and
re-plans with the observed per-clause selectivities injected through
:class:`repro.optimizer.estimates.EstimateProvider` overrides.

Everything here is deterministic and ratio-based: observed selectivities are
``matched / evaluated`` over *accumulated* counts, and both counts scale by
the same factor when a build side is re-executed per morsel — so the same
workload produces the same overrides (and therefore the same re-planned
plans) at any ``parallelism`` / ``partitions`` setting.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.engine.metrics import ExecutionMetrics

#: Default q-error above which the service re-plans a cached query.
DEFAULT_QERROR_THRESHOLD = 2.0

#: Minimum ratio by which an observed selectivity must differ from the value
#: the current plan was built with before a re-plan is worthwhile.
DEFAULT_MIN_OVERRIDE_SHIFT = 1.5

#: Fingerprints tracked before the oldest entries are discarded.
DEFAULT_MAX_ENTRIES = 1024


def q_error(estimated: float, actual: float) -> float:
    """The symmetric relative error ``max(est/act, act/est)``, floored at 1.

    Both quantities are clamped to at least one row so empty results do not
    divide by zero; a perfect estimate scores 1.0.
    """
    estimated = max(float(estimated), 1.0)
    actual = max(float(actual), 1.0)
    return max(estimated / actual, actual / estimated)


def _ratio(a: float, b: float, floor: float = 1e-6) -> float:
    """Symmetric ratio of two selectivities, floored away from zero."""
    a = max(a, floor)
    b = max(b, floor)
    return max(a / b, b / a)


@dataclass
class FeedbackStats:
    """Counters describing how the feedback loop has been used."""

    observations: int = 0
    replans: int = 0

    def as_dict(self) -> dict[str, float]:
        """The counters as a plain dictionary (for reports)."""
        return {"observations": self.observations, "replans": self.replans}


class _FeedbackEntry:
    """Accumulated observations for one plan-cache fingerprint."""

    __slots__ = ("counts", "applied", "last_estimated", "last_actual", "tables")

    def __init__(self) -> None:
        self.counts: dict[str, list[int]] = {}
        # Overrides the *current* plan was built with; replans are only
        # worthwhile while observations keep diverging from these.
        self.applied: dict[str, float] | None = None
        self.last_estimated: float = 0.0
        self.last_actual: float = 0.0
        # Base tables the observed query reads; a mutation commit drops the
        # fingerprints touching a mutated table (superseded snapshot).
        self.tables: set[str] = set()


class FeedbackStore:
    """Per-fingerprint accumulator of observed selectivities and q-errors.

    All operations are safe to call from multiple threads.  The store keeps
    at most ``max_entries`` fingerprints (oldest-first eviction) so an
    unbounded query stream cannot grow it without limit.
    """

    def __init__(
        self,
        min_override_shift: float = DEFAULT_MIN_OVERRIDE_SHIFT,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> None:
        if min_override_shift < 1.0:
            raise ValueError("min_override_shift must be at least 1.0")
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self._min_shift = min_override_shift
        self._max_entries = max_entries
        self._entries: OrderedDict[str, _FeedbackEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = FeedbackStats()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record(
        self,
        fingerprint: str,
        metrics: ExecutionMetrics,
        estimated_rows: float,
        actual_rows: float,
        tables=(),
    ) -> None:
        """Fold one execution's observations into the fingerprint's entry.

        ``tables`` names the base tables the query reads; it ties the
        observations to data versions so :meth:`drop_tables` can retire them
        when those tables mutate.
        """
        with self._lock:
            entry = self._entry_locked(fingerprint)
            for key, (evaluated, matched) in metrics.predicate_counts.items():
                bucket = entry.counts.setdefault(key, [0, 0])
                bucket[0] += evaluated
                bucket[1] += matched
            entry.last_estimated = float(estimated_rows)
            entry.last_actual = float(actual_rows)
            entry.tables.update(tables)
            self.stats.observations += 1

    def mark_applied(self, fingerprint: str, overrides: dict[str, float]) -> None:
        """Remember the overrides the fingerprint's current plan was built with."""
        with self._lock:
            entry = self._entry_locked(fingerprint)
            if overrides and entry.applied is not None:
                self.stats.replans += 1
            entry.applied = dict(overrides)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def observed_selectivities(self, fingerprint: str) -> dict[str, float]:
        """Observed ``matched / evaluated`` per expression key (accumulated)."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                return {}
            return {
                key: matched / evaluated
                for key, (evaluated, matched) in entry.counts.items()
                if evaluated > 0
            }

    def last_q_error(self, fingerprint: str) -> float | None:
        """Q-error of the most recent execution, or None before any."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                return None
            return q_error(entry.last_estimated, entry.last_actual)

    def should_replan(self, fingerprint: str, threshold: float) -> bool:
        """Whether the fingerprint's cached plan is worth invalidating.

        True when the last execution's q-error exceeds ``threshold`` *and*
        at least one observed selectivity has shifted by
        ``min_override_shift`` or more relative to the overrides the current
        plan was built with.  The second condition makes the loop converge:
        once a plan is built from the observed numbers, further executions
        observe the same ratios and no more re-plans fire — even when the
        residual q-error stays above the threshold (e.g. a join misestimate
        per-clause feedback cannot fix).
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                return False
            if q_error(entry.last_estimated, entry.last_actual) <= threshold:
                return False
            applied = entry.applied or {}
            for key, (evaluated, matched) in entry.counts.items():
                if evaluated <= 0:
                    continue
                observed = matched / evaluated
                if key not in applied:
                    return True
                if _ratio(observed, applied[key]) >= self._min_shift:
                    return True
            return False

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        """Drop every accumulated observation."""
        with self._lock:
            self._entries.clear()

    def drop_tables(self, tables) -> int:
        """Drop every fingerprint whose query reads one of ``tables``.

        Called on mutation commits: selectivities observed against a
        superseded snapshot no longer describe the data the re-planned query
        will read, so they must not be injected as overrides.  Returns how
        many fingerprints were dropped.
        """
        names = set(tables)
        if not names:
            return 0
        with self._lock:
            stale = [
                fingerprint
                for fingerprint, entry in self._entries.items()
                if entry.tables & names
            ]
            for fingerprint in stale:
                del self._entries[fingerprint]
            return len(stale)

    def __len__(self) -> int:
        return len(self._entries)

    def _entry_locked(self, fingerprint: str) -> _FeedbackEntry:
        entry = self._entries.get(fingerprint)
        if entry is None:
            entry = _FeedbackEntry()
            self._entries[fingerprint] = entry
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
        else:
            self._entries.move_to_end(fingerprint)
        return entry

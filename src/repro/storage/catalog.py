"""Catalog: the set of base tables known to an engine."""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.storage.table import Table


class Catalog:
    """A named registry of base tables.

    The catalog is the unit handed to an engine/session: queries reference
    tables by name (or alias) and the binder resolves them here.
    """

    def __init__(self, tables: Iterable[Table] = ()) -> None:
        self._tables: dict[str, Table] = {}
        for table in tables:
            self.add(table)

    def add(self, table: Table) -> None:
        """Register a table; raises ValueError on a duplicate name."""
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already registered")
        self._tables[table.name] = table

    def replace(self, table: Table) -> None:
        """Register a table, overwriting any existing one with the same name."""
        self._tables[table.name] = table

    def get(self, name: str) -> Table:
        """Look up a table by name; raises KeyError with a helpful message."""
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(
                f"unknown table {name!r}; known tables: {', '.join(sorted(self._tables)) or '(none)'}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    @property
    def table_names(self) -> list[str]:
        """Registered table names, in registration order."""
        return list(self._tables)

    def total_rows(self) -> int:
        """Total number of rows across all tables."""
        return sum(table.num_rows for table in self._tables.values())

    def __repr__(self) -> str:
        return f"Catalog(tables={self.table_names})"

"""Catalog: the set of base tables known to an engine."""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterable, Iterator, Mapping

from repro.storage.table import Table


class Catalog:
    """A named registry of base tables.

    The catalog is the unit handed to an engine/session: queries reference
    tables by name (or alias) and the binder resolves them here.

    The catalog carries a monotonically increasing :attr:`version` counter,
    bumped every time the set of tables (or a table's contents, since tables
    are immutable and mutation means :meth:`replace`) changes.  Derived state
    — cached table statistics, cached plans — is keyed on this counter so a
    catalog mutation transparently invalidates it.
    """

    def __init__(self, tables: Iterable[Table] = ()) -> None:
        self._tables: dict[str, Table] = {}
        self._version = 0
        self._table_versions: dict[str, int] = {}
        #: Optional :class:`repro.access.manager.AccessPathManager` owning
        #: this catalog's zone maps and secondary indexes.  Held as an opaque
        #: attribute so the storage substrate stays independent of the
        #: access-path layer; the manager checks :meth:`table_version` on
        #: every lookup, so catalog mutations invalidate it transparently.
        self.access_manager = None
        #: Optional :class:`repro.mutation.wal.DurabilityController` — set by
        #: ``load_catalog(root, durable=True)``; when present, committed
        #: mutation batches are WAL-logged and applied to the saved dataset
        #: before they become visible here.
        self.durability = None
        #: When True, :meth:`begin_mutation` refuses to start batches: the
        #: catalog serves reads only.  Set by ``load_catalog(root,
        #: read_only=True)`` — the mode shard/distributed worker processes
        #: load datasets under, so a worker can never acquire a WAL writer
        #: or mutate shared state behind the coordinator's back.
        self.read_only = False
        #: Re-entrant lock serializing writers.  Commits, compaction swaps
        #: and snapshot reads take it; the lock ordering discipline is
        #: catalog lock **before** dataset (WAL) lock, everywhere.
        self.write_lock = threading.RLock()
        self._mutation_subscribers: list[Callable] = []
        for table in tables:
            self.add(table)

    @property
    def version(self) -> int:
        """Mutation counter; changes whenever the catalog contents change."""
        return self._version

    def table_version(self, name: str) -> int:
        """Mutation counter of one table: the global version at which it was
        last added or replaced.  Unlike :attr:`version`, it does *not* change
        when an unrelated table mutates, so per-table derived state (cached
        statistics, samples) keys on it and survives other tables' churn.
        Raises KeyError for unknown tables."""
        if name not in self._table_versions:
            raise KeyError(f"unknown table {name!r}")
        return self._table_versions[name]

    def add(self, table: Table) -> None:
        """Register a table; raises ValueError on a duplicate name."""
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already registered")
        self._tables[table.name] = table
        self._version += 1
        self._table_versions[table.name] = self._version

    def replace(self, table: Table) -> None:
        """Register a table, overwriting any existing one with the same name."""
        self._tables[table.name] = table
        self._version += 1
        self._table_versions[table.name] = self._version

    def drop(self, name: str) -> None:
        """Remove a table by name; raises KeyError when absent."""
        if name not in self._tables:
            raise KeyError(f"unknown table {name!r}")
        del self._tables[name]
        del self._table_versions[name]
        self._version += 1

    # ------------------------------------------------------------------ #
    # Mutation & snapshots (see repro.mutation)
    # ------------------------------------------------------------------ #
    def snapshot(self, tables: Iterable[str] | None = None):
        """A :class:`~repro.mutation.snapshot.CatalogSnapshot` of the current
        state: an immutable name -> table view pinned at the current
        versions.  Because tables themselves are immutable (mutation commits
        register *new* table objects), holding a snapshot is enough to keep
        reading the pre-commit data — nothing is copied.

        ``tables`` restricts the snapshot to the named tables (unknown names
        are ignored).  Prepared plans pin only the tables their query reads,
        so a long-cached plan never keeps superseded generations of
        *unrelated* tables alive.
        """
        from repro.mutation.snapshot import CatalogSnapshot

        with self.write_lock:
            if tables is None:
                picked = dict(self._tables)
            else:
                picked = {
                    name: self._tables[name] for name in tables if name in self._tables
                }
            return CatalogSnapshot(
                version=self._version,
                tables=picked,
                table_versions={name: self._table_versions[name] for name in picked},
            )

    def begin_mutation(self):
        """Start a mutation batch (:class:`~repro.mutation.batch.MutationBatch`).

        Stage any number of appends and deletes across any tables, then
        ``commit()`` — the catalog version is bumped exactly once per
        committed batch, and every derived structure (statistics, zone maps,
        indexes, cached plans) is maintained incrementally.

        Raises ``PermissionError`` on a read-only catalog (see
        :attr:`read_only`).
        """
        if self.read_only:
            raise PermissionError(
                "catalog is read-only (loaded with read_only=True); "
                "mutations must go through the writing coordinator"
            )
        from repro.mutation.batch import MutationBatch

        return MutationBatch(self)

    def apply_mutation(self, tables: Mapping[str, Table]) -> int:
        """Swap in mutated table objects under **one** version bump.

        Internal to the mutation subsystem (use :meth:`begin_mutation`).
        Every table must already be registered; all mutated tables share the
        new version, and unrelated tables keep theirs.  Returns the new
        catalog version.
        """
        with self.write_lock:
            for name in tables:
                if name not in self._tables:
                    raise KeyError(f"unknown table {name!r}")
            self._version += 1
            for name, table in tables.items():
                self._tables[name] = table
                self._table_versions[name] = self._version
            return self._version

    def subscribe_mutations(self, callback: Callable) -> None:
        """Register ``callback(commit)`` to run after each committed batch.

        ``commit`` is a :class:`~repro.mutation.delta.MutationCommit`.  The
        service layer subscribes to maintain its caches incrementally."""
        if callback not in self._mutation_subscribers:
            self._mutation_subscribers.append(callback)

    def unsubscribe_mutations(self, callback: Callable) -> None:
        """Remove a mutation subscriber (no-op when absent)."""
        if callback in self._mutation_subscribers:
            self._mutation_subscribers.remove(callback)

    def notify_mutation(self, commit) -> None:
        """Deliver a committed batch to every subscriber (in order)."""
        for callback in list(self._mutation_subscribers):
            callback(commit)

    def get(self, name: str) -> Table:
        """Look up a table by name; raises KeyError with a helpful message."""
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(
                f"unknown table {name!r}; known tables: {', '.join(sorted(self._tables)) or '(none)'}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    @property
    def table_names(self) -> list[str]:
        """Registered table names, in registration order."""
        return list(self._tables)

    def total_rows(self) -> int:
        """Total number of rows across all tables."""
        return sum(table.num_rows for table in self._tables.values())

    def __repr__(self) -> str:
        return f"Catalog(tables={self.table_names})"

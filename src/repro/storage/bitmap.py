"""Row-selection bitmaps.

Tagged relations map each tag to a bitmap over the rows of the underlying
index relation (Section 2.5.1).  Filters rewrite bitmaps instead of moving
tuples, and joins union bitmaps to decide which rows participate.  The
implementation wraps a NumPy boolean array so the common operations (AND, OR,
NOT, count, iterate set positions) are all vectorized.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np


class Bitmap:
    """A fixed-length bitmap over row positions ``0 .. size-1``."""

    __slots__ = ("_bits",)

    def __init__(self, bits: np.ndarray) -> None:
        if bits.dtype != np.bool_:
            bits = bits.astype(np.bool_)
        self._bits = bits

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, size: int) -> "Bitmap":
        """A bitmap of ``size`` bits, all clear."""
        return cls(np.zeros(size, dtype=np.bool_))

    @classmethod
    def full(cls, size: int) -> "Bitmap":
        """A bitmap of ``size`` bits, all set."""
        return cls(np.ones(size, dtype=np.bool_))

    @classmethod
    def from_positions(cls, size: int, positions: Iterable[int]) -> "Bitmap":
        """A bitmap with exactly the given positions set."""
        bits = np.zeros(size, dtype=np.bool_)
        positions = np.fromiter(positions, dtype=np.int64)
        if positions.size:
            if positions.min() < 0 or positions.max() >= size:
                raise IndexError("bitmap position out of range")
            bits[positions] = True
        return cls(bits)

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "Bitmap":
        """Wrap an existing boolean mask (copied to avoid aliasing)."""
        return cls(np.array(mask, dtype=np.bool_, copy=True))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of addressable row positions."""
        return int(self._bits.shape[0])

    @property
    def mask(self) -> np.ndarray:
        """The underlying boolean array (do not mutate)."""
        return self._bits

    def count(self) -> int:
        """Number of set bits."""
        return int(self._bits.sum())

    def is_empty(self) -> bool:
        """True when no bit is set."""
        return not bool(self._bits.any())

    def positions(self) -> np.ndarray:
        """Indices of the set bits, ascending."""
        return np.flatnonzero(self._bits)

    def selectivity(self) -> float:
        """Fraction of bits set (0.0 for an empty bitmap of size 0)."""
        if self.size == 0:
            return 0.0
        return self.count() / self.size

    def get(self, position: int) -> bool:
        """Whether ``position`` is set."""
        return bool(self._bits[position])

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[int]:
        return iter(self.positions().tolist())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self.size == other.size and bool(np.array_equal(self._bits, other._bits))

    def __hash__(self) -> int:  # pragma: no cover - bitmaps are not dict keys
        return hash((self.size, self._bits.tobytes()))

    def __repr__(self) -> str:
        return f"Bitmap(size={self.size}, set={self.count()})"

    # ------------------------------------------------------------------ #
    # Set algebra
    # ------------------------------------------------------------------ #
    def _check_size(self, other: "Bitmap") -> None:
        if self.size != other.size:
            raise ValueError(
                f"bitmap size mismatch: {self.size} vs {other.size}"
            )

    def union(self, other: "Bitmap") -> "Bitmap":
        """Bitwise OR."""
        self._check_size(other)
        return Bitmap(self._bits | other._bits)

    def intersection(self, other: "Bitmap") -> "Bitmap":
        """Bitwise AND."""
        self._check_size(other)
        return Bitmap(self._bits & other._bits)

    def difference(self, other: "Bitmap") -> "Bitmap":
        """Bits set in self but not in other."""
        self._check_size(other)
        return Bitmap(self._bits & ~other._bits)

    def complement(self) -> "Bitmap":
        """Bitwise NOT."""
        return Bitmap(~self._bits)

    def __or__(self, other: "Bitmap") -> "Bitmap":
        return self.union(other)

    def __and__(self, other: "Bitmap") -> "Bitmap":
        return self.intersection(other)

    def __sub__(self, other: "Bitmap") -> "Bitmap":
        return self.difference(other)

    def __invert__(self) -> "Bitmap":
        return self.complement()

    @staticmethod
    def union_all(bitmaps: Iterable["Bitmap"], size: int | None = None) -> "Bitmap":
        """Union an iterable of bitmaps; ``size`` is required if it is empty."""
        result: Bitmap | None = None
        for bitmap in bitmaps:
            result = bitmap if result is None else result.union(bitmap)
        if result is None:
            if size is None:
                raise ValueError("union_all of no bitmaps requires an explicit size")
            return Bitmap.empty(size)
        return result

"""Typed columns with simulated page-granular reads.

A :class:`Column` owns a NumPy array of values plus an optional NULL mask.
Reads go through :meth:`Column.read` / :meth:`Column.read_at`, which account
page traffic against an :class:`~repro.storage.iostats.IOStats` object via an
LFU page cache — the same structure Basilisk uses (Section 5, "System"):
low-selectivity bitmaps trigger page-by-page reads of only the relevant pages,
while high-selectivity bitmaps fall back to a sequential scan of the column.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Sequence

import numpy as np

from repro.storage.bitmap import Bitmap
from repro.storage.iostats import GLOBAL_IO_STATS, IOStats
from repro.storage.pagecache import LFUPageCache

#: Number of values per simulated disk page.
DEFAULT_PAGE_SIZE = 1024

#: Bitmaps selecting more than this fraction of a column are read with a
#: sequential scan instead of page-by-page random reads (Section 5).
SEQUENTIAL_SCAN_THRESHOLD = 0.2


class ColumnType(enum.Enum):
    """Supported column value types."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"

    @property
    def numpy_dtype(self) -> np.dtype:
        """The NumPy dtype used to store values of this type."""
        mapping = {
            ColumnType.INT: np.dtype(np.int64),
            ColumnType.FLOAT: np.dtype(np.float64),
            ColumnType.STRING: np.dtype(object),
            ColumnType.BOOL: np.dtype(np.bool_),
        }
        return mapping[self]


def _infer_type(values: Sequence) -> ColumnType:
    """Infer a column type from a sample of Python values."""
    for value in values:
        if value is None:
            continue
        if isinstance(value, (bool, np.bool_)):
            return ColumnType.BOOL
        if isinstance(value, (int, np.integer)):
            return ColumnType.INT
        if isinstance(value, (float, np.floating)):
            return ColumnType.FLOAT
        if isinstance(value, str):
            return ColumnType.STRING
        raise TypeError(f"unsupported column value: {value!r}")
    return ColumnType.STRING


class Column:
    """A single named, typed column of values.

    Args:
        name: column name (unqualified).
        values: the column data; NULLs may be expressed as ``None`` entries
            (for object columns) or via an explicit ``null_mask``.
        ctype: value type; inferred from the data when omitted.
        null_mask: boolean array marking NULL positions.
        page_size: number of values per simulated disk page.
    """

    def __init__(
        self,
        name: str,
        values: Sequence | np.ndarray,
        ctype: ColumnType | None = None,
        null_mask: np.ndarray | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.name = name
        self.page_size = page_size

        values_list = list(values) if not isinstance(values, np.ndarray) else values
        if ctype is None:
            sample = values_list if not isinstance(values_list, np.ndarray) else values_list[:64]
            ctype = _infer_type(list(sample))
        self.ctype = ctype

        inferred_nulls = np.zeros(len(values_list), dtype=np.bool_)
        if not isinstance(values_list, np.ndarray):
            cleaned = []
            for i, value in enumerate(values_list):
                if value is None:
                    inferred_nulls[i] = True
                    cleaned.append(self._null_placeholder())
                else:
                    cleaned.append(value)
            data = np.array(cleaned, dtype=ctype.numpy_dtype)
        else:
            data = values_list.astype(ctype.numpy_dtype, copy=False)

        self._data = data
        if null_mask is not None:
            null_mask = np.array(null_mask, dtype=np.bool_, copy=True)
            if null_mask.shape[0] != data.shape[0]:
                raise ValueError("null_mask length does not match values length")
            self._nulls = null_mask | inferred_nulls
        else:
            self._nulls = inferred_nulls
        # Lazily computed statistics.  Columns are immutable (table mutation
        # means replacing the whole Column via Catalog.replace), so the
        # caches never need invalidating — a new Column starts empty.  The
        # on-disk loader seeds them from persisted metadata so a loaded
        # catalog plans without recomputing (see repro.storage.disk).
        self._distinct_count: int | None = None
        self._min_max: tuple | None = None
        self._min_max_known = False

    def _null_placeholder(self):
        """Placeholder stored for NULL cells (never observed by callers)."""
        if self.ctype is ColumnType.STRING:
            return ""
        if self.ctype is ColumnType.FLOAT:
            return float("nan")
        if self.ctype is ColumnType.BOOL:
            return False
        return 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self._data.shape[0])

    @property
    def num_pages(self) -> int:
        """Number of simulated disk pages occupied by the column."""
        return -(-len(self) // self.page_size) if len(self) else 0

    @property
    def data(self) -> np.ndarray:
        """Raw value array (NULL positions hold placeholders)."""
        return self._data

    @property
    def null_mask(self) -> np.ndarray:
        """Boolean array marking NULL positions."""
        return self._nulls

    def has_nulls(self) -> bool:
        """Whether any cell is NULL."""
        return bool(self._nulls.any())

    def distinct_count(self) -> int:
        """Number of distinct non-NULL values (computed once, then cached).

        The underlying ``np.unique`` is O(n log n); statistics collection
        asks for it on every stats build, so the result is memoized on the
        (immutable) column.
        """
        if self._distinct_count is None:
            valid = self._data[~self._nulls]
            self._distinct_count = int(len(np.unique(valid))) if valid.size else 0
        return self._distinct_count

    def min_max(self) -> tuple | None:
        """(min, max) of non-NULL values, or None for an all-NULL column.

        Cached like :meth:`distinct_count` (the scan is O(n)).
        """
        if not self._min_max_known:
            valid = self._data[~self._nulls]
            self._min_max = (valid.min(), valid.max()) if valid.size else None
            self._min_max_known = True
        return self._min_max

    def cached_statistics(self) -> tuple[int | None, tuple | None, bool]:
        """``(distinct_count, min_max, min_max_known)`` without computing.

        The incremental-maintenance path (:mod:`repro.mutation`) reads the
        memoized statistics of the columns it is about to extend; ``None`` /
        ``False`` entries mean "never computed" and the caller falls back to
        lazy recomputation on the new column.
        """
        return self._distinct_count, self._min_max, self._min_max_known

    def seed_statistics(
        self,
        distinct_count: int | None = None,
        min_max: tuple | None = None,
        min_max_known: bool = False,
    ) -> None:
        """Pre-populate the statistic caches from persisted metadata.

        Used by :func:`repro.storage.disk.load_catalog` so a freshly loaded
        catalog plans identically to the in-memory one it was saved from
        without recomputing statistics on the first query.  Pass
        ``min_max_known=True`` to seed ``min_max`` (``None`` then means "the
        column is all-NULL", not "unknown").
        """
        if distinct_count is not None:
            self._distinct_count = int(distinct_count)
        if min_max_known:
            self._min_max = min_max
            self._min_max_known = True

    # ------------------------------------------------------------------ #
    # Simulated reads
    # ------------------------------------------------------------------ #
    def read(
        self,
        bitmap: Bitmap | None = None,
        cache: LFUPageCache | None = None,
        iostats: IOStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Read the values selected by ``bitmap`` (or all values).

        Returns ``(values, nulls)`` aligned with the set positions of the
        bitmap (ascending row order).  Page traffic is accounted against
        ``iostats``; reads of highly selective bitmaps touch only the pages
        containing selected rows, otherwise the full column is scanned.
        """
        iostats = iostats if iostats is not None else GLOBAL_IO_STATS
        if bitmap is None:
            positions = np.arange(len(self), dtype=np.int64)
            self._account_sequential(iostats)
        else:
            if bitmap.size != len(self):
                raise ValueError(
                    f"bitmap size {bitmap.size} does not match column length {len(self)}"
                )
            positions = bitmap.positions()
            self._account_bitmap_read(positions, cache, iostats)
        iostats.record_values(int(positions.size))
        return self._data[positions], self._nulls[positions]

    def read_at(
        self,
        positions: np.ndarray | Sequence[int],
        cache: LFUPageCache | None = None,
        iostats: IOStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Read the values at explicit row positions (possibly repeated)."""
        iostats = iostats if iostats is not None else GLOBAL_IO_STATS
        positions = np.asarray(positions, dtype=np.int64)
        unique_positions = np.unique(positions) if positions.size else positions
        self._account_bitmap_read(unique_positions, cache, iostats)
        iostats.record_values(int(positions.size))
        return self._data[positions], self._nulls[positions]

    def account_read(
        self,
        positions: np.ndarray | Sequence[int],
        cache: LFUPageCache | None = None,
        iostats: IOStats | None = None,
    ) -> None:
        """Account the page traffic of :meth:`read_at` without materializing.

        Used by the kernel layer when a dictionary sidecar supplies the cell
        values as integer codes: the codes live on the same simulated pages
        as the values, so the traffic is identical to a ``read_at`` of the
        same positions — only the Python-level value materialization is
        skipped.
        """
        iostats = iostats if iostats is not None else GLOBAL_IO_STATS
        positions = np.asarray(positions, dtype=np.int64)
        unique_positions = np.unique(positions) if positions.size else positions
        self._account_bitmap_read(unique_positions, cache, iostats)
        iostats.record_values(int(positions.size))

    def _account_sequential(self, iostats: IOStats) -> None:
        iostats.record_sequential_scan(self.num_pages)

    def _account_bitmap_read(
        self,
        positions: np.ndarray,
        cache: LFUPageCache | None,
        iostats: IOStats,
    ) -> None:
        if len(self) == 0 or positions.size == 0:
            return
        selectivity = positions.size / len(self)
        if selectivity > SEQUENTIAL_SCAN_THRESHOLD:
            self._account_sequential(iostats)
            return
        iostats.record_selective_read()
        pages = np.unique(positions // self.page_size)
        if cache is None:
            iostats.record_pages(misses=int(pages.size), hits=0)
            return
        misses, hits = cache.access_many(
            (self.name, int(page)) for page in pages
        )
        iostats.record_pages(misses=misses, hits=hits)

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def values_list(self) -> list:
        """All values as a Python list with ``None`` for NULLs."""
        out: list = self._data.tolist()
        for position in np.flatnonzero(self._nulls):
            out[int(position)] = None
        return out

    def __repr__(self) -> str:
        return f"Column({self.name!r}, type={self.ctype.value}, rows={len(self)})"


def column_from_iterable(
    name: str, values: Iterable, ctype: ColumnType | None = None
) -> Column:
    """Build a column from any iterable of Python values."""
    return Column(name, list(values), ctype=ctype)

"""On-disk catalogs: save and load tables as a directory of column files.

Basilisk stores its data on disk and reads it with direct I/O through an LFU
page cache; this repository simulates the paged reads (see
:mod:`repro.storage.column` and :mod:`repro.storage.pagecache`) but keeps the
arrays in memory.  For workflows that need datasets to persist between runs —
the CLI's ``generate`` / ``query`` commands, long benchmark campaigns — this
module provides a simple columnar on-disk format:

```
<root>/
  catalog.json              # manifest: tables, columns, types, row counts
  <table>/<column>.values.npy
  <table>/<column>.nulls.npy
```

Values are stored with ``numpy.save`` (strings as fixed-width unicode, never
pickled); NULL masks are stored alongside.  A CSV import/export pair is
included for interoperability with external tools.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.storage.catalog import Catalog
from repro.storage.column import Column, ColumnType
from repro.storage.table import Table

#: Manifest file name inside a catalog directory.
MANIFEST_NAME = "catalog.json"

#: Format version written into manifests (bump on incompatible changes).
FORMAT_VERSION = 1


class CatalogFormatError(ValueError):
    """Raised when an on-disk catalog is missing or malformed."""


# --------------------------------------------------------------------------- #
# Saving
# --------------------------------------------------------------------------- #
def _values_for_save(column: Column) -> np.ndarray:
    if column.ctype is ColumnType.STRING:
        return column.data.astype(str)
    return column.data


def save_table(table: Table, directory: Path) -> None:
    """Write one table's column files into ``directory``."""
    directory.mkdir(parents=True, exist_ok=True)
    for column in table.columns():
        np.save(directory / f"{column.name}.values.npy", _values_for_save(column))
        np.save(directory / f"{column.name}.nulls.npy", column.null_mask)


def save_catalog(catalog: Catalog, root: str | Path) -> Path:
    """Write every table of ``catalog`` under ``root`` and return the root path."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)

    manifest = {"format_version": FORMAT_VERSION, "tables": []}
    for table in catalog:
        save_table(table, root / table.name)
        manifest["tables"].append(
            {
                "name": table.name,
                "num_rows": table.num_rows,
                "columns": [
                    {"name": column.name, "type": column.ctype.value}
                    for column in table.columns()
                ],
            }
        )

    with open(root / MANIFEST_NAME, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    return root


# --------------------------------------------------------------------------- #
# Loading
# --------------------------------------------------------------------------- #
def _load_column(directory: Path, name: str, ctype: ColumnType) -> Column:
    values_path = directory / f"{name}.values.npy"
    nulls_path = directory / f"{name}.nulls.npy"
    if not values_path.exists() or not nulls_path.exists():
        raise CatalogFormatError(f"missing column files for {directory.name}.{name}")
    values = np.load(values_path, allow_pickle=False)
    nulls = np.load(nulls_path, allow_pickle=False)
    if ctype is ColumnType.STRING:
        values = values.astype(object)
    return Column(name, values, ctype=ctype, null_mask=nulls)


def load_catalog(root: str | Path) -> Catalog:
    """Load a catalog previously written by :func:`save_catalog`."""
    root = Path(root)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise CatalogFormatError(f"no {MANIFEST_NAME} found in {root}")
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)

    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise CatalogFormatError(
            f"unsupported catalog format version {version!r} (expected {FORMAT_VERSION})"
        )

    tables = []
    for table_entry in manifest.get("tables", []):
        name = table_entry["name"]
        directory = root / name
        columns = [
            _load_column(directory, column_entry["name"], ColumnType(column_entry["type"]))
            for column_entry in table_entry["columns"]
        ]
        table = Table(name, columns)
        if table.num_rows != table_entry.get("num_rows", table.num_rows):
            raise CatalogFormatError(
                f"table {name!r} has {table.num_rows} rows on disk but the manifest "
                f"records {table_entry['num_rows']}"
            )
        tables.append(table)
    return Catalog(tables)


# --------------------------------------------------------------------------- #
# CSV interoperability
# --------------------------------------------------------------------------- #
def export_table_csv(table: Table, path: str | Path) -> None:
    """Write a table as CSV (NULLs become empty cells)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        for row in table.rows():
            writer.writerow(
                ["" if row[name] is None else row[name] for name in table.column_names]
            )


def import_table_csv(
    name: str,
    path: str | Path,
    types: dict[str, ColumnType] | None = None,
) -> Table:
    """Read a CSV file (with a header row) into a table.

    Empty cells become NULL.  Column types are taken from ``types`` when
    given; otherwise values are parsed as int, then float, then kept as
    strings.
    """
    types = types or {}
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise CatalogFormatError(f"CSV file {path} is empty") from None
        raw_rows = [row for row in reader if row]

    def parse(text: str, ctype: ColumnType | None):
        if text == "":
            return None
        if ctype is ColumnType.STRING:
            return text
        if ctype is ColumnType.INT:
            return int(text)
        if ctype is ColumnType.FLOAT:
            return float(text)
        if ctype is ColumnType.BOOL:
            return text.lower() in ("1", "true", "t", "yes")
        try:
            return int(text)
        except ValueError:
            pass
        try:
            return float(text)
        except ValueError:
            return text

    data = {
        column_name: [parse(row[position], types.get(column_name)) for row in raw_rows]
        for position, column_name in enumerate(header)
    }
    return Table.from_dict(name, data, types=types)

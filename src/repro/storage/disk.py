"""On-disk catalogs: save and load tables as a directory of column files.

Basilisk stores its data on disk and reads it with direct I/O through an LFU
page cache; this repository simulates the paged reads (see
:mod:`repro.storage.column` and :mod:`repro.storage.pagecache`) but keeps the
arrays in memory.  For workflows that need datasets to persist between runs —
the CLI's ``generate`` / ``query`` commands, long benchmark campaigns — this
module provides a simple columnar on-disk format:

```
<root>/
  catalog.json              # manifest: tables, columns, types, row counts,
                            # per-column statistics, index/zone-map registry,
                            # append-log delta records (format v3)
  <table>/<column>.values.npy
  <table>/<column>.nulls.npy
  <table>/_deleted.npy                 # base delete bitmap (format v3)
  <table>/<column>.<kind>.index.npz    # secondary-index sidecar (format v2)
  <table>/<column>.zonemap.npz         # zone-map sidecar (format v2)
  <table>/segment-<n>/<column>.values.npy   # appended rows (format v3)
  <table>/segment-<n>/<column>.nulls.npy
  <table>/delete-<n>.npy               # deleted positions (format v3)
```

Values are stored with ``numpy.save`` (strings as fixed-width unicode, never
pickled); NULL masks are stored alongside.  A CSV import/export pair is
included for interoperability with external tools.

**Format versions.**  Version 2 adds per-column statistics metadata
(distinct count, min/max, null count) to the manifest — a loaded catalog
seeds its in-memory statistic caches from it and therefore plans identically
to the catalog it was saved from without recomputing — plus sidecar files
for secondary indexes and zone maps, which are re-registered on an
:class:`~repro.access.manager.AccessPathManager` attached to the loaded
catalog.  Version 3 adds the **append log**: ``repro insert`` / ``repro
delete`` write segment directories / deleted-position files plus an ordered
``mutations`` list of delta records in the manifest, *without rewriting the
base column files*; :func:`load_catalog` replays the records (all of them,
or the first ``snapshot=K`` for time-travel reads) through the mutation
subsystem, and index/zone-map sidecars that predate some records are
incrementally *extended* to catch up rather than rebuilt.  ``repro
compact`` folds the log back into flat column files.  Version 4 adds
**durability**: mutations are WAL-logged before they touch the directory
(see :mod:`repro.mutation.wal`), the manifest records the applied-WAL
watermark (``"wal": {"applied": N}``), manifests are written atomically
(temp file + rename), and online compaction folds into *generation*
directories (``<table>.g<G>/``, recorded per table as ``"dir"``) swapped in
by a single manifest rename.  :func:`load_catalog` runs crash recovery
first whenever a WAL is present.  Version-1/2/3 directories still load.
"""

from __future__ import annotations

import csv
import json
import math
import os
from collections.abc import Iterable
from pathlib import Path

import numpy as np

from repro.storage.catalog import Catalog
from repro.storage.column import DEFAULT_PAGE_SIZE, Column, ColumnType
from repro.storage.table import Table

#: Manifest file name inside a catalog directory.
MANIFEST_NAME = "catalog.json"

#: Format version written into manifests (bump on incompatible changes).
FORMAT_VERSION = 4

#: Manifest versions :func:`load_catalog` understands.
SUPPORTED_VERSIONS = (1, 2, 3, 4)

#: File holding a table's base delete bitmap (format v3).
DELETE_MASK_NAME = "_deleted.npy"


class CatalogFormatError(ValueError):
    """Raised when an on-disk catalog is missing or malformed."""


# --------------------------------------------------------------------------- #
# Saving
# --------------------------------------------------------------------------- #
def _values_for_save(values: np.ndarray, ctype: ColumnType | None = None) -> np.ndarray:
    if ctype is ColumnType.STRING or values.dtype == np.dtype(object):
        return values.astype(str)
    return values


def _stat_value_for_json(value):
    """A min/max statistic as a JSON-storable value (NumPy scalars unwrapped)."""
    if value is None:
        return None
    if hasattr(value, "item"):
        value = value.item()
    if isinstance(value, float) and not math.isfinite(value):
        # NaN/inf are not valid JSON; drop the bound rather than corrupt the
        # manifest (the loader falls back to lazy computation).
        return None
    return value


def _column_manifest_entry(column: Column) -> dict:
    bounds = column.min_max()
    min_value = max_value = None
    bounds_known = True
    if bounds is not None:
        min_value = _stat_value_for_json(bounds[0])
        max_value = _stat_value_for_json(bounds[1])
        if min_value is None or max_value is None:
            bounds_known = False  # non-finite float bounds: recompute on load
    return {
        "name": column.name,
        "type": column.ctype.value,
        "page_size": column.page_size,
        "distinct_count": column.distinct_count(),
        "null_count": int(column.null_mask.sum()),
        "min_value": min_value,
        "max_value": max_value,
        "bounds_known": bounds_known,
    }


def save_table(table: Table, directory: Path) -> None:
    """Write one table's column files (and delete bitmap) into ``directory``."""
    directory.mkdir(parents=True, exist_ok=True)
    for column in table.columns():
        np.save(
            directory / f"{column.name}.values.npy",
            _values_for_save(column.data, column.ctype),
        )
        np.save(directory / f"{column.name}.nulls.npy", column.null_mask)
    mask_path = directory / DELETE_MASK_NAME
    if table.has_deletes():
        np.save(mask_path, table.delete_mask)
    elif mask_path.exists():
        mask_path.unlink()


def _index_sidecar_name(column: str, kind: str) -> str:
    return f"{column}.{kind}.index.npz"


def _zonemap_sidecar_name(column: str) -> str:
    return f"{column}.zonemap.npz"


def _save_arrays(path: Path, arrays: dict) -> None:
    np.savez(
        path,
        **{name: _values_for_save(np.asarray(array)) for name, array in arrays.items()},
    )


def _access_manifest_entries(catalog: Catalog, root: Path) -> tuple[list, list]:
    """Write access-path sidecars; returns (index entries, zone-map entries)."""
    manager = catalog.access_manager
    if manager is None:
        return [], []
    index_entries = []
    for definition in manager.list_indexes():
        materialized = manager.index_for(definition.table, definition.column)
        file_name = _index_sidecar_name(definition.column, definition.kind)
        _save_arrays(root / definition.table / file_name, materialized.to_arrays())
        index_entries.append(
            {
                "table": definition.table,
                "column": definition.column,
                "kind": definition.kind,
                "file": file_name,
                # Physical rows the sidecar covers: a later append-log load
                # extends the structure from here instead of rebuilding.
                "rows": catalog.get(definition.table).num_rows,
            }
        )
    zone_entries = []
    for table_name, zone_map in manager.zone_maps_built():
        file_name = _zonemap_sidecar_name(zone_map.column_name)
        _save_arrays(root / table_name / file_name, zone_map.to_arrays())
        zone_entries.append(
            {
                "table": table_name,
                "column": zone_map.column_name,
                "file": file_name,
                "rows": catalog.get(table_name).num_rows,
            }
        )
    return index_entries, zone_entries


def save_catalog(catalog: Catalog, root: str | Path) -> Path:
    """Write every table of ``catalog`` under ``root`` and return the root path.

    Besides the column files, the version-2 manifest records per-column
    statistics (so loads plan without recomputing) and — when the catalog
    carries an access manager — sidecar files for every registered secondary
    index and every materialized zone map.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)

    manifest = {"format_version": FORMAT_VERSION, "tables": []}
    for table in catalog:
        save_table(table, root / table.name)
        entry = {
            "name": table.name,
            "num_rows": table.num_rows,
            "columns": [_column_manifest_entry(column) for column in table.columns()],
        }
        if table.has_deletes():
            entry["delete_mask"] = DELETE_MASK_NAME
        manifest["tables"].append(entry)
    indexes, zone_maps = _access_manifest_entries(catalog, root)
    if indexes:
        manifest["indexes"] = indexes
    if zone_maps:
        manifest["zone_maps"] = zone_maps

    # A full save folds everything the catalog holds into flat base files, so
    # every committed WAL transaction is by definition applied: record the
    # watermark so recovery on the next open replays nothing.
    from repro.mutation.wal import read_wal

    wal_state = read_wal(root)
    if wal_state is not None:
        manifest["wal"] = {"applied": wal_state.last_txn}

    _write_manifest(root, manifest)
    _remove_stale_generation_dirs(root, manifest)
    return root


def table_dir(root: Path, table_entry: dict) -> Path:
    """The directory holding one table's files (generation-aware, v4)."""
    return Path(root) / table_entry.get("dir", table_entry["name"])


def _saved_table_dir(root: Path, manifest: dict, table: str) -> Path:
    """``table``'s directory as the saved manifest records it."""
    for entry in manifest.get("tables", []):
        if entry["name"] == table:
            return table_dir(root, entry)
    return Path(root) / table


def _remove_stale_generation_dirs(root: Path, manifest: dict) -> None:
    """Delete ``<table>.g<N>`` directories the manifest no longer references.

    Left behind when a crash interrupts online compaction before its swap, or
    by the previous generation after a successful swap.
    """
    import re
    import shutil

    live = {table_dir(root, entry).name for entry in manifest.get("tables", [])}
    pattern = re.compile(r"\.g\d+$")
    for child in root.iterdir():
        if child.is_dir() and pattern.search(child.name) and child.name not in live:
            shutil.rmtree(child, ignore_errors=True)


# --------------------------------------------------------------------------- #
# Loading
# --------------------------------------------------------------------------- #
def _load_column(directory: Path, entry: dict, ctype: ColumnType) -> Column:
    name = entry["name"]
    values_path = directory / f"{name}.values.npy"
    nulls_path = directory / f"{name}.nulls.npy"
    if not values_path.exists() or not nulls_path.exists():
        raise CatalogFormatError(f"missing column files for {directory.name}.{name}")
    values = np.load(values_path, allow_pickle=False)
    nulls = np.load(nulls_path, allow_pickle=False)
    if ctype is ColumnType.STRING:
        values = values.astype(object)
    column = Column(
        name,
        values,
        ctype=ctype,
        null_mask=nulls,
        # v1 manifests did not record page geometry; they were always
        # written with the default page size.
        page_size=int(entry.get("page_size", DEFAULT_PAGE_SIZE)),
    )
    _seed_column_statistics(column, entry, ctype)
    return column


def _seed_column_statistics(column: Column, entry: dict, ctype: ColumnType) -> None:
    """Seed the column's statistic caches from v2 manifest metadata."""
    distinct = entry.get("distinct_count")
    if distinct is None:
        return
    bounds_known = bool(entry.get("bounds_known", False))
    min_value, max_value = entry.get("min_value"), entry.get("max_value")
    min_max = None
    if min_value is not None and max_value is not None:
        if ctype is ColumnType.FLOAT:
            min_max = (float(min_value), float(max_value))
        else:
            min_max = (min_value, max_value)
    elif bounds_known:
        min_max = None  # all-NULL column
    else:
        bounds_known = False
    column.seed_statistics(
        distinct_count=int(distinct), min_max=min_max, min_max_known=bounds_known
    )


def _load_arrays(path: Path) -> dict:
    with np.load(path, allow_pickle=False) as payload:
        return {name: payload[name] for name in payload.files}


def _restore_access_paths(
    catalog: Catalog,
    manifest: dict,
    root: Path,
    bounded: bool = False,
    dirs: dict[str, str] | None = None,
) -> None:
    """Re-register persisted indexes and zone maps on the loaded catalog.

    A sidecar records how many physical rows it covered when written
    (``rows``); when the replayed append log has grown the table past that,
    the loaded structure is *extended* for the missing tail — the
    incremental-maintenance path — instead of being discarded.

    ``bounded`` marks a ``snapshot=K`` time-travel load: a sidecar written
    *after* the replay cutoff legitimately covers more rows than the
    snapshot holds, so it is skipped (the index definition simply does not
    exist yet at that point in history) instead of treated as corruption.
    """
    index_entries = manifest.get("indexes", [])
    zone_entries = manifest.get("zone_maps", [])
    if not index_entries and not zone_entries:
        return
    from repro.access.indexes import BitmapIndex, IndexDef, SortedIndex
    from repro.access.manager import ensure_access_manager
    from repro.access.zonemap import ColumnZoneMap, extend_zone_map

    dirs = dirs or {}
    manager = ensure_access_manager(catalog)
    for entry in index_entries:
        path = root / dirs.get(entry["table"], entry["table"]) / entry["file"]
        if not path.exists():
            raise CatalogFormatError(f"missing index sidecar {path}")
        column = catalog.get(entry["table"]).column(entry["column"])
        covered = int(entry.get("rows", len(column)))
        if covered > len(column):
            if bounded:
                continue  # sidecar postdates the requested snapshot
            raise CatalogFormatError(
                f"index sidecar {path} covers {covered} rows but table has {len(column)}"
            )
        arrays = _load_arrays(path)
        kind = entry["kind"]
        index_cls = BitmapIndex if kind == "bitmap" else SortedIndex
        materialized = index_cls.from_arrays(
            _coerce_index_arrays(arrays, catalog, entry)
        )
        if covered < len(column):
            materialized = materialized.extended(column, covered)
        manager.register_loaded_index(
            IndexDef(entry["table"], entry["column"], kind), materialized
        )
    for entry in zone_entries:
        path = root / dirs.get(entry["table"], entry["table"]) / entry["file"]
        if not path.exists():
            raise CatalogFormatError(f"missing zone-map sidecar {path}")
        column = catalog.get(entry["table"]).column(entry["column"])
        covered = int(entry.get("rows", len(column)))
        if covered > len(column):
            if bounded:
                continue
            raise CatalogFormatError(
                f"zone-map sidecar {path} covers {covered} rows but table has {len(column)}"
            )
        arrays = _load_arrays(path)
        arrays = _coerce_zonemap_arrays(arrays, catalog, entry)
        zone_map = ColumnZoneMap.from_arrays(entry["column"], arrays)
        if covered < len(column):
            zone_map = extend_zone_map(zone_map, column, covered)
        manager.register_loaded_zone_map(entry["table"], zone_map)


def _coerce_index_arrays(arrays: dict, catalog: Catalog, entry: dict) -> dict:
    """Convert persisted unicode value arrays back to object dtype."""
    column = catalog.get(entry["table"]).column(entry["column"])
    if column.ctype is not ColumnType.STRING:
        return arrays
    out = dict(arrays)
    for name in ("values", "sorted_values"):
        if name in out:
            out[name] = out[name].astype(object)
    return out


def _coerce_zonemap_arrays(arrays: dict, catalog: Catalog, entry: dict) -> dict:
    column = catalog.get(entry["table"]).column(entry["column"])
    if column.ctype is not ColumnType.STRING:
        return arrays
    out = dict(arrays)
    for name in ("mins", "maxs"):
        out[name] = out[name].astype(object)
    return out


def load_catalog(
    root: str | Path,
    snapshot: int | None = None,
    tables: Iterable[str] | None = None,
    recover: bool = True,
    durable: bool = False,
    read_only: bool = False,
) -> Catalog:
    """Load a catalog previously written by :func:`save_catalog`.

    Version-2 manifests additionally seed per-column statistic caches and
    restore index / zone-map sidecars onto an access manager registered on
    the returned catalog; version-1 manifests load exactly as before.

    Version-3 manifests may carry an append log (``mutations``); its delta
    records are replayed in order on top of the base tables.  ``snapshot``
    bounds the replay for time-travel reads: ``snapshot=K`` applies only the
    first K records (``0`` = the base state), ``None`` applies all of them.
    Sidecars written before later records are extended to catch up.

    ``tables`` restricts the load to the named tables — their column files,
    their delta records, their sidecars; nothing else is read.  Single-table
    operations (``repro delete``'s predicate evaluation, ``repro table
    stats``) use this to stay O(table) instead of O(dataset).  The snapshot
    cutoff still indexes the *full* record list, so a filtered load at
    ``snapshot=K`` sees exactly the filtered slice of that history.

    When the dataset carries a WAL (``wal.log``), crash recovery runs first
    (unless ``recover=False``): torn or uncommitted WAL tails are truncated
    and committed-but-unapplied transactions are replayed into the directory,
    so the load always observes exactly the last committed batch.
    ``durable=True`` additionally attaches a WAL-backed
    :class:`~repro.mutation.wal.DurabilityController` to the returned catalog
    (as ``catalog.durability``): every subsequent
    :meth:`~repro.mutation.batch.MutationBatch.commit` is WAL-logged and
    applied to the directory *before* it becomes visible in memory.

    ``read_only=True`` marks the returned catalog read-only:
    ``begin_mutation`` raises and no WAL writer can ever attach.  This is
    the loading mode for shard / distributed worker processes — they serve
    snapshot-pinned reads and must not be able to mutate shared state (it
    also skips crash recovery, which would *write* to the dataset; a
    coordinator owns recovery).  ``read_only`` and ``durable`` are mutually
    exclusive.
    """
    if read_only and durable:
        raise ValueError("read_only and durable are mutually exclusive")
    if read_only:
        recover = False
    root = Path(root)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise CatalogFormatError(f"no {MANIFEST_NAME} found in {root}")
    from repro.mutation.wal import WAL_NAME, attach_durability, dataset_write_lock

    if recover and (root / WAL_NAME).exists():
        from repro.mutation.recovery import recover_saved_catalog

        with dataset_write_lock(root):
            recover_saved_catalog(root)
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)

    version = manifest.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise CatalogFormatError(
            f"unsupported catalog format version {version!r} "
            f"(supported: {', '.join(map(str, SUPPORTED_VERSIONS))})"
        )

    mutations = manifest.get("mutations", [])
    if snapshot is not None:
        if not 0 <= snapshot <= len(mutations):
            raise CatalogFormatError(
                f"snapshot {snapshot} out of range: the append log has "
                f"{len(mutations)} records"
            )
        mutations = mutations[:snapshot]

    wanted = None if tables is None else set(tables)
    table_entries = manifest.get("tables", [])
    if wanted is not None:
        known = {entry["name"] for entry in table_entries}
        missing = wanted - known
        if missing:
            raise CatalogFormatError(
                f"unknown table(s) {sorted(missing)} in {MANIFEST_NAME}; "
                f"known tables: {', '.join(sorted(known)) or '(none)'}"
            )
        table_entries = [entry for entry in table_entries if entry["name"] in wanted]
        mutations = [record for record in mutations if record["table"] in wanted]
        manifest = dict(manifest)
        manifest["indexes"] = [
            entry for entry in manifest.get("indexes", []) if entry["table"] in wanted
        ]
        manifest["zone_maps"] = [
            entry for entry in manifest.get("zone_maps", []) if entry["table"] in wanted
        ]

    tables_loaded = []
    for table_entry in table_entries:
        name = table_entry["name"]
        directory = table_dir(root, table_entry)
        columns = [
            _load_column(directory, column_entry, ColumnType(column_entry["type"]))
            for column_entry in table_entry["columns"]
        ]
        delete_mask = None
        mask_file = table_entry.get("delete_mask")
        if mask_file:
            mask_path = directory / mask_file
            if not mask_path.exists():
                raise CatalogFormatError(f"missing delete bitmap {mask_path}")
            delete_mask = np.load(mask_path, allow_pickle=False)
        table = Table(name, columns, delete_mask=delete_mask)
        if table.num_rows != table_entry.get("num_rows", table.num_rows):
            raise CatalogFormatError(
                f"table {name!r} has {table.num_rows} rows on disk but the manifest "
                f"records {table_entry['num_rows']}"
            )
        tables_loaded.append(table)
    catalog = Catalog(tables_loaded)
    dirs = {
        entry["name"]: table_dir(root, entry).name
        for entry in table_entries
        if "dir" in entry
    }
    if mutations:
        from repro.mutation.diskops import replay_saved_mutations

        replay_saved_mutations(catalog, mutations, root, dirs=dirs)
    _restore_access_paths(
        catalog, manifest, root, bounded=snapshot is not None, dirs=dirs
    )
    if durable:
        attach_durability(catalog, root)
    if read_only:
        catalog.read_only = True
    return catalog


# --------------------------------------------------------------------------- #
# Index DDL on saved catalogs (the ``repro index`` CLI)
# --------------------------------------------------------------------------- #
def _read_manifest(root: Path) -> dict:
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise CatalogFormatError(f"no {MANIFEST_NAME} found in {root}")
    with open(manifest_path, encoding="utf-8") as handle:
        return json.load(handle)


def fsync_file(path: str | Path) -> None:
    """fsync one file's contents (``numpy.save`` and friends do not)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: str | Path) -> None:
    """Best-effort directory fsync: makes renames/creates/unlinks durable
    across power loss, not just process kills.

    Some platforms and filesystems refuse to fsync a directory handle; the
    failure falls back to kill-safe-only durability rather than erroring.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX directory semantics
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystems rejecting dir fsync
        pass
    finally:
        os.close(fd)


def _write_manifest(root: Path, manifest: dict) -> None:
    """Atomically replace the manifest: temp file, fsync, rename, dir fsync.

    Readers and crash recovery therefore only ever observe either the old or
    the new manifest — never a truncated or interleaved one.  This rename is
    the single commit point for every durable state change (mutation apply,
    index DDL, online-compaction swap); the directory fsync makes the rename
    itself power-loss durable, which matters when destructive follow-ups
    (WAL trims, old-generation deletes) depend on the new manifest being the
    one that survives.
    """
    from repro.testing import faults

    tmp_path = root / (MANIFEST_NAME + ".tmp")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
        handle.flush()
        os.fsync(handle.fileno())
    faults.fire("manifest.before_rename")
    os.replace(tmp_path, root / MANIFEST_NAME)
    fsync_dir(root)


def add_index_to_saved_catalog(root: str | Path, table: str, column: str, kind: str = "auto"):
    """Create a secondary index on a saved dataset; returns its IndexDef.

    Loads the catalog, materializes the index, writes its sidecar file and
    registers it in the manifest (upgrading a version-1 manifest in place —
    the column data is untouched).
    """
    root = Path(root)
    catalog = load_catalog(root)
    from repro.access.manager import ensure_access_manager

    manager = ensure_access_manager(catalog)
    definition = manager.create_index(table, column, kind=kind)
    materialized = manager.index_for(table, column)
    file_name = _index_sidecar_name(column, definition.kind)
    manifest = _read_manifest(root)
    _save_arrays(
        _saved_table_dir(root, manifest, table) / file_name, materialized.to_arrays()
    )
    manifest["format_version"] = FORMAT_VERSION
    entries = manifest.setdefault("indexes", [])
    entries.append(
        {
            "table": table,
            "column": column,
            "kind": definition.kind,
            "file": file_name,
            "rows": catalog.get(table).num_rows,
        }
    )
    _write_manifest(root, manifest)
    return definition


def drop_index_from_saved_catalog(root: str | Path, table: str, column: str) -> dict:
    """Remove a saved index (manifest entry + sidecar); returns its entry."""
    root = Path(root)
    manifest = _read_manifest(root)
    entries = manifest.get("indexes", [])
    matches = [
        entry for entry in entries if entry["table"] == table and entry["column"] == column
    ]
    if not matches:
        raise KeyError(f"no index on {table}.{column} in {root}")
    manifest["indexes"] = [entry for entry in entries if entry not in matches]
    _write_manifest(root, manifest)
    for entry in matches:
        sidecar = _saved_table_dir(root, manifest, entry["table"]) / entry["file"]
        if sidecar.exists():
            sidecar.unlink()
    return matches[0]


def list_saved_indexes(root: str | Path) -> list[dict]:
    """The index registry of a saved dataset (manifest ``indexes`` entries)."""
    return list(_read_manifest(Path(root)).get("indexes", []))


# --------------------------------------------------------------------------- #
# CSV interoperability
# --------------------------------------------------------------------------- #
def export_table_csv(table: Table, path: str | Path) -> None:
    """Write a table as CSV (NULLs become empty cells)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        for row in table.rows():
            writer.writerow(
                ["" if row[name] is None else row[name] for name in table.column_names]
            )


def import_table_csv(
    name: str,
    path: str | Path,
    types: dict[str, ColumnType] | None = None,
) -> Table:
    """Read a CSV file (with a header row) into a table.

    Empty cells become NULL.  Column types are taken from ``types`` when
    given; otherwise values are parsed as int, then float, then kept as
    strings.
    """
    types = types or {}
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise CatalogFormatError(f"CSV file {path} is empty") from None
        raw_rows = [row for row in reader if row]

    def parse(text: str, ctype: ColumnType | None):
        if text == "":
            return None
        if ctype is ColumnType.STRING:
            return text
        if ctype is ColumnType.INT:
            return int(text)
        if ctype is ColumnType.FLOAT:
            return float(text)
        if ctype is ColumnType.BOOL:
            return text.lower() in ("1", "true", "t", "yes")
        try:
            return int(text)
        except ValueError:
            pass
        try:
            return float(text)
        except ValueError:
            return text

    data = {
        column_name: [parse(row[position], types.get(column_name)) for row in raw_rows]
        for position, column_name in enumerate(header)
    }
    return Table.from_dict(name, data, types=types)

"""A least-frequently-used page cache simulation.

Basilisk sits an LFU page cache between its execution engine and the disk
(Section 5, "System").  The cache here tracks *page identities* only — no
actual bytes are cached, since the column data already lives in memory — but
hit/miss behaviour matches what a real LFU cache of the configured capacity
would do, which is what the I/O accounting needs.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections.abc import Hashable, Iterable

from repro.obs import instruments


class LFUPageCache:
    """Least-frequently-used cache over opaque page identifiers.

    The cache holds at most ``capacity`` pages.  ``access`` returns whether a
    page was already resident (hit) and makes it resident, evicting the least
    frequently used page when the cache is full.  Ties between equally
    frequent pages are broken by least-recent insertion, which mirrors the
    common LFU-with-aging implementation.

    Accesses are serialized by an internal lock: one cache instance is shared
    by every morsel of a partitioned query, so concurrent workers must not
    corrupt the frequency table (the paper's system likewise shares one page
    cache across all worker threads).
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be non-negative, got {capacity}")
        self._capacity = capacity
        self._frequencies: dict[Hashable, int] = {}
        self._heap: list[tuple[int, int, Hashable]] = []
        self._counter = itertools.count()
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        """Maximum number of resident pages."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._frequencies)

    def __contains__(self, page_id: Hashable) -> bool:
        return page_id in self._frequencies

    def access(self, page_id: Hashable) -> bool:
        """Access ``page_id``; return True on a cache hit.

        On a miss the page becomes resident, evicting the LFU page if the
        cache is at capacity.  A zero-capacity cache never hits.
        """
        with self._lock:
            return self._access(page_id)

    def _access(self, page_id: Hashable) -> bool:
        if self._capacity == 0:
            return False
        if page_id in self._frequencies:
            self._frequencies[page_id] += 1
            heapq.heappush(
                self._heap, (self._frequencies[page_id], next(self._counter), page_id)
            )
            return True
        if len(self._frequencies) >= self._capacity:
            self._evict_one()
        self._frequencies[page_id] = 1
        heapq.heappush(self._heap, (1, next(self._counter), page_id))
        return False

    def access_many(self, page_ids: Iterable[Hashable]) -> tuple[int, int]:
        """Access a batch of pages; return ``(misses, hits)``.

        The batch also publishes into the process metrics registry (one
        counter add per outcome kind, outside the cache lock) so scrapes see
        cumulative page-cache traffic across all queries.
        """
        misses = 0
        hits = 0
        with self._lock:
            for page_id in page_ids:
                if self._access(page_id):
                    hits += 1
                else:
                    misses += 1
        if hits or misses:
            instruments.publish_page_cache(hits, misses)
        return misses, hits

    def clear(self) -> None:
        """Drop every resident page and reset frequencies."""
        with self._lock:
            self._frequencies.clear()
            self._heap.clear()

    def _evict_one(self) -> None:
        """Evict the least-frequently-used resident page."""
        while self._heap:
            freq, _order, page_id = heapq.heappop(self._heap)
            current = self._frequencies.get(page_id)
            if current is None:
                continue  # stale heap entry for an already-evicted page
            if current != freq:
                continue  # stale entry; a fresher one exists further down
            del self._frequencies[page_id]
            return
        # Heap exhausted without finding a victim: nothing resident.

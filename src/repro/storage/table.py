"""Tables: named collections of equal-length columns."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.storage.bitmap import Bitmap
from repro.storage.column import Column, ColumnType
from repro.storage.iostats import IOStats
from repro.storage.pagecache import LFUPageCache


class Table:
    """A base table stored column by column.

    Args:
        name: table name as referenced by queries.
        columns: mapping or sequence of :class:`Column` objects, all the same
            length.
    """

    def __init__(self, name: str, columns: Sequence[Column] | Mapping[str, Column]) -> None:
        self.name = name
        if isinstance(columns, Mapping):
            column_list = list(columns.values())
        else:
            column_list = list(columns)
        if not column_list:
            raise ValueError(f"table {name!r} must have at least one column")
        lengths = {len(column) for column in column_list}
        if len(lengths) > 1:
            raise ValueError(f"table {name!r} has columns of differing lengths: {lengths}")
        self._columns: dict[str, Column] = {}
        for column in column_list:
            if column.name in self._columns:
                raise ValueError(f"duplicate column {column.name!r} in table {name!r}")
            self._columns[column.name] = column
        self._num_rows = lengths.pop()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_rows(self) -> int:
        """Number of rows in the table."""
        return self._num_rows

    @property
    def column_names(self) -> list[str]:
        """Column names in declaration order."""
        return list(self._columns)

    def __len__(self) -> int:
        return self._num_rows

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns

    def column(self, name: str) -> Column:
        """Return the column called ``name``; raise KeyError if absent."""
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"table {self.name!r} has no column {name!r}; "
                f"available: {', '.join(self._columns)}"
            ) from None

    def columns(self) -> list[Column]:
        """All columns, in declaration order."""
        return list(self._columns.values())

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={self.num_rows}, columns={self.column_names})"

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def read_column(
        self,
        column_name: str,
        bitmap: Bitmap | None = None,
        cache: LFUPageCache | None = None,
        iostats: IOStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Read one column, optionally restricted by a bitmap."""
        return self.column(column_name).read(bitmap, cache=cache, iostats=iostats)

    def read_column_at(
        self,
        column_name: str,
        positions: np.ndarray,
        cache: LFUPageCache | None = None,
        iostats: IOStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Read one column at explicit (possibly repeated) row positions."""
        return self.column(column_name).read_at(positions, cache=cache, iostats=iostats)

    def row(self, position: int) -> dict[str, object]:
        """Materialize a single row as a dict (NULLs become ``None``)."""
        out: dict[str, object] = {}
        for name, column in self._columns.items():
            if column.null_mask[position]:
                out[name] = None
            else:
                value = column.data[position]
                out[name] = value.item() if isinstance(value, np.generic) else value
        return out

    def rows(self, positions: Sequence[int] | np.ndarray | None = None) -> list[dict[str, object]]:
        """Materialize several rows (all rows when ``positions`` is None)."""
        if positions is None:
            positions = range(self._num_rows)
        return [self.row(int(position)) for position in positions]

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(
        cls,
        name: str,
        data: Mapping[str, Sequence],
        types: Mapping[str, ColumnType] | None = None,
    ) -> "Table":
        """Build a table from ``{column_name: values}``."""
        types = types or {}
        columns = [
            Column(column_name, values, ctype=types.get(column_name))
            for column_name, values in data.items()
        ]
        return cls(name, columns)

    @classmethod
    def from_rows(
        cls,
        name: str,
        rows: Sequence[Mapping[str, object]],
        types: Mapping[str, ColumnType] | None = None,
    ) -> "Table":
        """Build a table from a list of row dictionaries."""
        if not rows:
            raise ValueError("from_rows requires at least one row")
        column_names = list(rows[0])
        data = {
            column_name: [row.get(column_name) for row in rows]
            for column_name in column_names
        }
        return cls.from_dict(name, data, types=types)

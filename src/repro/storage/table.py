"""Tables: named collections of equal-length columns.

Besides whole-table access, a table can be split into horizontal
:class:`TablePartition` row-range slices (:meth:`Table.partitions`).  A
partition is a lightweight view — reads still go through the parent table's
columns, so page I/O is accounted against the same page cache and
:class:`~repro.storage.iostats.IOStats` as an unpartitioned read.  Partitions
are the unit of work ("morsels") handed to the parallel execution driver.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.storage.bitmap import Bitmap
from repro.storage.column import Column, ColumnType
from repro.storage.iostats import IOStats
from repro.storage.pagecache import LFUPageCache


def owned_page_range(start: int, stop: int, page_size: int) -> tuple[int, int]:
    """Pages *owned* by the row range ``[start, stop)``: ``[first, end)``.

    A page belongs to the range containing its first row, so the ranges of a
    disjoint partitioning own every page exactly once — the invariant the
    scan-pruning page accounting (``ScanPhysical`` and the morsel driver's
    skipped-partition path) relies on to sum to the table's page count.
    """
    return -(-start // page_size), -(-stop // page_size)


@dataclass(frozen=True)
class TablePartition:
    """A contiguous row-range slice ``[start, stop)`` of a base table.

    Attributes:
        table: the parent table (shared, not copied).
        index: position of this partition in the partition list.
        start: first row of the range (inclusive).
        stop: one past the last row of the range.
    """

    table: "Table"
    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if not 0 <= self.start <= self.stop <= self.table.num_rows:
            raise ValueError(
                f"partition [{self.start}, {self.stop}) out of bounds for table "
                f"{self.table.name!r} with {self.table.num_rows} rows"
            )

    @property
    def num_rows(self) -> int:
        """Number of rows in the partition."""
        return self.stop - self.start

    def positions(self) -> np.ndarray:
        """Row positions of the partition (into the parent table)."""
        return np.arange(self.start, self.stop, dtype=np.int64)

    def __repr__(self) -> str:
        return (
            f"TablePartition({self.table.name!r}, #{self.index}, "
            f"rows=[{self.start}, {self.stop}))"
        )


class Table:
    """A base table stored column by column.

    Args:
        name: table name as referenced by queries.
        columns: mapping or sequence of :class:`Column` objects, all the same
            length.
        delete_mask: optional boolean array marking logically deleted rows
            (True = deleted).  The physical row range — and therefore page
            geometry, partitioning and column arrays — is unchanged; scans
            simply never emit deleted positions.  Tables stay immutable:
            the mutation subsystem (:mod:`repro.mutation`) commits a delete
            by registering a *new* ``Table`` object sharing the columns but
            carrying an extended mask, so snapshots pinned by in-flight
            prepared plans keep their own view.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column] | Mapping[str, Column],
        delete_mask: np.ndarray | None = None,
    ) -> None:
        self.name = name
        if isinstance(columns, Mapping):
            column_list = list(columns.values())
        else:
            column_list = list(columns)
        if not column_list:
            raise ValueError(f"table {name!r} must have at least one column")
        lengths = {len(column) for column in column_list}
        if len(lengths) > 1:
            raise ValueError(f"table {name!r} has columns of differing lengths: {lengths}")
        self._columns: dict[str, Column] = {}
        for column in column_list:
            if column.name in self._columns:
                raise ValueError(f"duplicate column {column.name!r} in table {name!r}")
            self._columns[column.name] = column
        self._num_rows = lengths.pop()
        if delete_mask is not None:
            delete_mask = np.array(delete_mask, dtype=np.bool_, copy=True)
            if delete_mask.shape[0] != self._num_rows:
                raise ValueError(
                    f"delete mask length {delete_mask.shape[0]} does not match "
                    f"table {name!r} with {self._num_rows} rows"
                )
            if not delete_mask.any():
                delete_mask = None
        self._delete_mask = delete_mask
        self._num_deleted = int(delete_mask.sum()) if delete_mask is not None else 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_rows(self) -> int:
        """Number of *physical* rows (deleted rows included).

        Page geometry, partitioning, bitmaps and scan positions are all
        defined over the physical range; use :attr:`num_live` for the number
        of rows a query can observe.
        """
        return self._num_rows

    @property
    def delete_mask(self) -> np.ndarray | None:
        """Boolean array marking deleted positions, or None when none are."""
        return self._delete_mask

    @property
    def num_deleted(self) -> int:
        """Number of logically deleted rows."""
        return self._num_deleted

    @property
    def num_live(self) -> int:
        """Number of rows visible to queries (physical minus deleted)."""
        return self._num_rows - self._num_deleted

    def has_deletes(self) -> bool:
        """Whether any row is logically deleted."""
        return self._delete_mask is not None

    def live_positions_in(self, positions: np.ndarray) -> np.ndarray:
        """``positions`` with deleted rows removed (no copy when none are)."""
        if self._delete_mask is None or positions.size == 0:
            return positions
        return positions[~self._delete_mask[positions]]

    def with_delete_mask(self, delete_mask: np.ndarray | None) -> "Table":
        """A new table sharing this table's columns under ``delete_mask``.

        The copy-on-write primitive of the mutation subsystem: column arrays
        (and their memoized statistics) are shared, only the mask differs.
        """
        return Table(self.name, list(self._columns.values()), delete_mask=delete_mask)

    @property
    def column_names(self) -> list[str]:
        """Column names in declaration order."""
        return list(self._columns)

    @property
    def page_size(self) -> int:
        """Rows per simulated disk page (taken from the first column)."""
        return next(iter(self._columns.values())).page_size

    @property
    def num_pages(self) -> int:
        """Simulated pages per column (taken from the first column)."""
        return next(iter(self._columns.values())).num_pages

    def __len__(self) -> int:
        return self._num_rows

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns

    def column(self, name: str) -> Column:
        """Return the column called ``name``; raise KeyError if absent."""
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"table {self.name!r} has no column {name!r}; "
                f"available: {', '.join(self._columns)}"
            ) from None

    def columns(self) -> list[Column]:
        """All columns, in declaration order."""
        return list(self._columns.values())

    def __repr__(self) -> str:
        deleted = f", deleted={self.num_deleted}" if self.has_deletes() else ""
        return f"Table({self.name!r}, rows={self.num_rows}{deleted}, columns={self.column_names})"

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def read_column(
        self,
        column_name: str,
        bitmap: Bitmap | None = None,
        cache: LFUPageCache | None = None,
        iostats: IOStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Read one column, optionally restricted by a bitmap."""
        return self.column(column_name).read(bitmap, cache=cache, iostats=iostats)

    def read_column_at(
        self,
        column_name: str,
        positions: np.ndarray,
        cache: LFUPageCache | None = None,
        iostats: IOStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Read one column at explicit (possibly repeated) row positions."""
        return self.column(column_name).read_at(positions, cache=cache, iostats=iostats)

    def row(self, position: int) -> dict[str, object]:
        """Materialize a single row as a dict (NULLs become ``None``)."""
        out: dict[str, object] = {}
        for name, column in self._columns.items():
            if column.null_mask[position]:
                out[name] = None
            else:
                value = column.data[position]
                out[name] = value.item() if isinstance(value, np.generic) else value
        return out

    def rows(self, positions: Sequence[int] | np.ndarray | None = None) -> list[dict[str, object]]:
        """Materialize several rows (all rows when ``positions`` is None)."""
        if positions is None:
            positions = range(self._num_rows)
        return [self.row(int(position)) for position in positions]

    # ------------------------------------------------------------------ #
    # Horizontal partitioning
    # ------------------------------------------------------------------ #
    def partitions(self, count: int) -> list[TablePartition]:
        """Split the table into ``count`` contiguous row-range partitions.

        Row ranges are balanced the way :func:`numpy.array_split` balances
        array chunks: the first ``num_rows % count`` partitions get one extra
        row.  ``count`` is clamped to the number of rows, so no partition is
        empty — except for an empty table, which yields a single empty
        partition so callers always have at least one unit of work.
        """
        if count < 1:
            raise ValueError(f"partition count must be positive, got {count}")
        if self._num_rows == 0:
            return [TablePartition(self, 0, 0, 0)]
        count = min(count, self._num_rows)
        base, extra = divmod(self._num_rows, count)
        partitions: list[TablePartition] = []
        start = 0
        for index in range(count):
            stop = start + base + (1 if index < extra else 0)
            partitions.append(TablePartition(self, index, start, stop))
            start = stop
        return partitions

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(
        cls,
        name: str,
        data: Mapping[str, Sequence],
        types: Mapping[str, ColumnType] | None = None,
    ) -> "Table":
        """Build a table from ``{column_name: values}``."""
        types = types or {}
        columns = [
            Column(column_name, values, ctype=types.get(column_name))
            for column_name, values in data.items()
        ]
        return cls(name, columns)

    @classmethod
    def from_rows(
        cls,
        name: str,
        rows: Sequence[Mapping[str, object]],
        types: Mapping[str, ColumnType] | None = None,
    ) -> "Table":
        """Build a table from a list of row dictionaries."""
        if not rows:
            raise ValueError("from_rows requires at least one row")
        column_names = list(rows[0])
        data = {
            column_name: [row.get(column_name) for row in rows]
            for column_name in column_names
        }
        return cls.from_dict(name, data, types=types)

"""I/O accounting for the simulated storage layer.

Basilisk reads column data from disk with direct I/O and routes the reads
through an LFU page cache; which pages get touched depends on the bitmaps
driving each read (Section 2.5 of the paper).  Real disk I/O is out of scope
for a pure-Python reproduction, so instead every column read is *accounted*:
the number of pages touched, the number of cache hits/misses, and whether the
read fell back to a full sequential scan are all recorded here.

The counters let benchmarks compare how much "I/O work" the tagged and
traditional execution models cause, independently of Python's constant
factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Mutable counters describing simulated storage traffic.

    Attributes:
        pages_read: pages fetched from "disk" (cache misses).
        pages_hit: pages served from the page cache.
        sequential_scans: number of reads that fell back to scanning the
            whole column sequentially (high-selectivity bitmaps).
        selective_reads: number of reads served page-by-page from a
            low-selectivity bitmap.
        values_read: total number of individual cell values materialized.
    """

    pages_read: int = 0
    pages_hit: int = 0
    sequential_scans: int = 0
    selective_reads: int = 0
    values_read: int = 0
    _checkpoints: dict[str, "IOStats"] = field(default_factory=dict, repr=False)

    def record_pages(self, misses: int, hits: int) -> None:
        """Record the outcome of a page-granular read."""
        self.pages_read += misses
        self.pages_hit += hits

    def record_sequential_scan(self, num_pages: int) -> None:
        """Record a full-column sequential scan of ``num_pages`` pages."""
        self.sequential_scans += 1
        self.pages_read += num_pages

    def record_selective_read(self) -> None:
        """Record a bitmap-driven selective read."""
        self.selective_reads += 1

    def record_values(self, count: int) -> None:
        """Record that ``count`` cell values were materialized."""
        self.values_read += count

    def reset(self) -> None:
        """Zero every counter."""
        self.pages_read = 0
        self.pages_hit = 0
        self.sequential_scans = 0
        self.selective_reads = 0
        self.values_read = 0

    def merge(self, other: "IOStats") -> None:
        """Accumulate another stats object into this one.

        Parallel execution gives every morsel a private ``IOStats`` and
        reduces them into the query's stats at the end, so counters are never
        racily incremented from two threads.
        """
        self.pages_read += other.pages_read
        self.pages_hit += other.pages_hit
        self.sequential_scans += other.sequential_scans
        self.selective_reads += other.selective_reads
        self.values_read += other.values_read

    def snapshot(self) -> "IOStats":
        """Return an immutable-ish copy of the current counters."""
        return IOStats(
            pages_read=self.pages_read,
            pages_hit=self.pages_hit,
            sequential_scans=self.sequential_scans,
            selective_reads=self.selective_reads,
            values_read=self.values_read,
        )

    def diff(self, earlier: "IOStats") -> "IOStats":
        """Return the counter deltas accumulated since ``earlier``."""
        return IOStats(
            pages_read=self.pages_read - earlier.pages_read,
            pages_hit=self.pages_hit - earlier.pages_hit,
            sequential_scans=self.sequential_scans - earlier.sequential_scans,
            selective_reads=self.selective_reads - earlier.selective_reads,
            values_read=self.values_read - earlier.values_read,
        )

    def as_dict(self) -> dict[str, int]:
        """Return the counters as a plain dictionary (for reports)."""
        return {
            "pages_read": self.pages_read,
            "pages_hit": self.pages_hit,
            "sequential_scans": self.sequential_scans,
            "selective_reads": self.selective_reads,
            "values_read": self.values_read,
        }


#: Process-wide default accounting object.  Engines may create their own
#: private instance; columns fall back to this one when none is supplied.
GLOBAL_IO_STATS = IOStats()

"""Column-oriented storage substrate.

This package is the Python analogue of Basilisk's storage engine.  Data is
stored column by column, reads are accounted at page granularity through a
simulated paged-I/O layer with an LFU cache, and row subsets are described by
bitmaps rather than by copying tuples around.

Public entry points:

* :class:`~repro.storage.column.Column` — a single typed column.
* :class:`~repro.storage.table.Table` — a named collection of columns.
* :class:`~repro.storage.table.TablePartition` — a horizontal row-range slice.
* :class:`~repro.storage.catalog.Catalog` — the set of tables known to an engine.
* :class:`~repro.storage.bitmap.Bitmap` — row-selection bitmaps.
* :class:`~repro.storage.pagecache.LFUPageCache` — the simulated page cache.
* :class:`~repro.storage.iostats.IOStats` — read-accounting counters.
"""

from repro.storage.bitmap import Bitmap
from repro.storage.catalog import Catalog
from repro.storage.column import Column, ColumnType
from repro.storage.iostats import IOStats
from repro.storage.pagecache import LFUPageCache
from repro.storage.table import Table, TablePartition

__all__ = [
    "Bitmap",
    "Catalog",
    "Column",
    "ColumnType",
    "IOStats",
    "LFUPageCache",
    "Table",
    "TablePartition",
]

"""``python -m repro`` — the command-line interface.

Subcommands::

    generate   build a dataset (synthetic T0/T1/T2, IMDB-like, or fuzz star
               schema) and save it to a directory
    query      run a SQL query against a saved dataset under any planner
    explain    print the plan a planner would choose, without executing it
    compare    run one query under several planners and print a speedup table
    fuzz       differential-test all planners against the naive oracle
    figures    regenerate the paper's figures (delegates to repro.bench.figures)

Examples::

    python -m repro generate synthetic --out data/t0t1t2 --table-size 10000
    python -m repro query --data data/t0t1t2 --planner tcombined \
        --sql "SELECT * FROM T0 JOIN T1 ON T0.id = T1.fid WHERE T1.A1 < 0.2"
    python -m repro compare --data data/t0t1t2 --sql "..." --planners tcombined bdisj
    python -m repro fuzz --queries 20 --seed 7
    python -m repro figures fig4a --quick
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import figures as bench_figures
from repro.bench.report import format_table
from repro.engine.session import ALL_PLANNERS, Session
from repro.storage.disk import load_catalog, save_catalog
from repro.testing.datagen import RandomCatalogConfig, generate_random_catalog
from repro.testing.differential import DEFAULT_PLANNERS, run_fuzz_campaign
from repro.workloads.imdb import generate_imdb_catalog
from repro.workloads.synthetic import SyntheticConfig, generate_synthetic_catalog

#: Maximum number of rows printed by ``query`` unless --max-rows says otherwise.
DEFAULT_MAX_ROWS = 20


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #
def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset == "synthetic":
        catalog = generate_synthetic_catalog(
            SyntheticConfig(table_size=args.table_size, seed=args.seed)
        )
    elif args.dataset == "imdb":
        catalog = generate_imdb_catalog(scale=args.scale, seed=args.seed)
    else:
        catalog = generate_random_catalog(
            RandomCatalogConfig(
                seed=args.seed,
                num_dimensions=args.dimensions,
                fact_rows=args.table_size,
                dimension_rows=args.table_size,
            )
        )
    root = save_catalog(catalog, args.out)
    total = catalog.total_rows()
    print(f"wrote {len(catalog)} tables ({total} rows) to {root}")
    return 0


def _print_result(result, max_rows: int, show_metrics: bool) -> None:
    rows = result.rows[:max_rows]
    print(format_table(result.column_names or ["(no columns)"], rows))
    if result.row_count > max_rows:
        print(f"... ({result.row_count - max_rows} more rows)")
    print(
        f"{result.row_count} rows | planner={result.planner_name} | "
        f"planning={result.planning_seconds:.4f}s execution={result.execution_seconds:.4f}s"
    )
    if show_metrics:
        print(format_table(["counter", "value"], sorted(result.metrics.as_dict().items())))


def _cmd_query(args: argparse.Namespace) -> int:
    session = Session(load_catalog(args.data))
    result = session.execute(args.sql, planner=args.planner)
    _print_result(result, args.max_rows, args.metrics)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    session = Session(load_catalog(args.data))
    print(session.explain(args.sql, planner=args.planner))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    session = Session(load_catalog(args.data))
    rows = []
    baseline_time = None
    reference_rows = None
    agree = True
    for planner in args.planners:
        result = session.execute(args.sql, planner=planner)
        if baseline_time is None:
            baseline_time = result.total_seconds
            reference_rows = result.sorted_rows()
        elif result.sorted_rows() != reference_rows:
            agree = False
        speedup = baseline_time / result.total_seconds if result.total_seconds else float("inf")
        rows.append(
            [
                planner,
                result.row_count,
                f"{result.planning_seconds:.4f}",
                f"{result.execution_seconds:.4f}",
                f"{speedup:.2f}x",
            ]
        )
    print(
        format_table(
            ["planner", "rows", "planning (s)", "execution (s)", "speedup vs first"], rows
        )
    )
    if not agree:
        print("WARNING: planners returned different rows", file=sys.stderr)
        return 1
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    reports = run_fuzz_campaign(
        num_queries=args.queries,
        seed=args.seed,
        catalog_config=RandomCatalogConfig(
            seed=args.seed,
            num_dimensions=args.dimensions,
            fact_rows=args.table_size,
            dimension_rows=args.table_size,
        ),
        planners=tuple(args.planners),
    )
    for report in reports:
        print(report.describe())
    mismatches = [report for report in reports if not report.agreed]
    print(f"{len(reports) - len(mismatches)}/{len(reports)} queries agreed across all planners")
    return 1 if mismatches else 0


def _cmd_figures(args: argparse.Namespace) -> int:
    return bench_figures.main(args.figure_args)


# --------------------------------------------------------------------------- #
# Argument parsing
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tagged execution for disjunctive queries — reproduction CLI.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate and save a dataset")
    generate.add_argument("dataset", choices=("synthetic", "imdb", "fuzz"))
    generate.add_argument("--out", required=True, help="output directory")
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--table-size", type=int, default=10_000, help="rows per table")
    generate.add_argument("--scale", type=float, default=0.05, help="IMDB scale factor")
    generate.add_argument("--dimensions", type=int, default=2, help="fuzz dimension tables")
    generate.set_defaults(func=_cmd_generate)

    query = subparsers.add_parser("query", help="run a SQL query against a saved dataset")
    query.add_argument("--data", required=True, help="catalog directory")
    query.add_argument("--sql", required=True, help="SQL text")
    query.add_argument("--planner", default="tcombined", choices=sorted(ALL_PLANNERS))
    query.add_argument("--max-rows", type=int, default=DEFAULT_MAX_ROWS)
    query.add_argument("--metrics", action="store_true", help="print work counters")
    query.set_defaults(func=_cmd_query)

    explain = subparsers.add_parser("explain", help="print the chosen plan")
    explain.add_argument("--data", required=True)
    explain.add_argument("--sql", required=True)
    explain.add_argument("--planner", default="tcombined", choices=sorted(ALL_PLANNERS))
    explain.set_defaults(func=_cmd_explain)

    compare = subparsers.add_parser("compare", help="run one query under several planners")
    compare.add_argument("--data", required=True)
    compare.add_argument("--sql", required=True)
    compare.add_argument(
        "--planners",
        nargs="+",
        default=["tcombined", "bdisj", "bpushconj", "bypass"],
        choices=sorted(ALL_PLANNERS),
    )
    compare.set_defaults(func=_cmd_compare)

    fuzz = subparsers.add_parser("fuzz", help="differential-test planners against the oracle")
    fuzz.add_argument("--queries", type=int, default=10)
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--table-size", type=int, default=150)
    fuzz.add_argument("--dimensions", type=int, default=2)
    fuzz.add_argument("--planners", nargs="+", default=list(DEFAULT_PLANNERS))
    fuzz.set_defaults(func=_cmd_fuzz)

    figures = subparsers.add_parser(
        "figures", help="regenerate paper figures (see repro.bench.figures)"
    )
    figures.add_argument("figure_args", nargs=argparse.REMAINDER)
    figures.set_defaults(func=_cmd_figures)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())

"""``python -m repro`` — the command-line interface.

Subcommands::

    generate   build a dataset (synthetic T0/T1/T2, IMDB-like, or fuzz star
               schema) and save it to a directory
    query      run a SQL query against a saved dataset under any planner
               (--snapshot K reads the state after the first K append-log
               records — time travel)
    explain    print the plan a planner would choose, without executing it
    compare    run one query under several planners and print a speedup table
    batch      run a file of queries through the caching QueryService
    serve      interactive loop: read SQL from stdin, serve with plan caching
    insert     append rows (from CSV or inline JSON) to a saved dataset's
               append log — base column files are never rewritten
    delete     logically delete the rows matching a predicate
    compact    fold the append log into a new table generation behind an
               atomic manifest swap (--online keeps writers unblocked while
               the fold runs)
    recover    replay the write-ahead log: truncate torn tails, re-apply
               committed-but-unapplied transactions (load_catalog does this
               automatically on open; the verb makes it explicit/scriptable)
    wal        inspect the write-ahead log (``wal status [--format json]``)
    metrics    print the process metrics registry (``--format prometheus``
               text or ``--format json``), optionally after running queries
               to populate it
    history    per-fingerprint workload statistics replayed from a dataset's
               event journal (``history [top]`` / ``history regressions``,
               ``--format table|json``)
    top        a refreshing top-N view over the same journal (like ``top``
               for queries; ``--iterations 1`` prints once and exits)
    table      introspect a saved dataset (``table stats <name>``)
    index      create / drop / list secondary indexes on a saved dataset
    fuzz       differential-test all planners against the naive oracle
    figures    regenerate the paper's figures (delegates to repro.bench.figures)

Examples::

    python -m repro generate synthetic --out data/t0t1t2 --table-size 10000
    python -m repro query --data data/t0t1t2 --planner tcombined \
        --sql "SELECT * FROM T0 JOIN T1 ON T0.id = T1.fid WHERE T1.A1 < 0.2"
    python -m repro query --data data/t0t1t2 --explain-analyze --sql "..."
    python -m repro compare --data data/t0t1t2 --sql "..." --planners tcombined bdisj
    python -m repro batch --data data/t0t1t2 --file queries.sql --repeat 5 --workers 4
    python -m repro serve --data data/t0t1t2 --planner tcombined
    python -m repro insert --data data/t0t1t2 --table T1 --values '[{"id": 7, "A1": 0.5}]'
    python -m repro delete --data data/t0t1t2 --table T1 --where "T1.A1 > 0.9"
    python -m repro query  --data data/t0t1t2 --snapshot 0 --sql "..."   # pre-mutation state
    python -m repro query  --data data/t0t1t2 --trace trace.json --sql "..."
    python -m repro metrics --data data/t0t1t2 --sql "SELECT * FROM T0"
    python -m repro metrics --data data/t0t1t2 --format json
    python -m repro batch --data data/t0t1t2 --file q.sql --history-journal hist.journal
    python -m repro history --data data/t0t1t2 --top 10 --by total_seconds
    python -m repro history regressions --data data/t0t1t2
    python -m repro top --data data/t0t1t2 --iterations 1
    python -m repro compact --data data/t0t1t2 --online
    python -m repro recover --data data/t0t1t2
    python -m repro wal status --data data/t0t1t2 --format json
    python -m repro table stats T1 --data data/t0t1t2
    python -m repro index create --data data/t0t1t2 --table T1 --column A1
    python -m repro index list --data data/t0t1t2
    python -m repro fuzz --queries 20 --seed 7
    python -m repro figures fig4a --quick
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import figures as bench_figures
from repro.bench.report import format_table
from repro.engine.session import ALL_PLANNERS, Session
from repro.service import QueryService
from repro.storage.disk import load_catalog, save_catalog
from repro.testing.datagen import RandomCatalogConfig, generate_random_catalog
from repro.testing.differential import DEFAULT_PLANNERS, run_fuzz_campaign
from repro.workloads.imdb import generate_imdb_catalog
from repro.workloads.synthetic import SyntheticConfig, generate_synthetic_catalog

#: Maximum number of rows printed by ``query`` unless --max-rows says otherwise.
DEFAULT_MAX_ROWS = 20


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #
def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset == "synthetic":
        catalog = generate_synthetic_catalog(
            SyntheticConfig(table_size=args.table_size, seed=args.seed)
        )
    elif args.dataset == "imdb":
        catalog = generate_imdb_catalog(scale=args.scale, seed=args.seed)
    else:
        catalog = generate_random_catalog(
            RandomCatalogConfig(
                seed=args.seed,
                num_dimensions=args.dimensions,
                fact_rows=args.table_size,
                dimension_rows=args.table_size,
            )
        )
    root = save_catalog(catalog, args.out)
    total = catalog.total_rows()
    print(f"wrote {len(catalog)} tables ({total} rows) to {root}")
    return 0


def _print_result(result, max_rows: int, show_metrics: bool) -> None:
    rows = result.rows[:max_rows]
    print(format_table(result.column_names or ["(no columns)"], rows))
    if result.row_count > max_rows:
        print(f"... ({result.row_count - max_rows} more rows)")
    print(
        f"{result.row_count} rows | planner={result.planner_name} | "
        f"planning={result.planning_seconds:.4f}s execution={result.execution_seconds:.4f}s"
    )
    if show_metrics:
        print(format_table(["counter", "value"], sorted(result.metrics.as_dict().items())))


def _session_for(args: argparse.Namespace) -> Session:
    """A session over the saved dataset, honoring the parallelism flags."""
    return Session(
        load_catalog(args.data, snapshot=getattr(args, "snapshot", None)),
        parallelism=getattr(args, "parallelism", 1),
        partitions=getattr(args, "partitions", None),
        access_paths=not getattr(args, "no_access_paths", False),
        kernels=getattr(args, "kernels", "numpy"),
        shards=getattr(args, "shards", 1),
    )


def _write_trace(result, path: str, trace_format: str) -> None:
    """Serialize ``result.trace`` to ``path`` as JSON or Chrome trace events."""
    import json

    tracer = result.trace
    if tracer is None:
        print("no trace was recorded for this execution", file=sys.stderr)
        return
    if trace_format == "chrome":
        payload = json.dumps(tracer.to_chrome_trace(), indent=2)
    else:
        payload = tracer.to_json()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload + "\n")
    print(f"wrote {trace_format} trace to {path}")


def _cmd_query(args: argparse.Namespace) -> int:
    session = _session_for(args)
    want_trace = args.trace is not None
    if want_trace and args.planner == "tmin":
        print("--trace is unavailable for the tmin oracle", file=sys.stderr)
        return 2
    if args.explain_analyze:
        if args.planner == "tmin":
            print("--explain-analyze is unavailable for the tmin oracle", file=sys.stderr)
            return 2
        from repro.optimizer import explain_analyze_report

        prepared = session.prepare(args.sql, planner=args.planner)
        # Tracing is what collects per-operator wall clock, so --explain-analyze
        # always traces (the "actual s" column would otherwise be all '-').
        result = session.execute_prepared(prepared, collect_feedback=True, trace=True)
        _print_result(result, args.max_rows, args.metrics)
        print(explain_analyze_report(prepared, result))
        if want_trace:
            _write_trace(result, args.trace, args.trace_format)
        return 0
    result = session.execute(args.sql, planner=args.planner, trace=want_trace)
    _print_result(result, args.max_rows, args.metrics)
    if want_trace:
        _write_trace(result, args.trace, args.trace_format)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    session = Session(load_catalog(args.data))
    print(session.explain(args.sql, planner=args.planner))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    session = _session_for(args)
    rows = []
    baseline_time = None
    reference_rows = None
    agree = True
    for planner in args.planners:
        result = session.execute(args.sql, planner=planner)
        if baseline_time is None:
            baseline_time = result.total_seconds
            reference_rows = result.sorted_rows()
        elif result.sorted_rows() != reference_rows:
            agree = False
        speedup = baseline_time / result.total_seconds if result.total_seconds else float("inf")
        rows.append(
            [
                planner,
                result.row_count,
                f"{result.planning_seconds:.4f}",
                f"{result.execution_seconds:.4f}",
                f"{speedup:.2f}x",
            ]
        )
    print(
        format_table(
            ["planner", "rows", "planning (s)", "execution (s)", "speedup vs first"], rows
        )
    )
    if not agree:
        print("WARNING: planners returned different rows", file=sys.stderr)
        return 1
    return 0


def scan_statements(text: str) -> tuple[list[str], str]:
    """Split SQL text on ``;`` terminators; returns ``(statements, tail)``.

    The scanner is string- and comment-aware: semicolons inside
    single-quoted literals (with ``''`` escaping) do not terminate a
    statement, and ``--`` comments run to end of line (outside literals).
    ``tail`` is whatever follows the last terminator — an unfinished
    statement for a REPL to keep buffering, or the final unterminated
    statement of a file.
    """
    statements: list[str] = []
    current: list[str] = []
    in_string = False
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if in_string:
            current.append(char)
            if char == "'":
                if position + 1 < length and text[position + 1] == "'":
                    current.append("'")
                    position += 1
                else:
                    in_string = False
        elif char == "'":
            in_string = True
            current.append(char)
        elif char == "-" and position + 1 < length and text[position + 1] == "-":
            while position < length and text[position] != "\n":
                position += 1
            continue  # the newline is processed (as whitespace) next round
        elif char == ";":
            statement = "".join(current).strip()
            if statement:
                statements.append(statement)
            current = []
        else:
            current.append(char)
        position += 1
    return statements, "".join(current)


def split_statements(text: str) -> list[str]:
    """All statements in ``text``; a trailing statement needs no ``;``."""
    statements, tail = scan_statements(text)
    tail = tail.strip()
    if tail:
        statements.append(tail)
    return statements


def _print_cache_metrics(service: QueryService) -> None:
    # Caches expose different counter sets (the feedback store has its own),
    # so print one "key=value ..." line per cache instead of a rigid table.
    for cache_name, counters in sorted(service.cache_metrics().items()):
        rendered = " ".join(
            f"{key}={value:.2f}" if key == "hit_rate" else f"{key}={int(value)}"
            for key, value in sorted(counters.items())
        )
        print(f"{cache_name}: {rendered}")


def _cmd_batch(args: argparse.Namespace) -> int:
    statements: list[str] = []
    if args.file:
        with open(args.file, encoding="utf-8") as handle:
            statements.extend(split_statements(handle.read()))
    for sql in args.sql or ():
        statements.extend(split_statements(sql))
    if not statements:
        print("no queries given; use --file and/or --sql", file=sys.stderr)
        return 2
    statements = statements * args.repeat

    session = _session_for(args)
    history = _history_for(args)
    with QueryService(
        session,
        plan_cache_size=args.cache_size,
        max_workers=args.workers,
        default_timeout=args.timeout,
        feedback=args.feedback,
        qerror_threshold=args.qerror_threshold,
        slow_query_seconds=args.slow_query_seconds,
        slow_query_sink=_slow_query_sink if args.slow_query_seconds is not None else None,
        slow_query_log_path=args.slow_query_log,
        slow_query_log_keep=args.slow_query_log_keep,
        history=history,
    ) as service:
        report = service.execute_batch(statements, planner=args.planner)
        rows = []
        for item in report:
            if item.ok:
                status = "ok"
                detail = f"{item.result.row_count} rows"
                cached = "hit" if item.result.cache_hit else "miss"
            elif item.timed_out:
                status, detail, cached = "timeout", "-", "-"
            else:
                status, detail, cached = "error", item.error or "-", "-"
            rows.append(
                [item.index, status, detail, cached, f"{item.elapsed_seconds:.4f}"]
            )
        print(format_table(["#", "status", "result", "plan cache", "seconds"], rows))
        print(
            f"{len(report.succeeded)}/{len(report)} ok "
            f"({len(report.timed_out)} timeout, {len(report.failed)} error) | "
            f"wall {report.wall_seconds:.3f}s | "
            f"{report.queries_per_second:.1f} queries/s"
        )
        _print_cache_metrics(service)
        if args.metrics:
            print(format_table(
                ["counter", "value"], sorted(report.total_metrics().as_dict().items())
            ))
        if history is not None:
            history.close()
        return 0 if len(report.succeeded) == len(report) else 1


def _slow_query_sink(record) -> None:
    """Default slow-query sink for the CLI: one JSON line per record on stderr."""
    print(f"slow query: {record.as_json()}", file=sys.stderr)


def _cmd_serve(args: argparse.Namespace) -> int:
    from time import perf_counter

    session = _session_for(args)
    interactive = sys.stdin.isatty()
    if interactive:
        print(
            f"repro serve — planner={args.planner}; terminate statements with ';', "
            "'\\stats' shows cache metrics, '\\metrics [json]' the registry, "
            "'\\top' the heaviest fingerprints, '\\history' full history, "
            "'\\quit' exits."
        )
    history = _history_for(args, default_memory=True)
    with QueryService(
        session,
        plan_cache_size=args.cache_size,
        feedback=args.feedback,
        qerror_threshold=args.qerror_threshold,
        slow_query_seconds=args.slow_query_seconds,
        slow_query_sink=_slow_query_sink if args.slow_query_seconds is not None else None,
        slow_query_log_path=args.slow_query_log,
        slow_query_log_keep=args.slow_query_log_keep,
        history=history,
    ) as service:

        def run_statement(statement: str) -> None:
            started = perf_counter()
            try:
                result = service.execute(statement, planner=args.planner)
            except Exception as error:  # noqa: BLE001 - REPL keeps going
                print(f"error: {error}", file=sys.stderr)
                return
            elapsed = perf_counter() - started
            _print_result(result, args.max_rows, show_metrics=False)
            print(
                f"[plan cache {'hit' if result.cache_hit else 'miss'} | "
                f"{elapsed:.4f}s elapsed]"
            )

        buffer = ""
        while True:
            if interactive:
                print("repro> " if not buffer.strip() else "   ... ", end="", flush=True)
            line = sys.stdin.readline()
            if not line:
                # EOF terminates the last statement, matching file semantics.
                for statement in split_statements(buffer):
                    run_statement(statement)
                break
            stripped = line.strip()
            if stripped in (r"\quit", r"\q", "exit", "quit") and not buffer.strip():
                break
            if stripped in (r"\stats",) and not buffer.strip():
                _print_cache_metrics(service)
                continue
            metrics_parts = stripped.split()
            if (
                metrics_parts
                and metrics_parts[0] == r"\metrics"
                and len(metrics_parts) <= 2
                and not buffer.strip()
            ):
                from repro.obs.registry import get_registry

                form = metrics_parts[1] if len(metrics_parts) == 2 else "prometheus"
                if form not in ("prometheus", "json"):
                    print(r"usage: \metrics [prometheus|json]", file=sys.stderr)
                elif form == "json":
                    print(get_registry().snapshot_json())
                else:
                    print(get_registry().render(), end="")
                continue
            if stripped == r"\top" and not buffer.strip():
                entries = history.stats.top(10, by="total_seconds")
                print(
                    f"{len(history.stats)} fingerprints, "
                    f"{len(history.regressions)} regression(s)"
                )
                print(_history_table(entries) if entries else "(no queries yet)")
                if history.regressions:
                    print(_regression_table(history.regressions))
                continue
            if stripped == r"\history" and not buffer.strip():
                entries = history.stats.top(len(history.stats) or 1)
                print(_history_table(entries) if entries else "(no queries yet)")
                continue
            # Only terminated statements run; the unterminated tail (e.g. a
            # multi-line statement, or a ';' hidden inside a string literal)
            # stays buffered.
            statements, buffer = scan_statements(buffer + line)
            for statement in statements:
                run_statement(statement)
    if history is not None:
        history.close()
    return 0


def _cmd_insert(args: argparse.Namespace) -> int:
    from repro.mutation import MutationError
    from repro.mutation.diskops import (
        append_rows_to_saved_catalog,
        rows_from_csv,
        rows_from_json,
        saved_table_types,
    )

    try:
        if (args.csv is None) == (args.values is None):
            raise MutationError("give exactly one of --csv or --values")
        if args.csv is not None:
            rows = rows_from_csv(args.csv, saved_table_types(args.data, args.table))
        else:
            rows = rows_from_json(args.values)
        record = append_rows_to_saved_catalog(args.data, args.table, rows)
    except (MutationError, KeyError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"appended {record['rows']} rows to {args.table} "
        f"(segment {record['segment']})"
    )
    return 0


def _cmd_delete(args: argparse.Namespace) -> int:
    from repro.mutation import MutationError
    from repro.mutation.diskops import delete_rows_from_saved_catalog

    try:
        record = delete_rows_from_saved_catalog(args.data, args.table, args.where)
    except (MutationError, KeyError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"deleted {record['rows']} rows from {args.table}")
    return 0


def _install_history(args: argparse.Namespace):
    """Install an ambient history for a maintenance verb; returns a restorer.

    ``repro compact --history-journal X`` / ``repro recover ...`` journal
    their compaction/recovery events through the ambient seam the mutation
    subsystem publishes into.  Returns a zero-argument cleanup callable.
    """
    from repro.obs.history import WorkloadHistory, set_history

    journal = getattr(args, "history_journal", None)
    if journal is None:
        return lambda: None
    history = WorkloadHistory(journal_path=journal)
    previous = set_history(history)

    def restore() -> None:
        set_history(previous)
        history.close()

    return restore


def _cmd_compact(args: argparse.Namespace) -> int:
    from repro.mutation.diskops import compact_saved_catalog

    restore = _install_history(args)
    try:
        summary = compact_saved_catalog(args.data, online=args.online)
    except (KeyError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        restore()
    print(
        f"compacted {summary['tables']} tables: folded {summary['records_folded']} "
        f"append-log records, reclaimed {summary['rows_reclaimed']} deleted rows "
        f"({summary['total_rows']} rows remain, generation {summary['generation']})"
    )
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.mutation.recovery import recover_saved_catalog

    restore = _install_history(args)
    try:
        summary = recover_saved_catalog(args.data)
    except (KeyError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        restore()
    if not summary["wal"]:
        print("no write-ahead log: nothing to recover")
        return 0
    print(
        f"recovered to transaction {summary['last_txn']}: replayed "
        f"{summary['replayed_txns']} committed transaction(s), truncated "
        f"{summary['truncated_bytes']} torn/uncommitted byte(s)"
    )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.mutation.wal import wal_status
    from repro.obs.instruments import publish_wal_status
    from repro.obs.registry import get_registry

    statements: list[str] = []
    if args.file:
        with open(args.file, encoding="utf-8") as handle:
            statements.extend(split_statements(handle.read()))
    for sql in args.sql or ():
        statements.extend(split_statements(sql))
    history = _history_for(args)
    if statements:
        session = _session_for(args)
        with QueryService(
            session,
            feedback=args.feedback,
            qerror_threshold=args.qerror_threshold,
            slow_query_seconds=args.slow_query_seconds,
            slow_query_log_path=args.slow_query_log,
            slow_query_log_keep=args.slow_query_log_keep,
            history=history,
        ) as service:
            for statement in statements:
                try:
                    service.execute(statement, planner=args.planner)
                except Exception as error:  # noqa: BLE001 - still render the registry
                    print(f"error: {error}", file=sys.stderr)
    if history is not None:
        history.close()
    registry = get_registry()
    try:
        publish_wal_status(registry, wal_status(args.data))
    except (KeyError, ValueError, OSError) as error:
        print(f"warning: wal status unavailable: {error}", file=sys.stderr)
    if args.format == "json":
        print(registry.snapshot_json())
    else:
        print(registry.render(), end="")
    return 0


def _journal_path(args: argparse.Namespace):
    """The journal file the history verbs read: --journal, else <data>/history.journal."""
    import os

    from repro.obs.journal import JOURNAL_NAME

    if getattr(args, "journal", None):
        return args.journal
    if getattr(args, "data", None):
        return os.path.join(args.data, JOURNAL_NAME)
    return None


def _history_for(args: argparse.Namespace, default_memory: bool = False):
    """A WorkloadHistory for a serving verb, or None when none was asked for.

    ``--history-journal PATH`` arms the persistent journal;
    ``--trace-sample-rate`` attaches sampled traces to its query events.
    ``default_memory=True`` (the serve REPL) keeps in-memory statistics even
    without a journal so ``\\top`` has something to show.
    """
    from repro.obs.history import WorkloadHistory

    journal = getattr(args, "history_journal", None)
    if journal is None and not default_memory:
        return None
    return WorkloadHistory(
        journal_path=journal,
        trace_sample_rate=getattr(args, "trace_sample_rate", 0.0),
    )


def _short(fingerprint: str, width: int = 16) -> str:
    """Fingerprints are long hashes; the tables show a readable prefix."""
    return fingerprint if len(fingerprint) <= width else fingerprint[:width]


def _history_table(entries) -> str:
    rows = [
        [
            _short(entry.fingerprint),
            entry.planner,
            entry.calls,
            entry.errors,
            entry.rows,
            f"{entry.total_seconds:.4f}",
            f"{entry.mean_seconds * 1e3:.2f}",
            f"{entry.percentile(95) * 1e3:.2f}",
            entry.pages_read,
            entry.cache_hits,
            entry.replans,
        ]
        for entry in entries
    ]
    return format_table(
        [
            "fingerprint",
            "planner",
            "calls",
            "errors",
            "rows",
            "total (s)",
            "mean (ms)",
            "p95 (ms)",
            "pages",
            "cache hits",
            "replans",
        ],
        rows,
    )


def _regression_table(events) -> str:
    rows = [
        [
            _short(event.fingerprint),
            event.metric,
            f"{event.baseline:.4f}",
            f"{event.recent:.4f}",
            f"{event.ratio:.2f}x",
            event.plan_hash or "-",
            event.calls,
        ]
        for event in events
    ]
    return format_table(
        ["fingerprint", "metric", "baseline", "recent", "ratio", "plan hash", "at call"],
        rows,
    )


def _replayed_history(args: argparse.Namespace):
    """Replay the journal named by the args into a fresh history, or None."""
    import os

    from repro.obs.history import WorkloadHistory

    journal = _journal_path(args)
    if journal is None:
        print("no journal: give --journal PATH or --data DIR", file=sys.stderr)
        return None
    if not os.path.exists(journal):
        print(f"no history journal at {journal}", file=sys.stderr)
        return None
    return WorkloadHistory.replay(
        journal,
        regression_threshold=args.threshold,
        baseline_calls=args.baseline_calls,
        regression_window=args.window,
    )


def _cmd_history(args: argparse.Namespace) -> int:
    import json

    history = _replayed_history(args)
    if history is None:
        return 2
    if args.history_command == "regressions":
        events = history.regressions
        if args.format == "json":
            print(json.dumps([event.as_dict() for event in events], indent=2))
        elif not events:
            print("no plan regressions detected")
        else:
            print(_regression_table(events))
        return 0
    entries = history.stats.top(args.top, by=args.by)
    if args.format == "json":
        print(json.dumps([entry.as_dict() for entry in entries], indent=2))
    elif not entries:
        print("no query history recorded")
    else:
        print(_history_table(entries))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    iterations = 0
    try:
        while True:
            history = _replayed_history(args)
            if history is None:
                return 2
            if sys.stdout.isatty() and iterations:
                print("\x1b[2J\x1b[H", end="")
            entries = history.stats.top(args.top, by=args.by)
            total_calls = sum(entry.calls for entry in history.stats.entries())
            print(
                f"repro top — {len(history.stats)} fingerprints, "
                f"{total_calls} calls, {len(history.regressions)} regression(s) "
                f"[by {args.by}]"
            )
            print(_history_table(entries) if entries else "(no query history yet)")
            if history.regressions:
                print(_regression_table(history.regressions))
            iterations += 1
            if args.iterations is not None and iterations >= args.iterations:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_wal_status(args: argparse.Namespace) -> int:
    from repro.mutation.wal import wal_status

    try:
        status = wal_status(args.data)
    except (KeyError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        # The status dictionary travels through a private MetricsRegistry so
        # the JSON document is exactly the registry's snapshot serialization.
        from repro.obs.instruments import publish_wal_status
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        publish_wal_status(registry, status)
        print(registry.snapshot_json())
        return 0
    if not status["exists"]:
        print("no write-ahead log")
        return 0
    print(
        f"wal: {status['size_bytes']} bytes, {status['records']} records, "
        f"base txn {status['base_txn']}\n"
        f"committed: {status['committed_txns']}  applied: {status['applied_txns']}  "
        f"pending: {status['pending_txns']}  torn tail: {status['tail_bytes']} bytes"
    )
    return 0


def _cmd_table_stats(args: argparse.Namespace) -> int:
    from repro.stats.table_stats import collect_table_stats

    catalog = load_catalog(args.data)
    try:
        table = catalog.get(args.table_name)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    stats = collect_table_stats(table)
    deleted = f" ({table.num_deleted} deleted)" if table.has_deletes() else ""
    print(
        f"{table.name}: {stats.num_rows} rows{deleted}, {table.num_pages} pages "
        f"of {stats.page_size} rows"
    )
    rows = [
        [
            column.name,
            table.column(column.name).ctype.value,
            column.distinct_count,
            column.null_count,
            "-" if column.min_value is None else column.min_value,
            "-" if column.max_value is None else column.max_value,
        ]
        for column in stats.columns.values()
    ]
    print(format_table(["column", "type", "distinct", "nulls", "min", "max"], rows))
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    from repro.storage.disk import (
        add_index_to_saved_catalog,
        drop_index_from_saved_catalog,
        list_saved_indexes,
    )

    if args.index_command == "create":
        try:
            definition = add_index_to_saved_catalog(
                args.data, args.table, args.column, kind=args.kind
            )
        except (KeyError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"created index {definition.describe()}")
        return 0
    if args.index_command == "drop":
        try:
            entry = drop_index_from_saved_catalog(args.data, args.table, args.column)
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"dropped index {entry['table']}.{entry['column']} ({entry['kind']})")
        return 0
    entries = list_saved_indexes(args.data)
    if not entries:
        print("(no indexes)")
        return 0
    print(
        format_table(
            ["table", "column", "kind", "file"],
            [[entry["table"], entry["column"], entry["kind"], entry["file"]] for entry in entries],
        )
    )
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    reports = run_fuzz_campaign(
        num_queries=args.queries,
        seed=args.seed,
        catalog_config=RandomCatalogConfig(
            seed=args.seed,
            num_dimensions=args.dimensions,
            fact_rows=args.table_size,
            dimension_rows=args.table_size,
        ),
        planners=tuple(args.planners),
    )
    for report in reports:
        print(report.describe())
    mismatches = [report for report in reports if not report.agreed]
    print(f"{len(reports) - len(mismatches)}/{len(reports)} queries agreed across all planners")
    return 1 if mismatches else 0


def _cmd_figures(args: argparse.Namespace) -> int:
    return bench_figures.main(args.figure_args)


# --------------------------------------------------------------------------- #
# Argument parsing
# --------------------------------------------------------------------------- #
def _add_feedback_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--feedback",
        action="store_true",
        help="record observed selectivities and re-plan cached queries whose "
        "cardinality estimates drift (results are unchanged)",
    )
    parser.add_argument(
        "--qerror-threshold",
        type=float,
        default=2.0,
        help="estimated-vs-actual output q-error above which a cached plan "
        "is re-planned (with --feedback)",
    )
    parser.add_argument(
        "--slow-query-seconds",
        type=float,
        default=None,
        help="arm the slow-query log: queries at or over this many seconds "
        "emit a structured JSON record on stderr",
    )


def _add_history_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--history-journal",
        metavar="PATH",
        default=None,
        help="record workload history (per-fingerprint statistics, query / "
        "re-plan / slow-query / regression events) into a persistent "
        "checksummed journal at PATH (read back with 'repro history' "
        "and 'repro top')",
    )
    parser.add_argument(
        "--trace-sample-rate",
        type=float,
        default=0.0,
        help="fraction of journaled query events carrying a full trace "
        "attachment (0 = never, 1 = always; requires --history-journal)",
    )
    parser.add_argument(
        "--slow-query-log",
        metavar="PATH",
        default=None,
        help="also write slow-query records (one JSON line each) to PATH, "
        "rotated by size (requires --slow-query-seconds)",
    )
    parser.add_argument(
        "--slow-query-log-keep",
        type=int,
        default=3,
        metavar="N",
        help="rotated slow-query log files kept (default 3)",
    )


def _add_history_read_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--journal", help="history journal file to read")
    parser.add_argument(
        "--data", help="dataset directory (journal defaults to <data>/history.journal)"
    )
    parser.add_argument("--top", type=int, default=10, help="fingerprints shown")
    from repro.obs.history import TOP_ORDERINGS

    parser.add_argument(
        "--by",
        choices=TOP_ORDERINGS,
        default="total_seconds",
        help="ordering of the top list",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="regression threshold (recent median vs baseline median)",
    )
    parser.add_argument(
        "--baseline-calls",
        type=int,
        default=8,
        help="observations forming a fingerprint's baseline",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=4,
        help="size of the recent window compared against the baseline",
    )


def _add_parallel_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--parallelism",
        type=int,
        default=1,
        help="worker threads per query (morsel-driven; byte-identical output "
        "at any worker count for a fixed --partitions)",
    )
    parser.add_argument(
        "--partitions",
        type=int,
        default=None,
        help="table partitions per query (defaults to --parallelism times --shards)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shared-nothing worker processes per query (scatter-gather; "
        "1 = in-process execution; byte-identical output at any shard "
        "count for a fixed --partitions, and --parallelism threads run "
        "inside each shard)",
    )
    parser.add_argument(
        "--no-access-paths",
        action="store_true",
        help="disable zone-map/index scan pruning (results are identical "
        "either way; every page is read)",
    )
    parser.add_argument(
        "--kernels",
        choices=("off", "numpy", "jit"),
        default="numpy",
        help="expression-kernel tier: off = legacy full-width truth arrays, "
        "numpy = fused selection-vector kernels (default), jit = numba-"
        "compiled numeric loops (falls back to numpy when numba is absent); "
        "results are identical at every tier",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tagged execution for disjunctive queries — reproduction CLI.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate and save a dataset")
    generate.add_argument("dataset", choices=("synthetic", "imdb", "fuzz"))
    generate.add_argument("--out", required=True, help="output directory")
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--table-size", type=int, default=10_000, help="rows per table")
    generate.add_argument("--scale", type=float, default=0.05, help="IMDB scale factor")
    generate.add_argument("--dimensions", type=int, default=2, help="fuzz dimension tables")
    generate.set_defaults(func=_cmd_generate)

    query = subparsers.add_parser("query", help="run a SQL query against a saved dataset")
    query.add_argument("--data", required=True, help="catalog directory")
    query.add_argument("--sql", required=True, help="SQL text")
    query.add_argument("--planner", default="tcombined", choices=sorted(ALL_PLANNERS))
    query.add_argument("--max-rows", type=int, default=DEFAULT_MAX_ROWS)
    query.add_argument("--metrics", action="store_true", help="print work counters")
    query.add_argument(
        "--explain-analyze",
        action="store_true",
        help="execute, then print estimated vs actual rows per operator",
    )
    query.add_argument(
        "--snapshot",
        type=int,
        default=None,
        help="read the dataset as of the first K append-log records "
        "(0 = the base state; default: all records applied)",
    )
    query.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="trace the execution and write the span tree to PATH "
        "(results are byte-identical with tracing on or off)",
    )
    query.add_argument(
        "--trace-format",
        choices=("json", "chrome"),
        default="json",
        help="trace file format: json = hierarchical span tree, "
        "chrome = trace-event list for chrome://tracing / Perfetto",
    )
    _add_parallel_flags(query)
    query.set_defaults(func=_cmd_query)

    explain = subparsers.add_parser("explain", help="print the chosen plan")
    explain.add_argument("--data", required=True)
    explain.add_argument("--sql", required=True)
    explain.add_argument("--planner", default="tcombined", choices=sorted(ALL_PLANNERS))
    explain.set_defaults(func=_cmd_explain)

    compare = subparsers.add_parser("compare", help="run one query under several planners")
    compare.add_argument("--data", required=True)
    compare.add_argument("--sql", required=True)
    compare.add_argument(
        "--planners",
        nargs="+",
        default=["tcombined", "bdisj", "bpushconj", "bypass"],
        choices=sorted(ALL_PLANNERS),
    )
    _add_parallel_flags(compare)
    compare.set_defaults(func=_cmd_compare)

    batch = subparsers.add_parser(
        "batch", help="run many queries through the caching query service"
    )
    batch.add_argument("--data", required=True, help="catalog directory")
    batch.add_argument("--file", help="file of ;-separated SQL statements")
    batch.add_argument("--sql", action="append", help="inline SQL (repeatable)")
    batch.add_argument("--planner", default="tcombined", choices=sorted(ALL_PLANNERS))
    batch.add_argument("--repeat", type=int, default=1, help="repetitions of the query list")
    batch.add_argument("--workers", type=int, default=4, help="worker threads")
    batch.add_argument("--timeout", type=float, default=None, help="per-query timeout (s)")
    batch.add_argument("--cache-size", type=int, default=256, help="plan cache capacity")
    batch.add_argument("--metrics", action="store_true", help="print summed work counters")
    _add_feedback_flags(batch)
    _add_history_flags(batch)
    _add_parallel_flags(batch)
    batch.set_defaults(func=_cmd_batch)

    serve = subparsers.add_parser(
        "serve", help="read SQL from stdin and serve it with plan caching"
    )
    serve.add_argument("--data", required=True, help="catalog directory")
    serve.add_argument("--planner", default="tcombined", choices=sorted(ALL_PLANNERS))
    serve.add_argument("--cache-size", type=int, default=256, help="plan cache capacity")
    serve.add_argument("--max-rows", type=int, default=DEFAULT_MAX_ROWS)
    _add_feedback_flags(serve)
    _add_history_flags(serve)
    _add_parallel_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    insert = subparsers.add_parser(
        "insert", help="append rows to a saved dataset's append log"
    )
    insert.add_argument("--data", required=True, help="catalog directory")
    insert.add_argument("--table", required=True)
    insert.add_argument("--csv", help="CSV file with a header row (empty cells = NULL)")
    insert.add_argument(
        "--values", help='inline JSON rows, e.g. \'[{"id": 1, "v": 2.5}]\''
    )
    insert.set_defaults(func=_cmd_insert)

    delete = subparsers.add_parser(
        "delete", help="logically delete rows matching a predicate"
    )
    delete.add_argument("--data", required=True, help="catalog directory")
    delete.add_argument("--table", required=True)
    delete.add_argument(
        "--where",
        required=True,
        help="SQL predicate over the table, e.g. \"T1.A1 > 0.9\"",
    )
    delete.set_defaults(func=_cmd_delete)

    compact = subparsers.add_parser(
        "compact", help="fold the append log into a new table generation"
    )
    compact.add_argument("--data", required=True, help="catalog directory")
    compact.add_argument(
        "--online",
        action="store_true",
        help="hold locks only to pin the fold point and to swap "
        "(concurrent writers keep committing and are rebased)",
    )
    compact.add_argument(
        "--history-journal",
        metavar="PATH",
        default=None,
        help="journal the compaction event (tables, rows reclaimed, "
        "generation) into the history journal at PATH",
    )
    compact.set_defaults(func=_cmd_compact)

    recover = subparsers.add_parser(
        "recover", help="replay the write-ahead log to the last committed batch"
    )
    recover.add_argument("--data", required=True, help="catalog directory")
    recover.add_argument(
        "--history-journal",
        metavar="PATH",
        default=None,
        help="journal the recovery event (replayed transactions, truncated "
        "bytes) into the history journal at PATH",
    )
    recover.set_defaults(func=_cmd_recover)

    wal = subparsers.add_parser("wal", help="inspect the write-ahead log")
    wal_sub = wal.add_subparsers(dest="wal_command", required=True)
    wal_stat = wal_sub.add_parser(
        "status", help="committed/applied/pending transactions and torn bytes"
    )
    wal_stat.add_argument("--data", required=True, help="catalog directory")
    wal_stat.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="text = human-readable summary, json = machine-readable gauges "
        "(the metrics registry's snapshot serialization)",
    )
    wal_stat.set_defaults(func=_cmd_wal_status)

    metrics = subparsers.add_parser(
        "metrics", help="print the process metrics registry"
    )
    metrics.add_argument("--data", required=True, help="catalog directory")
    metrics.add_argument(
        "--sql", action="append", help="inline SQL to run first so counters move (repeatable)"
    )
    metrics.add_argument("--file", help="file of ;-separated SQL statements to run first")
    metrics.add_argument("--planner", default="tcombined", choices=sorted(ALL_PLANNERS))
    metrics.add_argument(
        "--format",
        choices=("prometheus", "json"),
        default="prometheus",
        help="prometheus = text exposition format, json = the registry's "
        "snapshot serialization (same shape as 'wal status --format json')",
    )
    _add_feedback_flags(metrics)
    _add_history_flags(metrics)
    _add_parallel_flags(metrics)
    metrics.set_defaults(func=_cmd_metrics)

    history = subparsers.add_parser(
        "history",
        help="per-fingerprint workload statistics replayed from an event journal",
    )
    history.add_argument(
        "history_command",
        nargs="?",
        choices=("top", "regressions"),
        default="top",
        help="top = heaviest fingerprints (default), regressions = detected "
        "plan regressions",
    )
    _add_history_read_flags(history)
    history.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="table = human-readable, json = machine-readable",
    )
    history.set_defaults(func=_cmd_history)

    top = subparsers.add_parser(
        "top", help="refreshing top-N view over a dataset's history journal"
    )
    _add_history_read_flags(top)
    top.add_argument(
        "--interval", type=float, default=2.0, help="seconds between refreshes"
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="render this many frames then exit (default: until interrupted)",
    )
    top.set_defaults(func=_cmd_top)

    table = subparsers.add_parser("table", help="introspect a saved dataset")
    table_sub = table.add_subparsers(dest="table_command", required=True)
    table_stats = table_sub.add_parser(
        "stats", help="print rows/pages and per-column min-max/distinct/null stats"
    )
    table_stats.add_argument("table_name", help="table to describe")
    table_stats.add_argument("--data", required=True, help="catalog directory")
    table_stats.set_defaults(func=_cmd_table_stats)

    index = subparsers.add_parser(
        "index", help="create / drop / list secondary indexes on a saved dataset"
    )
    index_sub = index.add_subparsers(dest="index_command", required=True)
    index_create = index_sub.add_parser("create", help="create an index")
    index_create.add_argument("--data", required=True, help="catalog directory")
    index_create.add_argument("--table", required=True)
    index_create.add_argument("--column", required=True)
    index_create.add_argument(
        "--kind",
        default="auto",
        choices=("auto", "bitmap", "sorted"),
        help="bitmap (low-distinct), sorted (ranges) or auto (by distinct count)",
    )
    index_create.set_defaults(func=_cmd_index)
    index_drop = index_sub.add_parser("drop", help="drop an index")
    index_drop.add_argument("--data", required=True, help="catalog directory")
    index_drop.add_argument("--table", required=True)
    index_drop.add_argument("--column", required=True)
    index_drop.set_defaults(func=_cmd_index)
    index_list = index_sub.add_parser("list", help="list indexes")
    index_list.add_argument("--data", required=True, help="catalog directory")
    index_list.set_defaults(func=_cmd_index)

    fuzz = subparsers.add_parser("fuzz", help="differential-test planners against the oracle")
    fuzz.add_argument("--queries", type=int, default=10)
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--table-size", type=int, default=150)
    fuzz.add_argument("--dimensions", type=int, default=2)
    fuzz.add_argument("--planners", nargs="+", default=list(DEFAULT_PLANNERS))
    fuzz.set_defaults(func=_cmd_fuzz)

    figures = subparsers.add_parser(
        "figures", help="regenerate paper figures (see repro.bench.figures)"
    )
    figures.add_argument("figure_args", nargs=argparse.REMAINDER)
    figures.set_defaults(func=_cmd_figures)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())

"""Lowering logical plans onto the physical-operator layer.

:func:`compile_plan` turns the planner output of any execution model —
a tagged :class:`~repro.plan.logical.PlanNode` tree, a
:class:`~repro.baseline.planners.TraditionalPlan`, or a
:class:`~repro.bypass.planner.BypassPlan` — into one
:class:`PhysicalPlan`: a tree of
:class:`~repro.physical.base.PhysicalOperator` objects whose root emits
:class:`~repro.engine.result.OutputColumns` batches.

The compiler optionally restricts a single table alias to a
:class:`~repro.storage.table.TablePartition`; the morsel driver compiles one
physical tree per partition.  Restricting one alias is sound for
scan→filter→join pipelines because every operator is linear in each input:
filtering or joining the union of the partitions equals the union of
filtering or joining each partition, and the partitioned alias appears on
exactly one side of every join.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baseline.operators import FilterOperator, HashJoinOperator
from repro.baseline.planners import TraditionalPlan
from repro.bypass.operators import BypassFilterOperator, BypassJoinOperator
from repro.core.operators import TaggedFilterOperator, TaggedJoinOperator
from repro.core.predtree import PredicateTree
from repro.core.tagmap import PlanTagAnnotations
from repro.engine.metrics import ExecContext
from repro.engine.result import OutputColumns
from repro.physical.base import PhysicalOperator
from repro.physical.batches import merge_output_columns
from repro.physical.operators import (
    BypassProjectPhysical,
    FilterPhysical,
    JoinPhysical,
    ScanPhysical,
    TaggedProjectPhysical,
    TraditionalProjectPhysical,
)
from repro.plan.logical import FilterNode, JoinNode, PlanNode, ProjectNode, TableScanNode
from repro.storage.bitmap import Bitmap
from repro.storage.catalog import Catalog
from repro.storage.table import TablePartition


@dataclass
class PhysicalPlan:
    """A compiled physical-operator tree, ready to execute.

    Attributes:
        kind: execution model (``"tagged"``, ``"traditional"``, ``"bypass"``).
        root: the root operator; its batches are ``OutputColumns``.
        partition: the table partition this tree is restricted to (``None``
            for a whole-table tree).
    """

    kind: str
    root: PhysicalOperator
    partition: TablePartition | None = None

    def execute(self, context: ExecContext) -> OutputColumns:
        """Run the tree to completion and merge its output batches."""
        self.root.open(context)
        try:
            batches = self.root.drain()
        finally:
            self.root.close()
        if not batches:
            return OutputColumns.empty()
        return merge_output_columns(batches)


def compile_plan(
    kind: str,
    plan,
    catalog: Catalog,
    annotations: PlanTagAnnotations | None = None,
    predicate_tree: PredicateTree | None = None,
    three_valued: bool = True,
    partition_alias: str | None = None,
    partition: TablePartition | None = None,
    scan_candidates: dict[str, "Bitmap"] | None = None,
) -> PhysicalPlan:
    """Compile a planner's output into a :class:`PhysicalPlan`.

    Args:
        kind: ``"tagged"``, ``"traditional"`` or ``"bypass"``.
        plan: the planner output (PlanNode root for tagged/bypass, a
            TraditionalPlan for traditional; a BypassPlan's ``.plan`` should
            be passed for bypass).
        catalog: base tables.
        annotations: tag maps (tagged plans only).
        predicate_tree: the query's predicate tree (tagged residual +
            bypass routing).
        three_valued: SQL three-valued logic for bypass evaluation.
        partition_alias: alias whose scan is restricted to ``partition``.
        partition: the row-range slice for ``partition_alias``.
        scan_candidates: alias -> access-path candidate bitmap; scans of
            those aliases emit only candidate rows (zone-map/index pruning).
    """
    compiler = _Compiler(
        kind=kind,
        catalog=catalog,
        annotations=annotations,
        predicate_tree=predicate_tree,
        three_valued=three_valued,
        partition_alias=partition_alias,
        partition=partition,
        scan_candidates=scan_candidates,
    )
    if kind == "traditional":
        root = compiler.compile_traditional(plan)
    elif kind == "tagged":
        root = compiler.compile_tagged(plan)
    elif kind == "bypass":
        root = compiler.compile_bypass(plan)
    else:
        raise ValueError(f"unknown execution kind {kind!r}")
    return PhysicalPlan(kind=kind, root=root, partition=partition)


def plan_scan_aliases(kind: str, plan) -> dict[str, str]:
    """Alias -> table-name of every base-table scan in a planner's output.

    For traditional plans the first subplan is inspected (all subplans scan
    the same query aliases).  Used by the parallel driver to pick the
    partitioning alias deterministically.
    """
    if kind == "traditional":
        if not plan.subplans:
            return {}
        node = plan.subplans[0]
    else:
        node = plan
    return {
        scan.alias: scan.table_name
        for scan in node.walk()
        if isinstance(scan, TableScanNode)
    }


class _Compiler:
    """Walks a logical plan and emits the physical tree for one model."""

    def __init__(
        self,
        kind: str,
        catalog: Catalog,
        annotations: PlanTagAnnotations | None,
        predicate_tree: PredicateTree | None,
        three_valued: bool,
        partition_alias: str | None,
        partition: TablePartition | None,
        scan_candidates: dict[str, "Bitmap"] | None = None,
    ) -> None:
        self.kind = kind
        self.catalog = catalog
        self.annotations = annotations
        self.predicate_tree = predicate_tree
        self.three_valued = three_valued
        self.partition_alias = partition_alias
        self.partition = partition
        self.scan_candidates = scan_candidates or {}

    # ------------------------------------------------------------------ #
    # Shared pieces
    # ------------------------------------------------------------------ #
    def _scan(self, node: TableScanNode) -> ScanPhysical:
        partition = (
            self.partition if node.alias == self.partition_alias else None
        )
        return ScanPhysical(
            self.kind,
            node.alias,
            self.catalog.get(node.table_name),
            partition,
            node_id=node.node_id,
            candidates=self.scan_candidates.get(node.alias),
        )

    @staticmethod
    def _reject_project(node: PlanNode) -> None:
        if isinstance(node, ProjectNode):
            raise ValueError(
                "nested ProjectNode encountered; plans must have a single root"
            )
        raise TypeError(f"unknown plan node type: {type(node).__name__}")

    # ------------------------------------------------------------------ #
    # Tagged
    # ------------------------------------------------------------------ #
    def compile_tagged(self, plan: PlanNode) -> PhysicalOperator:
        if not isinstance(plan, ProjectNode):
            raise ValueError("tagged plans must be rooted at a ProjectNode")
        child = self._tagged_node(plan.child)
        projection = self.annotations.projection if self.annotations else None
        residual = (
            self.predicate_tree.expression if self.predicate_tree is not None else None
        )
        return TaggedProjectPhysical(
            child, projection, residual, plan.columns, node_id=plan.node_id
        )

    def _tagged_node(self, node: PlanNode) -> PhysicalOperator:
        if isinstance(node, TableScanNode):
            return self._scan(node)
        if isinstance(node, FilterNode):
            child = self._tagged_node(node.child)
            tag_map = self.annotations.filter_maps.get(node.node_id)
            if tag_map is None:
                return child
            return FilterPhysical(
                TaggedFilterOperator(node.predicate, tag_map), child, node_id=node.node_id
            )
        if isinstance(node, JoinNode):
            build = self._tagged_node(node.left)
            probe = self._tagged_node(node.right)
            tag_map = self.annotations.join_maps[node.node_id]
            return JoinPhysical(
                TaggedJoinOperator(node.conditions, tag_map),
                build,
                probe,
                node_id=node.node_id,
            )
        self._reject_project(node)

    # ------------------------------------------------------------------ #
    # Traditional
    # ------------------------------------------------------------------ #
    def compile_traditional(self, plan: TraditionalPlan) -> PhysicalOperator:
        if not plan.subplans:
            raise ValueError("traditional plan has no subplans")
        children = []
        project_columns = None
        for subplan in plan.subplans:
            if not isinstance(subplan, ProjectNode):
                raise ValueError("traditional subplans must be rooted at a ProjectNode")
            project_columns = subplan.columns
            children.append(self._traditional_node(subplan.child))
        return TraditionalProjectPhysical(
            children, project_columns or [], plan.needs_union
        )

    def _traditional_node(self, node: PlanNode) -> PhysicalOperator:
        if isinstance(node, TableScanNode):
            return self._scan(node)
        if isinstance(node, FilterNode):
            child = self._traditional_node(node.child)
            return FilterPhysical(
                FilterOperator(node.predicate), child, node_id=node.node_id
            )
        if isinstance(node, JoinNode):
            build = self._traditional_node(node.left)
            probe = self._traditional_node(node.right)
            return JoinPhysical(
                HashJoinOperator(node.conditions), build, probe, node_id=node.node_id
            )
        self._reject_project(node)

    # ------------------------------------------------------------------ #
    # Bypass
    # ------------------------------------------------------------------ #
    def compile_bypass(self, plan: PlanNode) -> PhysicalOperator:
        if not isinstance(plan, ProjectNode):
            raise ValueError("bypass plans must be rooted at a ProjectNode")
        child = self._bypass_node(plan.child)
        # The root keeps the alias -> table map so a partition where every
        # stream was rejected still emits a schema-carrying empty output
        # (downstream aggregation needs the column names and dtypes).
        alias_tables = {
            scan.alias: self.catalog.get(scan.table_name)
            for scan in plan.walk()
            if isinstance(scan, TableScanNode)
        }
        return BypassProjectPhysical(
            child,
            self.predicate_tree,
            plan.columns,
            self.three_valued,
            node_id=plan.node_id,
            alias_tables=alias_tables,
        )

    def _bypass_node(self, node: PlanNode) -> PhysicalOperator:
        if isinstance(node, TableScanNode):
            return self._scan(node)
        if isinstance(node, FilterNode):
            child = self._bypass_node(node.child)
            kernel = BypassFilterOperator(
                node.predicate, self.predicate_tree, three_valued=self.three_valued
            )
            return FilterPhysical(kernel, child, node_id=node.node_id)
        if isinstance(node, JoinNode):
            build = self._bypass_node(node.left)
            probe = self._bypass_node(node.right)
            return JoinPhysical(
                BypassJoinOperator(node.conditions, self.predicate_tree),
                build,
                probe,
                node_id=node.node_id,
            )
        self._reject_project(node)

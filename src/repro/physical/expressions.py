"""The shared expression-evaluation and join-key path.

Before the physical-operator layer existed, the baseline, tagged, and bypass
operator files each carried a private near-copy of the same three routines:
building a :class:`~repro.expr.eval.RowBatch` over the aliases a predicate
references, reading and encoding join-key columns, and orienting a join
condition toward the build input.  Those copies drifted independently; this
module is now the single implementation all three execution models call.

Everything here is model-agnostic: functions accept the ``tables`` /
``indices`` mappings every relation representation exposes (plain
:class:`~repro.baseline.relation.Relation`, tagged relations, and bypass
streams all share that shape), so no execution-model package is imported and
no import cycles arise.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.engine.metrics import ExecContext
from repro.expr import three_valued as tv
from repro.expr.ast import BooleanExpr, ColumnRef, iter_base_predicates
from repro.expr.eval import RowBatch
from repro.kernels import dictionary as dict_kernels
from repro.kernels.fused import FusedEvaluator
from repro.plan.query import JoinCondition
from repro.storage.table import Table
from repro.utils.keys import composite_keys


def evaluate_predicate(
    predicate: BooleanExpr,
    tables: Mapping[str, Table],
    indices: Mapping[str, np.ndarray],
    context: ExecContext,
    positions: np.ndarray | None = None,
    description: str = "filter",
) -> np.ndarray:
    """Evaluate ``predicate`` over an index relation; returns a truth array.

    Args:
        predicate: the boolean expression to evaluate.
        tables: alias -> base table of the input relation.
        indices: alias -> row-index array of the input relation.
        context: execution context (cache + I/O accounting).
        positions: optional relation row positions to restrict evaluation to;
            ``None`` evaluates every row.
        description: label used in the error message when the predicate
            references aliases the relation does not have.

    Returns:
        One truth value (:mod:`repro.expr.three_valued`) per evaluated row,
        aligned with ``positions`` (or with the whole relation).
    """
    aliases = predicate.tables()
    missing = aliases - set(indices)
    if missing:
        raise ValueError(
            f"{description} predicate {predicate.key()} references aliases "
            f"{sorted(missing)} not present in the input relation "
            f"(aliases: {sorted(indices)})"
        )
    if positions is not None:
        num_rows = int(np.asarray(positions).shape[0])
    elif aliases:
        num_rows = int(np.asarray(indices[next(iter(aliases))]).shape[0])
    else:
        num_rows = 0
    if num_rows == 0:
        # Zero-row early exit: no batch dicts, no RowBatch, no column reads.
        # The legacy path produced the same empty truth array, it just paid
        # for the scaffolding first.
        return np.zeros(0, dtype=np.uint8)
    if positions is None:
        batch_indices = {alias: indices[alias] for alias in aliases}
    else:
        batch_indices = {alias: indices[alias][positions] for alias in aliases}
    batch_tables = {alias: tables[alias] for alias in aliases}
    batch = RowBatch(
        batch_tables, batch_indices, cache=context.cache, iostats=context.iostats
    )
    feedback_eligible = (
        context.collect_feedback
        and description in ("filter", "bypass filter")
        and not (aliases & context.feedback_excluded_aliases)
    )
    if context.kernels is not None:
        evaluator = FusedEvaluator(
            batch, context.kernels, context, record_observations=feedback_eligible
        )
        truth = evaluator.evaluate(predicate)
    else:
        truth = predicate.evaluate(batch)
        # Every clause of the tree saw every row: that is the work the fused
        # kernels avoid, and the baseline of the clause-work benchmark.
        context.metrics.clause_rows_evaluated += num_rows * sum(
            1 for _ in iter_base_predicates(predicate)
        )
    if feedback_eligible and truth.size:
        # The observed per-clause pass rate is the raw material of the
        # feedback loop: ratios are partition-invariant (evaluated and
        # matched scale together when a build side re-runs per morsel), so
        # accumulated counts yield the same selectivities at any
        # parallelism / partition setting.  Residual evaluations are
        # excluded — their input is conditioned on the tuples no definite
        # tag assignment covered, which is not a selectivity observation.
        # Clauses touching an access-path-pruned alias are excluded too:
        # their input is conditioned on the scan's candidate set, so the
        # observed ratio is not the predicate's true selectivity.
        context.metrics.record_predicate(
            predicate.key(), int(truth.size), int(tv.is_true(truth).sum())
        )
    return truth


def orient_condition(
    condition: JoinCondition, left_indices: Mapping[str, np.ndarray]
) -> tuple[ColumnRef, ColumnRef]:
    """Return ``(left column, right column)`` for a join's actual inputs.

    Join conditions are stored in query order, which may be flipped relative
    to how the planner arranged the join's inputs; this orients the condition
    so the first column belongs to the left (build) input.
    """
    if condition.left.alias in left_indices:
        return condition.left, condition.right
    if condition.right.alias in left_indices:
        return condition.right, condition.left
    raise ValueError(
        f"join condition {condition} does not reference the left input "
        f"(aliases: {sorted(left_indices)})"
    )


def read_join_keys(
    conditions: list[JoinCondition],
    left_tables: Mapping[str, Table],
    left_indices: Mapping[str, np.ndarray],
    right_tables: Mapping[str, Table],
    right_indices: Mapping[str, np.ndarray],
    context: ExecContext,
    left_positions: np.ndarray | None = None,
    right_positions: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Read and encode the join-key columns of both inputs.

    Column reads are accounted against the context's cache and I/O counters;
    the values are folded into composite int64 keys (NULL keys become ``-1``,
    which the join kernel drops — SQL equi-join semantics).

    ``left_positions`` / ``right_positions`` optionally restrict each side to
    a subset of its relation rows (tagged execution joins only the rows named
    by its tag maps).

    When either side is empty no columns are read at all (zero-row early
    exit): both key arrays come back all ``-1``, which the join kernel drops,
    so the join output is the same empty result the reads would have
    produced.  With fused kernels enabled, string key columns that both
    carry dictionaries are joined on their integer codes (the probe side
    remapped into the build side's code space) instead of decoded values —
    same equality structure and NULLs, so identical join output, but int
    factorization instead of object factorization.
    """
    if conditions:
        first_left, first_right = orient_condition(conditions[0], left_indices)
        left_count = int(np.asarray(left_indices[first_left.alias]).shape[0])
        if left_positions is not None:
            left_count = int(np.asarray(left_positions).shape[0])
        right_count = int(np.asarray(right_indices[first_right.alias]).shape[0])
        if right_positions is not None:
            right_count = int(np.asarray(right_positions).shape[0])
        if left_count == 0 or right_count == 0:
            return (
                np.full(left_count, -1, dtype=np.int64),
                np.full(right_count, -1, dtype=np.int64),
            )
    left_columns = []
    right_columns = []
    for condition in conditions:
        left_ref, right_ref = orient_condition(condition, left_indices)
        left_rows = left_indices[left_ref.alias]
        if left_positions is not None:
            left_rows = left_rows[left_positions]
        right_rows = right_indices[right_ref.alias]
        if right_positions is not None:
            right_rows = right_rows[right_positions]
        pair = None
        if context.kernels is not None:
            pair = dict_kernels.join_code_columns(
                left_tables[left_ref.alias],
                left_ref.column,
                left_rows,
                right_tables[right_ref.alias],
                right_ref.column,
                right_rows,
                cache=context.cache,
                iostats=context.iostats,
            )
        if pair is not None:
            left_columns.append(pair[0])
            right_columns.append(pair[1])
            continue
        left_columns.append(
            left_tables[left_ref.alias].read_column_at(
                left_ref.column, left_rows, cache=context.cache, iostats=context.iostats
            )
        )
        right_columns.append(
            right_tables[right_ref.alias].read_column_at(
                right_ref.column, right_rows, cache=context.cache, iostats=context.iostats
            )
        )
    return composite_keys(left_columns, right_columns)

"""The unified physical-operator layer.

One batched ``open()/next_batch()/close()`` operator protocol
(:mod:`repro.physical.base`) that the baseline, tagged, and bypass execution
models all compile onto (:mod:`repro.physical.compile`), sharing a single
expression-evaluation and join-key path (:mod:`repro.physical.expressions`).
The morsel-driven parallel driver (:mod:`repro.engine.parallel`) runs one
compiled tree per table partition and merges batches deterministically.

Only the model-agnostic pieces are imported eagerly; the operator and
compiler modules import the three execution-model packages, which themselves
use :mod:`repro.physical.expressions`, so they are exposed lazily to keep the
import graph acyclic.
"""

from repro.physical.base import PhysicalOperator
from repro.physical.expressions import (
    evaluate_predicate,
    orient_condition,
    read_join_keys,
)

__all__ = [
    "PhysicalOperator",
    "PhysicalPlan",
    "compile_plan",
    "evaluate_predicate",
    "orient_condition",
    "read_join_keys",
]


def __getattr__(name: str):
    """Lazily expose the compiler entry points (avoids import cycles)."""
    if name in ("PhysicalPlan", "compile_plan"):
        from repro.physical import compile as _compile

        return getattr(_compile, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""The physical-operator protocol: ``open() / next_batch() / close()``.

Every physical operator — for all three execution models — implements the
same batched pull contract:

* :meth:`PhysicalOperator.open` binds the operator (and, recursively, its
  children) to one :class:`~repro.engine.metrics.ExecContext`;
* :meth:`PhysicalOperator.next_batch` returns the next batch of output, or
  ``None`` when the operator is exhausted;
* :meth:`PhysicalOperator.close` releases per-execution state, making the
  operator reusable for another ``open``.

A *batch* is the execution model's relation payload: a plain
:class:`~repro.baseline.relation.Relation` for traditional operators, a
:class:`~repro.core.tagged_relation.TaggedRelation` for tagged operators, a
:class:`~repro.bypass.streams.StreamSet` for bypass operators, and
:class:`~repro.engine.result.OutputColumns` at the root of every tree.  The
morsel-driven driver (:mod:`repro.engine.parallel`) runs one operator tree
per table partition and merges the root batches in partition order, which is
what makes parallel output byte-identical to serial output.
"""

from __future__ import annotations

from typing import Generic, TypeVar

from repro.engine.metrics import ExecContext

Batch = TypeVar("Batch")


class PhysicalOperator(Generic[Batch]):
    """Abstract base of every physical operator.

    Subclasses override :meth:`_next`; ``open``/``close`` recurse through
    :attr:`children` by default and subclasses extend them for private state.
    """

    def __init__(
        self,
        children: list["PhysicalOperator"] | None = None,
        node_id: int | None = None,
    ) -> None:
        self.children: list[PhysicalOperator] = list(children or [])
        #: Logical plan node this operator was compiled from (``None`` for
        #: hand-built trees).  Keys the per-operator actual-row counters that
        #: ``--explain-analyze`` and the feedback loop consume.
        self.node_id = node_id
        self._context: ExecContext | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def open(self, context: ExecContext) -> None:
        """Bind the operator tree to an execution context."""
        self._context = context
        for child in self.children:
            child.open(context)

    def next_batch(self) -> Batch | None:
        """The next output batch, or ``None`` once exhausted.

        When the context carries a tracer the call is timed (inclusive and
        self time, accumulated per operator for EXPLAIN ANALYZE and the
        trace export); the untraced path pays exactly one ``None`` test.
        """
        context = self._context
        if context is None:
            raise RuntimeError(
                f"{type(self).__name__}.next_batch() called before open()"
            )
        tracer = context.tracer
        if tracer is None:
            return self._next(context)
        started = tracer.op_enter()
        try:
            return self._next(context)
        finally:
            tracer.op_exit(
                self.node_id if self.node_id is not None else -1,
                type(self).__name__,
                started,
            )

    def close(self) -> None:
        """Release per-execution state (recursively)."""
        for child in self.children:
            child.close()
        self._context = None

    # ------------------------------------------------------------------ #
    # Subclass contract
    # ------------------------------------------------------------------ #
    def _next(self, context: ExecContext) -> Batch | None:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Observation helpers
    # ------------------------------------------------------------------ #
    def record_rows(self, context: ExecContext, rows_in: int, rows_out: int) -> None:
        """Record actual rows in/out for this operator (feedback runs only)."""
        if context.collect_feedback and self.node_id is not None:
            context.metrics.record_operator(self.node_id, rows_in, rows_out)

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def drain(self) -> list[Batch]:
        """Pull every remaining batch (the operator must be open)."""
        batches: list[Batch] = []
        while True:
            batch = self.next_batch()
            if batch is None:
                return batches
            batches.append(batch)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(children={len(self.children)})"

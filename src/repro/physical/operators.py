"""Physical operators: the batched execution layer all three models share.

Each class here implements the :class:`~repro.physical.base.PhysicalOperator`
``open()/next_batch()/close()`` contract around one execution-model kernel
(the whole-relation operators of :mod:`repro.baseline.operators`,
:mod:`repro.core.operators` and :mod:`repro.bypass.operators`).  The layer
adds three things the bare kernels do not have:

* **a uniform shape** — every plan, whatever the model, compiles to one tree
  of physical operators rooted at an operator that emits
  :class:`~repro.engine.result.OutputColumns` batches;
* **partition awareness** — scans accept a
  :class:`~repro.storage.table.TablePartition` and emit only that row range,
  which is how the morsel driver parallelizes a plan;
* **streaming filters / probe sides** — filters and join probe inputs process
  one batch at a time, while join build sides and union/projection roots
  drain and merge their inputs (the kernels build one hash table per join).
"""

from __future__ import annotations

import numpy as np

from repro.baseline.operators import FilterOperator, HashJoinOperator, UnionOperator
from repro.baseline.relation import Relation
from repro.bypass.operators import (
    BypassFilterOperator,
    BypassJoinOperator,
    BypassProjectOperator,
)
from repro.bypass.streams import BypassStream, StreamSet
from repro.core.operators import (
    TaggedFilterOperator,
    TaggedJoinOperator,
    TaggedProjectOperator,
)
from repro.core.tagged_relation import TaggedRelation
from repro.core.tagmap import ProjectionTagSet
from repro.core.tags import Tag
from repro.engine.metrics import ExecContext
from repro.engine.result import OutputColumns, materialize_output
from repro.physical.base import PhysicalOperator
from repro.physical.batches import merge_batches
from repro.storage.bitmap import Bitmap
from repro.storage.table import Table, TablePartition, owned_page_range


def _scan_indices(table: Table, partition: TablePartition | None) -> np.ndarray:
    if partition is None:
        return np.arange(table.num_rows, dtype=np.int64)
    return partition.positions()


def live_rows(batch) -> int:
    """Live tuples in a batch, across the three batch representations.

    Tagged relations never physically drop rows, so their live count is the
    total over slice bitmaps; plain relations and bypass stream sets count
    materialized rows; the root's OutputColumns counts result rows.  Used by
    the per-operator actual-row counters behind ``--explain-analyze``.
    """
    if batch is None:
        return 0
    if isinstance(batch, TaggedRelation):
        return int(batch.total_tuples())
    if isinstance(batch, StreamSet):
        return int(sum(stream.num_rows for stream in batch))
    if isinstance(batch, OutputColumns):
        return int(batch.row_count)
    return int(batch.num_rows)


# --------------------------------------------------------------------------- #
# Scans
# --------------------------------------------------------------------------- #
class ScanPhysical(PhysicalOperator):
    """Base-table scan emitting one batch over the (partitioned) row range.

    ``kind`` selects the batch representation: ``"traditional"`` emits a
    plain :class:`Relation`, ``"tagged"`` a single-slice
    :class:`TaggedRelation`, ``"bypass"`` a single-stream :class:`StreamSet`.

    ``candidates`` optionally restricts the scan to an access-path candidate
    bitmap (zone-map / index pruning, see :mod:`repro.access`): only set
    positions inside the scan's row range are emitted, so pages holding no
    candidate row are never touched by downstream reads.  The bitmap is a
    sound superset of the rows satisfying the query's implied predicate for
    this alias, which keeps results byte-identical to an unpruned scan.
    """

    def __init__(
        self,
        kind: str,
        alias: str,
        table: Table,
        partition: TablePartition | None = None,
        node_id: int | None = None,
        candidates: Bitmap | None = None,
    ) -> None:
        super().__init__(node_id=node_id)
        if kind not in ("traditional", "tagged", "bypass"):
            raise ValueError(f"unknown execution kind {kind!r}")
        if candidates is not None and candidates.size != table.num_rows:
            raise ValueError(
                f"candidate bitmap size {candidates.size} does not match table "
                f"{table.name!r} with {table.num_rows} rows"
            )
        self.kind = kind
        self.alias = alias
        self.table = table
        self.partition = partition
        self.candidates = candidates
        self._done = False

    def open(self, context: ExecContext) -> None:
        super().open(context)
        self._done = False

    def _pruned_indices(self, context: ExecContext) -> np.ndarray:
        """Candidate row positions of the scan range, with pruning accounted.

        Page accounting attributes each page to the range containing its
        *first* row, so per-morsel counts sum exactly to the table's page
        count — a page straddling a partition boundary is never counted
        twice (``partitions=1`` is exact; boundary pages kept by a
        neighboring morsel may still be reported pruned by their owner).
        """
        if self.partition is None:
            start, stop = 0, self.table.num_rows
        else:
            start, stop = self.partition.start, self.partition.stop
        if self.candidates is None:
            # Logically deleted rows are filtered here, at the bottom of
            # every execution model — pruning and access paths may be off,
            # but a deleted row must never surface.
            return self.table.live_positions_in(_scan_indices(self.table, self.partition))
        indices = self.table.live_positions_in(
            np.flatnonzero(self.candidates.mask[start:stop]) + start
        )
        page_size = self.table.page_size
        first_page, end_page = owned_page_range(start, stop, page_size)
        if end_page > first_page:
            pages = np.unique(indices // page_size) if indices.size else indices
            pages_kept = int(((pages >= first_page) & (pages < end_page)).sum())
            context.metrics.record_scan_pruning(
                self.node_id, end_page - first_page, end_page - first_page - pages_kept
            )
        return indices

    def _next(self, context: ExecContext):
        if self._done:
            return None
        self._done = True
        indices = self._pruned_indices(context)
        context.metrics.operators_executed += 1
        self.record_rows(context, int(indices.size), int(indices.size))
        if self.kind == "tagged":
            return TaggedRelation(
                {self.alias: self.table},
                {self.alias: indices},
                {Tag.empty(): Bitmap.full(int(indices.size))},
            )
        relation = Relation({self.alias: self.table}, {self.alias: indices})
        context.metrics.tuples_materialized += relation.num_rows
        if self.kind == "bypass":
            context.metrics.streams_created += 1
            return StreamSet([BypassStream(Tag.empty(), relation)])
        return relation


# --------------------------------------------------------------------------- #
# Filters (streaming: one output batch per input batch)
# --------------------------------------------------------------------------- #
class FilterPhysical(PhysicalOperator):
    """Streaming filter around one of the three model filter kernels."""

    def __init__(
        self, kernel, child: PhysicalOperator, node_id: int | None = None
    ) -> None:
        super().__init__([child], node_id=node_id)
        self.kernel = kernel

    def _next(self, context: ExecContext):
        batch = self.children[0].next_batch()
        if batch is None:
            return None
        output = self.kernel.execute(batch, context)
        if context.collect_feedback:
            self.record_rows(context, live_rows(batch), live_rows(output))
        return output


# --------------------------------------------------------------------------- #
# Joins (build side drained and merged, probe side streamed)
# --------------------------------------------------------------------------- #
class JoinPhysical(PhysicalOperator):
    """Hash join: drains the build (left) child, streams the probe child."""

    def __init__(
        self,
        kernel,
        build: PhysicalOperator,
        probe: PhysicalOperator,
        node_id: int | None = None,
    ) -> None:
        super().__init__([build, probe], node_id=node_id)
        self.kernel = kernel
        self._build_batch = None

    def open(self, context: ExecContext) -> None:
        super().open(context)
        self._build_batch = None

    def close(self) -> None:
        super().close()
        self._build_batch = None

    def _next(self, context: ExecContext):
        if self._build_batch is None:
            build_batches = self.children[0].drain()
            if not build_batches:
                return None
            self._build_batch = merge_batches(build_batches)
            if context.collect_feedback:
                self.record_rows(context, live_rows(self._build_batch), 0)
        probe_batch = self.children[1].next_batch()
        if probe_batch is None:
            return None
        output = self.kernel.execute(self._build_batch, probe_batch, context)
        if context.collect_feedback:
            self.record_rows(context, live_rows(probe_batch), live_rows(output))
        return output


# --------------------------------------------------------------------------- #
# Roots (emit OutputColumns)
# --------------------------------------------------------------------------- #
class TaggedProjectPhysical(PhysicalOperator):
    """Tagged projection root: tag-based selection, then materialization."""

    def __init__(
        self,
        child: PhysicalOperator,
        projection: ProjectionTagSet | None,
        residual_predicate,
        columns: list,
        node_id: int | None = None,
    ) -> None:
        super().__init__([child], node_id=node_id)
        self.projection = projection
        self.residual_predicate = residual_predicate
        self.columns = list(columns or [])

    def _next(self, context: ExecContext):
        relation = self.children[0].next_batch()
        if relation is None:
            return None
        projection = self.projection or ProjectionTagSet(allowed=set(relation.slices))
        kernel = TaggedProjectOperator(
            projection, residual_predicate=self.residual_predicate
        )
        positions = kernel.execute(relation, context)
        if context.collect_feedback:
            self.record_rows(context, live_rows(relation), int(positions.size))
        return materialize_output(
            relation.tables, relation.indices, positions, self.columns
        )


class TraditionalProjectPhysical(PhysicalOperator):
    """Traditional root: union the subplan pipelines, then materialize.

    Children are the subplan roots of a :class:`TraditionalPlan`.  Each child
    is drained fully (they are independent pipelines over the same partition)
    and BDisj's deduplicating union combines them, exactly as the serial
    executor always has.  Emits a single OutputColumns batch.
    """

    def __init__(
        self,
        children: list[PhysicalOperator],
        columns: list,
        needs_union: bool,
        node_id: int | None = None,
    ) -> None:
        super().__init__(children, node_id=node_id)
        self.columns = list(columns or [])
        self.needs_union = needs_union
        self._done = False

    def open(self, context: ExecContext) -> None:
        super().open(context)
        self._done = False

    def _next(self, context: ExecContext):
        if self._done:
            return None
        self._done = True
        relations = [merge_batches(child.drain()) for child in self.children]
        if len(relations) == 1 and not self.needs_union:
            final = relations[0]
        else:
            non_empty = [relation for relation in relations if relation.num_rows > 0]
            if not non_empty:
                final = relations[0]
            else:
                final = UnionOperator().execute(non_empty, context)
        positions = np.arange(final.num_rows, dtype=np.int64)
        context.metrics.output_rows += final.num_rows
        if context.collect_feedback:
            self.record_rows(
                context,
                sum(live_rows(relation) for relation in relations),
                int(final.num_rows),
            )
        return materialize_output(final.tables, final.indices, positions, self.columns)


class BypassProjectPhysical(PhysicalOperator):
    """Bypass root: accept/reject streams, concatenate, materialize."""

    def __init__(
        self,
        child: PhysicalOperator,
        predicate_tree,
        columns: list,
        three_valued: bool,
        node_id: int | None = None,
        alias_tables: dict | None = None,
    ) -> None:
        super().__init__([child], node_id=node_id)
        self.kernel = BypassProjectOperator(
            predicate_tree,
            columns,
            three_valued=three_valued,
            alias_tables=alias_tables,
        )

    def _next(self, context: ExecContext):
        streams = self.children[0].next_batch()
        if streams is None:
            return None
        output = self.kernel.execute(streams, context)
        if context.collect_feedback:
            self.record_rows(context, live_rows(streams), live_rows(output))
        return output


__all__ = [
    "BypassProjectPhysical",
    "live_rows",
    "FilterPhysical",
    "JoinPhysical",
    "ScanPhysical",
    "TaggedProjectPhysical",
    "TraditionalProjectPhysical",
    # Re-exported kernels, for callers building trees by hand.
    "BypassFilterOperator",
    "BypassJoinOperator",
    "FilterOperator",
    "HashJoinOperator",
    "TaggedFilterOperator",
    "TaggedJoinOperator",
]

"""Batch payloads: model-specific merge and the output-column merge.

The physical-operator contract is batched, so two situations require gluing
batches back together:

* a build-side join input that produced several batches must be merged into
  one relation before the hash table is built (a hash join cannot build
  incrementally over the existing whole-relation kernels);
* the morsel driver merges the per-partition root batches —
  :class:`~repro.engine.result.OutputColumns` — in partition order.

Merging is defined for every batch type and is order-preserving: the merged
batch holds the rows of the inputs in input order, which is what makes
parallel execution byte-identical to serial execution.
"""

from __future__ import annotations

import numpy as np

from repro.baseline.relation import Relation
from repro.bypass.streams import StreamSet
from repro.core.tagged_relation import TaggedRelation
from repro.engine.result import OutputColumns
from repro.storage.bitmap import Bitmap


def merge_relations(batches: list[Relation]) -> Relation:
    """Concatenate plain index relations (same alias set) in order."""
    if len(batches) == 1:
        return batches[0]
    tables = {}
    for batch in batches:
        tables.update(batch.tables)
    aliases = list(batches[0].indices)
    indices = {
        alias: np.concatenate([batch.indices[alias] for batch in batches])
        for alias in aliases
    }
    return Relation(tables, indices)


def merge_tagged_relations(batches: list[TaggedRelation]) -> TaggedRelation:
    """Concatenate tagged relations in order, offsetting slice bitmaps."""
    if len(batches) == 1:
        return batches[0]
    tables = {}
    for batch in batches:
        tables.update(batch.tables)
    aliases = list(batches[0].indices)
    indices = {
        alias: np.concatenate([batch.indices[alias] for batch in batches])
        for alias in aliases
    }
    total_rows = sum(batch.num_rows for batch in batches)
    masks: dict[object, np.ndarray] = {}
    offset = 0
    for batch in batches:
        for tag, bitmap in batch.slices.items():
            mask = masks.setdefault(tag, np.zeros(total_rows, dtype=np.bool_))
            mask[offset:offset + batch.num_rows] = bitmap.mask
        offset += batch.num_rows
    slices = {tag: Bitmap.from_mask(mask) for tag, mask in masks.items()}
    return TaggedRelation(tables, indices, slices)


def merge_stream_sets(batches: list[StreamSet]) -> StreamSet:
    """Merge stream sets; streams with equal tags are concatenated in order."""
    if len(batches) == 1:
        return batches[0]
    merged = StreamSet()
    for batch in batches:
        merged.extend(batch)
    return merged


def merge_batches(batches: list):
    """Merge a homogeneous list of batches; dispatches on the batch type."""
    if not batches:
        raise ValueError("cannot merge zero batches")
    first = batches[0]
    if isinstance(first, TaggedRelation):
        return merge_tagged_relations(batches)
    if isinstance(first, Relation):
        return merge_relations(batches)
    if isinstance(first, StreamSet):
        return merge_stream_sets(batches)
    if isinstance(first, OutputColumns):
        return merge_output_columns(batches)
    raise TypeError(f"unsupported batch type: {type(first).__name__}")


def merge_output_columns(batches: list[OutputColumns]) -> OutputColumns:
    """Concatenate output-column batches in order.

    Empty batches are skipped; when every batch is empty, the first one that
    still carries a column schema wins (a drained root that saw no input at
    all yields a schema-less empty, and downstream aggregation needs the
    names and dtypes from a sibling that kept them).
    """
    non_empty = [batch for batch in batches if batch.row_count > 0]
    if not non_empty:
        for batch in batches:
            if batch.names:
                return batch
        return batches[0] if batches else OutputColumns.empty()
    if len(non_empty) == 1:
        return non_empty[0]
    names = non_empty[0].names
    columns = []
    for position in range(len(names)):
        values = np.concatenate([batch.columns[position][0] for batch in non_empty])
        nulls = np.concatenate([batch.columns[position][1] for batch in non_empty])
        columns.append((values, nulls))
    return OutputColumns(
        names=list(names),
        columns=columns,
        row_count=sum(batch.row_count for batch in non_empty),
    )

"""Streams: the unit of data flow in the bypass execution model.

A :class:`BypassStream` couples a plain index relation with the truth
assignments (a :class:`~repro.core.tags.Tag`) its tuples are known to
satisfy.  Unlike a tagged relation — where all slices share one physical
relation and only bitmaps differ — every stream owns its own relation, so
routing a tuple into a different stream copies its index row.  That copying
is one of the overheads tagged execution removes, and keeping it here is what
makes the bypass model an honest comparator.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.baseline.relation import Relation
from repro.core.tags import Tag
from repro.storage.table import Table


class BypassStream:
    """One stream: a relation plus the assignments its tuples satisfy."""

    __slots__ = ("tag", "relation")

    def __init__(self, tag: Tag, relation: Relation) -> None:
        self.tag = tag
        self.relation = relation

    @property
    def num_rows(self) -> int:
        """Number of tuples currently in the stream."""
        return self.relation.num_rows

    @property
    def aliases(self) -> list[str]:
        """Base-table aliases joined into this stream."""
        return self.relation.aliases

    @classmethod
    def from_base_table(cls, alias: str, table: Table) -> "BypassStream":
        """The initial stream over every row of a base table (empty tag)."""
        return cls(Tag.empty(), Relation.from_base_table(alias, table))

    def take(self, positions: np.ndarray, tag: Tag) -> "BypassStream":
        """A new stream holding the rows at ``positions`` under ``tag``."""
        return BypassStream(tag, self.relation.take(positions))

    def __repr__(self) -> str:
        return f"BypassStream(tag={self.tag!r}, rows={self.num_rows})"


class StreamSet:
    """An ordered collection of streams flowing between bypass operators.

    Streams are pairwise disjoint by construction (filters partition their
    input, joins combine disjoint partitions), so collecting the final result
    is a plain concatenation — no union/deduplication operator is needed.
    Streams that end up with the same tag are merged, which keeps the number
    of streams bounded by the number of distinct (generalized) tags, exactly
    like the tag space of tagged execution.
    """

    def __init__(self, streams: Iterable[BypassStream] = ()) -> None:
        self._streams: list[BypassStream] = []
        for stream in streams:
            self.add(stream)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, stream: BypassStream) -> None:
        """Add a stream, merging it into an existing stream with the same tag."""
        if stream.num_rows == 0:
            return
        for position, existing in enumerate(self._streams):
            if existing.tag == stream.tag:
                self._streams[position] = _merge_streams(existing, stream)
                return
        self._streams.append(stream)

    def extend(self, streams: Iterable[BypassStream]) -> None:
        """Add several streams."""
        for stream in streams:
            self.add(stream)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_streams(self) -> int:
        """Number of (non-empty) streams."""
        return len(self._streams)

    @property
    def total_rows(self) -> int:
        """Total tuples across all streams."""
        return sum(stream.num_rows for stream in self._streams)

    def streams(self) -> list[BypassStream]:
        """The streams, in insertion order."""
        return list(self._streams)

    def tags(self) -> list[Tag]:
        """The tag of each stream, in insertion order."""
        return [stream.tag for stream in self._streams]

    def __iter__(self) -> Iterator[BypassStream]:
        return iter(self._streams)

    def __len__(self) -> int:
        return len(self._streams)

    def __bool__(self) -> bool:
        return bool(self._streams)

    def __repr__(self) -> str:
        return f"StreamSet(streams={self.num_streams}, rows={self.total_rows})"


def _merge_streams(first: BypassStream, second: BypassStream) -> BypassStream:
    """Concatenate two streams that carry the same tag."""
    if first.tag != second.tag:
        raise ValueError(
            f"cannot merge streams with different tags: {first.tag!r} vs {second.tag!r}"
        )
    merged_tables = {**first.relation.tables, **second.relation.tables}
    merged_indices = {
        alias: np.concatenate(
            [first.relation.indices[alias], second.relation.indices[alias]]
        )
        for alias in first.relation.indices
    }
    return BypassStream(first.tag, Relation(merged_tables, merged_indices))

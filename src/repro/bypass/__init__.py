"""Bypass execution model (related-work comparator).

The *bypass technique* (Kemper et al. 1994; Steinbrunn et al. 1995; Claussen
et al. 2000) is the closest prior art to tagged execution discussed in the
paper's Section 6.  Filter operators are augmented with a second, "false"
output stream; tuples whose predicate outcome already determines the overall
WHERE expression *bypass* the remaining (possibly expensive) operators.

This subpackage implements the technique faithfully enough to serve as a
third execution model next to the traditional and tagged ones:

* a **stream** is a plain (untagged) relation annotated with the truth
  assignments its tuples are known to satisfy (:mod:`repro.bypass.streams`);
* bypass **operators** split, join and collect streams
  (:mod:`repro.bypass.operators`);
* the bypass **planner** reuses the TPushdown plan shape — the bypass
  technique always pushes predicates down (:mod:`repro.bypass.planner`);
* the bypass **executor** interprets a logical plan over stream sets
  (:mod:`repro.bypass.executor`).

The crucial differences from tagged execution, which the paper calls out and
which the ablation benchmarks measure, are preserved:

1. every stream is a *separate* relation, so tuples are copied between
   streams instead of being re-labelled in bitmaps;
2. each filter evaluates its predicate once *per stream* rather than once
   over the union of matching slices;
3. each join builds one hash table *per pair of input streams* rather than a
   single shared table.
"""

from repro.bypass.executor import BypassExecutor
from repro.bypass.operators import (
    BypassFilterOperator,
    BypassJoinOperator,
    BypassProjectOperator,
    BypassScanOperator,
)
from repro.bypass.planner import BypassPlan, BypassPlanner
from repro.bypass.streams import BypassStream, StreamSet

__all__ = [
    "BypassExecutor",
    "BypassFilterOperator",
    "BypassJoinOperator",
    "BypassProjectOperator",
    "BypassScanOperator",
    "BypassPlan",
    "BypassPlanner",
    "BypassStream",
    "StreamSet",
]

"""Bypass planner.

The bypass technique, as described by Kemper et al. and its follow-ups,
always materializes the predicate evaluation into the plan: every base
predicate becomes a bypass filter pushed to its base table, and plans cannot
trade pushdown against pull-up the way tagged planners can (the paper's
Section 6 highlights exactly this limitation — bypass "only produces plans in
which predicates are all pushed down").  The plan *shape* is therefore the
same as TPushdown's; what changes is the execution semantics, which is the
job of :class:`~repro.bypass.executor.BypassExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.planner.base import PlannerContext
from repro.core.planner.pushdown import TPushdownPlanner
from repro.plan.logical import PlanNode, plan_to_string


@dataclass
class BypassPlan:
    """A planned bypass query: one pushdown-shaped logical plan."""

    planner_name: str
    plan: PlanNode

    def describe(self) -> str:
        """One-line summary used by reports."""
        return f"{self.planner_name}: bypass pushdown plan"

    def to_string(self) -> str:
        """Pretty-printed plan tree."""
        return plan_to_string(self.plan)


class BypassPlanner:
    """Produce the pushdown-shaped plan the bypass technique requires."""

    name = "bypass"

    def __init__(self, context: PlannerContext) -> None:
        self.context = context

    def plan(self) -> BypassPlan:
        """Build the bypass plan (TPushdown shape, bypass execution)."""
        logical_plan = TPushdownPlanner(self.context).build_plan()
        return BypassPlan(self.name, logical_plan)

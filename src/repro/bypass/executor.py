"""Physical execution of a logical plan under the bypass model."""

from __future__ import annotations

from repro.bypass.operators import (
    BypassFilterOperator,
    BypassJoinOperator,
    BypassProjectOperator,
    BypassScanOperator,
)
from repro.bypass.streams import StreamSet
from repro.core.predtree import PredicateTree
from repro.engine.metrics import ExecContext
from repro.engine.result import OutputColumns
from repro.plan.logical import FilterNode, JoinNode, PlanNode, ProjectNode, TableScanNode
from repro.storage.catalog import Catalog


class BypassExecutor:
    """Runs a pushdown-shaped logical plan with the bypass operators."""

    def __init__(
        self,
        catalog: Catalog,
        predicate_tree: PredicateTree | None,
        three_valued: bool = True,
    ) -> None:
        self._catalog = catalog
        self._tree = predicate_tree
        self._three_valued = three_valued

    def execute(self, plan: PlanNode, context: ExecContext) -> OutputColumns:
        """Execute ``plan`` and return the materialized output columns."""
        if not isinstance(plan, ProjectNode):
            raise ValueError("bypass plans must be rooted at a ProjectNode")
        streams = self._execute_node(plan.child, context)
        project = BypassProjectOperator(
            self._tree, plan.columns, three_valued=self._three_valued
        )
        return project.execute(streams, context)

    def _execute_node(self, node: PlanNode, context: ExecContext) -> StreamSet:
        if isinstance(node, TableScanNode):
            operator = BypassScanOperator(node.alias, self._catalog.get(node.table_name))
            return operator.execute(context)

        if isinstance(node, FilterNode):
            child = self._execute_node(node.child, context)
            operator = BypassFilterOperator(
                node.predicate, self._tree, three_valued=self._three_valued
            )
            return operator.execute(child, context)

        if isinstance(node, JoinNode):
            left = self._execute_node(node.left, context)
            right = self._execute_node(node.right, context)
            operator = BypassJoinOperator(node.conditions, self._tree)
            return operator.execute(left, right, context)

        if isinstance(node, ProjectNode):
            raise ValueError("nested ProjectNode encountered; plans must have a single root")

        raise TypeError(f"unknown plan node type: {type(node).__name__}")

"""Physical execution of a logical plan under the bypass model.

Like the tagged and traditional executors, :class:`BypassExecutor` is now a
thin entry point over the unified physical-operator layer
(:mod:`repro.physical`): it compiles the pushdown-shaped plan into a tree of
``open()/next_batch()/close()`` operators wrapping the bypass kernels and
runs it to completion.
"""

from __future__ import annotations

from repro.core.predtree import PredicateTree
from repro.engine.metrics import ExecContext
from repro.engine.result import OutputColumns
from repro.physical.compile import compile_plan
from repro.plan.logical import PlanNode
from repro.storage.catalog import Catalog


class BypassExecutor:
    """Runs a pushdown-shaped logical plan with the bypass operators."""

    def __init__(
        self,
        catalog: Catalog,
        predicate_tree: PredicateTree | None,
        three_valued: bool = True,
    ) -> None:
        self._catalog = catalog
        self._tree = predicate_tree
        self._three_valued = three_valued

    def execute(self, plan: PlanNode, context: ExecContext) -> OutputColumns:
        """Execute ``plan`` and return the materialized output columns."""
        physical = compile_plan(
            "bypass",
            plan,
            self._catalog,
            predicate_tree=self._tree,
            three_valued=self._three_valued,
        )
        return physical.execute(context)

"""Bypass operators: scan, filter (with true/false streams), join, project.

The operators mirror the traditional operators of :mod:`repro.baseline` but
work on :class:`~repro.bypass.streams.StreamSet` objects instead of single
relations.  Tags are used only at plan/operator level to decide which streams
may bypass an operator or be discarded outright; the data path itself is the
conventional one (copying index rows between streams, one hash table per
stream pair), which is precisely what separates the bypass technique from
tagged execution.
"""

from __future__ import annotations

import numpy as np

from repro.baseline.relation import Relation
from repro.bypass.streams import BypassStream, StreamSet
from repro.core.generalize import generalize_tag, refutes_root, satisfies_root
from repro.core.predtree import PredicateTree
from repro.core.tags import Tag
from repro.engine.metrics import ExecContext
from repro.engine.result import (
    OutputColumns,
    materialize_empty_output,
    materialize_output,
)
from repro.expr import three_valued as tv
from repro.expr.ast import BooleanExpr
from repro.physical.expressions import evaluate_predicate, read_join_keys
from repro.plan.query import JoinCondition
from repro.storage.table import Table
from repro.utils.join import equi_join_indices


class BypassScanOperator:
    """Produce the initial single-stream set over a base table."""

    def __init__(self, alias: str, table: Table) -> None:
        self.alias = alias
        self.table = table

    def execute(self, context: ExecContext) -> StreamSet:
        """Run the scan."""
        context.metrics.operators_executed += 1
        stream = BypassStream.from_base_table(self.alias, self.table)
        context.metrics.tuples_materialized += stream.num_rows
        context.metrics.streams_created += 1
        return StreamSet([stream])


class BypassFilterOperator:
    """Split each input stream into a "true" and a "false" output stream.

    Streams whose tag already satisfies the overall WHERE expression bypass
    the filter untouched; streams whose tag already determines this
    predicate's outcome (or whose instances are all dominated by an assigned
    ancestor) also pass through, because re-evaluating would not refine them.
    Output streams whose generalized tag refutes the root are dropped.
    """

    def __init__(
        self,
        predicate: BooleanExpr,
        tree: PredicateTree | None,
        three_valued: bool = True,
    ) -> None:
        self.predicate = predicate
        self.tree = tree
        self.three_valued = three_valued

    def execute(self, streams: StreamSet, context: ExecContext) -> StreamSet:
        """Run the filter over every stream that still needs it."""
        context.metrics.operators_executed += 1
        output = StreamSet()
        for stream in streams:
            if self._should_bypass(stream.tag):
                output.add(stream)
                continue
            self._split_stream(stream, output, context)
        context.metrics.streams_created += output.num_streams
        return output

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _should_bypass(self, tag: Tag) -> bool:
        if self.tree is None:
            return False
        if satisfies_root(self.tree, tag):
            return True
        predicate_key = self.predicate.key()
        if predicate_key in tag:
            return True
        assigned = set(tag.keys())
        if assigned and self.tree.every_instance_has_assigned_ancestor(predicate_key, assigned):
            return True
        return False

    def _split_stream(
        self, stream: BypassStream, output: StreamSet, context: ExecContext
    ) -> None:
        relation = stream.relation
        if relation.num_rows == 0:
            return
        truth = evaluate_predicate(
            self.predicate,
            relation.tables,
            relation.indices,
            context,
            description="bypass filter",
        )
        context.metrics.predicate_evaluations += 1
        context.metrics.predicate_rows_evaluated += relation.num_rows

        outcomes = [(tv.TRUE, np.flatnonzero(tv.is_true(truth)))]
        false_positions = np.flatnonzero(tv.is_false(truth))
        unknown_positions = np.flatnonzero(tv.is_unknown(truth))
        if self.three_valued:
            outcomes.append((tv.FALSE, false_positions))
            outcomes.append((tv.UNKNOWN, unknown_positions))
        else:
            outcomes.append(
                (tv.FALSE, np.sort(np.concatenate([false_positions, unknown_positions])))
            )

        predicate_key = self.predicate.key()
        for value, positions in outcomes:
            if positions.size == 0:
                continue
            tag = stream.tag.with_assignment(predicate_key, value)
            tag = self._generalize(tag)
            if tag is None:
                continue
            new_stream = stream.take(positions, tag)
            context.metrics.tuples_materialized += new_stream.num_rows
            output.add(new_stream)

    def _generalize(self, tag: Tag) -> Tag | None:
        if self.tree is None:
            return tag
        generalized = generalize_tag(self.tree, tag)
        if refutes_root(self.tree, generalized, include_unknown=True):
            return None
        return generalized


class BypassJoinOperator:
    """Equi-join of two stream sets, one hash join per stream pair."""

    def __init__(
        self,
        conditions: list[JoinCondition],
        tree: PredicateTree | None,
    ) -> None:
        if not conditions:
            raise ValueError("a bypass join requires at least one join condition")
        self.conditions = list(conditions)
        self.tree = tree

    def execute(
        self, left: StreamSet, right: StreamSet, context: ExecContext
    ) -> StreamSet:
        """Join every viable (left stream, right stream) pair."""
        context.metrics.operators_executed += 1
        output = StreamSet()
        for left_stream in left:
            for right_stream in right:
                combined = self._combine_tags(left_stream.tag, right_stream.tag)
                if combined is None:
                    continue
                joined = self._join_pair(left_stream, right_stream, combined, context)
                if joined is not None:
                    output.add(joined)
        context.metrics.streams_created += output.num_streams
        return output

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _combine_tags(self, left_tag: Tag, right_tag: Tag) -> Tag | None:
        try:
            combined = left_tag.union(right_tag)
        except ValueError:
            return None
        if self.tree is None:
            return combined
        generalized = generalize_tag(self.tree, combined)
        if refutes_root(self.tree, generalized, include_unknown=True):
            return None
        return generalized

    def _join_pair(
        self,
        left_stream: BypassStream,
        right_stream: BypassStream,
        tag: Tag,
        context: ExecContext,
    ) -> BypassStream | None:
        left_relation = left_stream.relation
        right_relation = right_stream.relation
        merged_tables = {**left_relation.tables, **right_relation.tables}
        if left_relation.num_rows == 0 or right_relation.num_rows == 0:
            return None

        # Each stream pair builds its own hash table: this is the per-pair
        # work the shared hash table of tagged execution amortizes away.
        context.metrics.hash_tables_built += 1
        context.metrics.join_build_rows += left_relation.num_rows
        context.metrics.join_probe_rows += right_relation.num_rows

        left_keys, right_keys = read_join_keys(
            self.conditions,
            left_relation.tables,
            left_relation.indices,
            right_relation.tables,
            right_relation.indices,
            context,
        )
        left_match, right_match = equi_join_indices(left_keys, right_keys)
        if left_match.size == 0:
            return None

        out_indices: dict[str, np.ndarray] = {}
        for alias in left_relation.indices:
            out_indices[alias] = left_relation.indices[alias][left_match]
        for alias in right_relation.indices:
            out_indices[alias] = right_relation.indices[alias][right_match]

        context.metrics.join_output_rows += int(left_match.size)
        context.metrics.tuples_materialized += int(left_match.size)
        return BypassStream(tag, Relation(merged_tables, out_indices))


class BypassProjectOperator:
    """Collect the accepted streams and materialize the output columns.

    Streams whose tag satisfies the root pass straight through.  Streams with
    an undetermined root assignment (possible when a predicate could not be
    pushed below the final project) are filtered with the residual WHERE
    expression.  Because streams are pairwise disjoint, the final result is a
    concatenation — the bypass model, like tagged execution, never needs the
    deduplicating union operator BDisj relies on.
    """

    def __init__(
        self,
        tree: PredicateTree | None,
        select: list,
        three_valued: bool = True,
        alias_tables: dict | None = None,
    ) -> None:
        self.tree = tree
        self.select = list(select or [])
        self.three_valued = three_valued
        #: alias -> base :class:`~repro.storage.table.Table`, supplied by the
        #: compiler so a zero-match execution still knows the output schema.
        self.alias_tables = dict(alias_tables) if alias_tables else None

    def execute(self, streams: StreamSet, context: ExecContext) -> OutputColumns:
        """Materialize the output columns of the accepted streams."""
        context.metrics.operators_executed += 1
        accepted: list[Relation] = []
        for stream in streams:
            relation = self._accept(stream, context)
            if relation is not None and relation.num_rows > 0:
                accepted.append(relation)

        if not accepted:
            # A zero-match execution must still emit the output schema:
            # downstream aggregation (COUNT = 0 / NULL extremes) and sharded
            # partial aggregation need the column names and dtypes.  The
            # compiler supplies the alias -> table map; when this operator
            # was built by hand without one, fall back to a rejected
            # stream's relation (which spans the full alias set at the
            # root), and only a schema-less empty when no stream arrived.
            if self.alias_tables is not None:
                return materialize_empty_output(
                    self.alias_tables, list(self.alias_tables), self.select
                )
            for stream in streams:
                return materialize_empty_output(
                    stream.relation.tables, stream.relation.indices, self.select
                )
            return OutputColumns.empty()

        merged_tables = {}
        for relation in accepted:
            merged_tables.update(relation.tables)
        aliases = sorted(accepted[0].indices)
        merged_indices = {
            alias: np.concatenate([relation.indices[alias] for relation in accepted])
            for alias in aliases
        }
        final = Relation(merged_tables, merged_indices)
        positions = np.arange(final.num_rows, dtype=np.int64)
        context.metrics.output_rows += final.num_rows
        return materialize_output(final.tables, final.indices, positions, self.select)

    def _accept(self, stream: BypassStream, context: ExecContext) -> Relation | None:
        if self.tree is None:
            return stream.relation
        if satisfies_root(self.tree, stream.tag):
            return stream.relation
        if refutes_root(self.tree, stream.tag, include_unknown=True):
            return None
        # Undetermined: fall back to evaluating the full residual predicate.
        relation = stream.relation
        truth = evaluate_predicate(
            self.tree.expression,
            relation.tables,
            relation.indices,
            context,
            description="residual",
        )
        context.metrics.residual_rows_evaluated += relation.num_rows
        keep = np.flatnonzero(tv.is_true(truth))
        if keep.size == 0:
            return None
        return relation.take(keep)

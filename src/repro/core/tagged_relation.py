"""Tagged relations.

Basilisk is column-oriented: intermediate relations hold *tuples of row
indices* into the base tables rather than values, and the relational slices
of a tagged relation are stored as a hash table of bitmaps keyed by tag
(Section 2.5.1).  Filters only rewrite bitmaps — rows are never physically
removed — and the actual values are reconstructed lazily by index lookups
when an operator needs them.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.core.tags import Tag
from repro.storage.bitmap import Bitmap
from repro.storage.table import Table


class TaggedRelation:
    """An index relation plus tag -> bitmap relational slices.

    Args:
        tables: mapping alias -> backing base table for every alias that has
            been joined into this relation.
        indices: mapping alias -> int64 row-index array; all arrays share the
            same length (the number of physical rows kept in the relation,
            including rows no longer referenced by any slice).
        slices: mapping tag -> bitmap selecting the rows of that relational
            slice.  Slices must be mutually exclusive.
    """

    def __init__(
        self,
        tables: Mapping[str, Table],
        indices: Mapping[str, np.ndarray],
        slices: Mapping[Tag, Bitmap],
    ) -> None:
        self.tables = dict(tables)
        self.indices = {alias: np.asarray(idx, dtype=np.int64) for alias, idx in indices.items()}
        lengths = {idx.shape[0] for idx in self.indices.values()}
        if len(lengths) > 1:
            raise ValueError(f"index arrays have differing lengths: {lengths}")
        self._num_rows = lengths.pop() if lengths else 0
        self.slices: dict[Tag, Bitmap] = {}
        for tag, bitmap in slices.items():
            if bitmap.size != self._num_rows:
                raise ValueError(
                    f"slice bitmap size {bitmap.size} does not match relation rows {self._num_rows}"
                )
            if not bitmap.is_empty():
                self.slices[tag] = bitmap

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_base_table(cls, alias: str, table: Table) -> "TaggedRelation":
        """Base tagged relation: all rows in one slice under the empty tag."""
        indices = {alias: np.arange(table.num_rows, dtype=np.int64)}
        slices = {Tag.empty(): Bitmap.full(table.num_rows)}
        return cls({alias: table}, indices, slices)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_rows(self) -> int:
        """Physical rows in the index relation (including dropped rows)."""
        return self._num_rows

    @property
    def aliases(self) -> list[str]:
        """Aliases joined into this relation."""
        return list(self.indices)

    def tags(self) -> list[Tag]:
        """Tags of the (non-empty) relational slices."""
        return list(self.slices)

    def slice_bitmap(self, tag: Tag) -> Bitmap:
        """Bitmap of the relational slice with ``tag`` (empty if absent)."""
        return self.slices.get(tag, Bitmap.empty(self._num_rows))

    def slice_cardinality(self, tag: Tag) -> int:
        """Number of tuples in the relational slice with ``tag``."""
        bitmap = self.slices.get(tag)
        return bitmap.count() if bitmap is not None else 0

    def active_bitmap(self) -> Bitmap:
        """Union of every slice's bitmap (the live rows of the relation)."""
        return Bitmap.union_all(self.slices.values(), size=self._num_rows)

    def total_tuples(self) -> int:
        """Total tuples across all relational slices."""
        return sum(bitmap.count() for bitmap in self.slices.values())

    def check_mutually_exclusive(self) -> bool:
        """Verify that no row belongs to more than one slice."""
        if not self.slices:
            return True
        counts = np.zeros(self._num_rows, dtype=np.int32)
        for bitmap in self.slices.values():
            counts += bitmap.mask.astype(np.int32)
        return bool((counts <= 1).all())

    def __repr__(self) -> str:
        return (
            f"TaggedRelation(aliases={self.aliases}, rows={self._num_rows}, "
            f"slices={len(self.slices)}, tuples={self.total_tuples()})"
        )

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def with_slices(self, slices: Mapping[Tag, Bitmap]) -> "TaggedRelation":
        """A new tagged relation sharing this one's index columns."""
        return TaggedRelation(self.tables, self.indices, slices)

    def materialize_rows(self, tag: Tag | None = None) -> list[dict[str, int]]:
        """Row-index tuples of one slice (or of every live row).

        Intended for tests and debugging; returns one dict per tuple mapping
        alias -> base-table row index.
        """
        bitmap = self.active_bitmap() if tag is None else self.slice_bitmap(tag)
        positions = bitmap.positions()
        return [
            {alias: int(self.indices[alias][position]) for alias in self.indices}
            for position in positions
        ]

"""Tagged execution: the paper's primary contribution.

* :mod:`repro.core.tags` — tags (sets of truth-value assignments to
  predicate subexpressions) and the tagged-relation slice abstraction.
* :mod:`repro.core.predtree` — normalized predicate trees with duplicate
  subexpression tracking.
* :mod:`repro.core.generalize` — Algorithm 1 (GeneralizeTag) including the
  three-valued-logic extension.
* :mod:`repro.core.tagged_relation` — tagged relations: index relations plus
  tag -> bitmap slices.
* :mod:`repro.core.tagmap` — tag-map construction per Section 3.3.
* :mod:`repro.core.operators` — tagged filter / join / projection operators.
* :mod:`repro.core.planner` — the tagged planners (TPushdown, TPullup,
  TIterPush, TPushConj, TCombined) plus cost models and the benefit score.
* :mod:`repro.core.factor` — common-subexpression factoring used by the
  Figure 3b evaluation setup.
"""

from repro.core.generalize import generalize_tag
from repro.core.predtree import PredicateTree
from repro.core.tagged_relation import TaggedRelation
from repro.core.tagmap import FilterTagMap, JoinTagMap, TagMapBuilder
from repro.core.tags import Tag

__all__ = [
    "FilterTagMap",
    "JoinTagMap",
    "PredicateTree",
    "Tag",
    "TagMapBuilder",
    "TaggedRelation",
    "generalize_tag",
]

"""Implication between base predicates on the same column.

The paper's worked example (Figure 1 / Section 2.2) relies on the planner
recognizing that ``t.year > 2000`` implies ``t.year > 1980`` and that
``mi_idx.score > 8.0`` implies ``mi_idx.score > 7.0``: the second filter on a
table skips slices whose tag already determines its outcome, and the join's
output tags generalize all the way to the root without any residual work.
Boolean propagation alone (Algorithm 1) cannot see this — it is value-level
reasoning about comparison predicates — so this module provides a small,
conservative implication checker used by tag generalization and tag-map
construction.

Everything here is *sound but incomplete*: ``implies``/``refutes`` only
return True when the implication provably holds for comparisons, BETWEEN and
IN predicates over the same single column; in all other cases they return
False and the engine simply falls back to evaluating the predicate.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.expr.ast import (
    BetweenPredicate,
    BooleanExpr,
    ColumnRef,
    Comparison,
    InPredicate,
    Literal,
)
from repro.expr.three_valued import FALSE, TRUE, TruthValue

#: Comparison operator obtained by logically negating each operator.
_NEGATED_OP = {">": "<=", ">=": "<", "<": ">=", "<=": ">", "=": "!=", "!=": "="}


def _column_and_literal(expr: BooleanExpr) -> tuple[str, str, object] | None:
    """Decompose a comparison ``column <op> literal`` into (column key, op, value)."""
    if isinstance(expr, Comparison):
        if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
            return expr.left.key(), expr.op, expr.right.value
        if isinstance(expr.right, ColumnRef) and isinstance(expr.left, Literal):
            flipped = {">": "<", ">=": "<=", "<": ">", "<=": ">=", "=": "=", "!=": "!="}
            return expr.right.key(), flipped[expr.op], expr.left.value
    return None


def _comparable(a: object, b: object) -> bool:
    """Whether two literal values can be ordered against each other."""
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return True
    return isinstance(a, str) and isinstance(b, str)


def negate(expr: BooleanExpr) -> BooleanExpr | None:
    """The logical negation of a base comparison, when expressible."""
    if isinstance(expr, Comparison):
        return Comparison(expr.left, _NEGATED_OP[expr.op], expr.right)
    return None


def _value_satisfies(value: object, op: str, bound: object) -> bool:
    """Whether ``value <op> bound`` holds for concrete literals."""
    if op == ">":
        return value > bound
    if op == ">=":
        return value >= bound
    if op == "<":
        return value < bound
    if op == "<=":
        return value <= bound
    if op == "=":
        return value == bound
    if op == "!=":
        return value != bound
    raise ValueError(f"unknown operator {op!r}")


def _interval_implies(p_op: str, a: object, q_op: str, b: object) -> bool:
    """Does ``x <p_op> a`` imply ``x <q_op> b`` for every x?"""
    if p_op == "=":
        return _value_satisfies(a, q_op, b)
    if p_op == "!=":
        return q_op == "!=" and a == b
    if p_op in (">", ">="):
        strict = p_op == ">"
        if q_op == ">":
            return a > b or (strict and a >= b)
        if q_op == ">=":
            return a >= b
        if q_op == "!=":
            return b < a or (strict and b <= a)
        return False
    if p_op in ("<", "<="):
        strict = p_op == "<"
        if q_op == "<":
            return a < b or (strict and a <= b)
        if q_op == "<=":
            return a <= b
        if q_op == "!=":
            return b > a or (strict and b >= a)
        return False
    return False


def _predicate_values(expr: BooleanExpr) -> tuple[str, list[object]] | None:
    """For IN/equality predicates, the column key and the finite value set."""
    if isinstance(expr, InPredicate) and isinstance(expr.operand, ColumnRef):
        return expr.operand.key(), list(expr.values)
    decomposed = _column_and_literal(expr)
    if decomposed is not None and decomposed[1] == "=":
        return decomposed[0], [decomposed[2]]
    return None


def _predicate_interval(expr: BooleanExpr) -> tuple[str, str, object] | None:
    """For comparison-like predicates, the (column, op, bound) form."""
    decomposed = _column_and_literal(expr)
    if decomposed is not None:
        return decomposed
    return None


def implies(p: BooleanExpr, q: BooleanExpr) -> bool:
    """Conservatively decide whether ``p`` being TRUE forces ``q`` to be TRUE."""
    if p.key() == q.key():
        return True

    # BETWEEN on the left decomposes into two comparisons.
    if isinstance(p, BetweenPredicate) and isinstance(p.operand, ColumnRef):
        if isinstance(p.low, Literal) and isinstance(p.high, Literal):
            lower = Comparison(p.operand, ">=", p.low)
            upper = Comparison(p.operand, "<=", p.high)
            return implies(lower, q) or implies(upper, q)
        return False

    # Finite-value predicates (equality / IN): check every value against q.
    finite = _predicate_values(p)
    if finite is not None:
        column, values = finite
        q_interval = _predicate_interval(q)
        if q_interval is not None and q_interval[0] == column:
            _, q_op, bound = q_interval
            return all(
                _comparable(value, bound) and _value_satisfies(value, q_op, bound)
                for value in values
            )
        q_finite = _predicate_values(q)
        if q_finite is not None and q_finite[0] == column:
            return set(values) <= set(q_finite[1])
        return False

    p_interval = _predicate_interval(p)
    q_interval = _predicate_interval(q)
    if p_interval is None or q_interval is None:
        return False
    if p_interval[0] != q_interval[0]:
        return False
    _, p_op, a = p_interval
    _, q_op, b = q_interval
    if not _comparable(a, b):
        return False
    return _interval_implies(p_op, a, q_op, b)


def refutes(p: BooleanExpr, q: BooleanExpr) -> bool:
    """Conservatively decide whether ``p`` being TRUE forces ``q`` to be FALSE."""
    negated = negate(q)
    if negated is not None:
        return implies(p, negated)
    # q is not a plain comparison; handle finite-value q directly.
    q_finite = _predicate_values(q)
    p_finite = _predicate_values(p)
    if q_finite is not None and p_finite is not None and q_finite[0] == p_finite[0]:
        return not (set(p_finite[1]) & set(q_finite[1]))
    if q_finite is not None:
        p_interval = _predicate_interval(p)
        if p_interval is not None and p_interval[0] == q_finite[0]:
            _, p_op, a = p_interval
            # p's interval must exclude every value q allows.  Only decidable
            # here for equality-style p handled above; stay conservative.
            return False
    return False


def implied_truth_value(
    target: BooleanExpr,
    facts: Iterable[tuple[BooleanExpr, TruthValue]],
) -> TruthValue | None:
    """Truth value of ``target`` forced by the given facts, if any.

    ``facts`` are (base predicate, assigned truth value) pairs; FALSE facts
    contribute through their negations.  Returns None when nothing can be
    concluded.
    """
    for expr, value in facts:
        if value is TRUE:
            known = expr
        elif value is FALSE:
            known = negate(expr)
            if known is None:
                continue
        else:
            continue
        if implies(known, target):
            return TRUE
        if refutes(known, target):
            return FALSE
    return None

"""Benefit score for filter ordering (Appendix A, Algorithm 3).

The benefit score of a filter operator, with respect to a set of still
unapplied filter operators, estimates how many tuples applying it *first*
removes from the other filters' consideration: the "AND benefit"
``1 - selectivity`` accrues for unapplied filters below an AND parent, the
"OR benefit" ``selectivity`` for those below an OR parent.  *Benefiting
order* sorts filters by decreasing ``benefit / cost-factor``.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.predtree import PredicateTree
from repro.expr.ast import BooleanExpr


def benefit_score(
    tree: PredicateTree,
    to_score: BooleanExpr,
    unapplied: Sequence[BooleanExpr],
    selectivity: Callable[[BooleanExpr], float],
) -> float:
    """Benefit of applying ``to_score`` before the ``unapplied`` filters."""
    to_score_key = to_score.key()
    parents = tree.parents(to_score_key) if to_score_key in tree else []
    if not parents:
        return 0.0
    score_selectivity = selectivity(to_score)

    benefit = 0.0
    for other in unapplied:
        other_key = other.key()
        if other_key == to_score_key or other_key not in tree:
            continue
        is_and_descendant = True
        is_or_descendant = True
        for ancestor_path in tree.ancestor_paths(other_key):
            path_ids = {id(node) for node in ancestor_path}
            if all(id(parent) not in path_ids or parent.is_or for parent in parents):
                is_and_descendant = False
            if all(id(parent) not in path_ids or parent.is_and for parent in parents):
                is_or_descendant = False
        if is_and_descendant:
            benefit += 1.0 - score_selectivity
        if is_or_descendant:
            benefit += score_selectivity
    return benefit


def benefiting_order(
    tree: PredicateTree | None,
    filters: Sequence[BooleanExpr],
    estimates,
) -> list[BooleanExpr]:
    """Sort filters in decreasing ``benefit / cost-factor`` order.

    ``estimates`` is the query's
    :class:`~repro.optimizer.estimates.EstimateProvider` (anything exposing
    ``selectivity(expr)`` and ``cost_factor(expr)`` works, which the unit
    tests use for controlled scores).  Each filter is scored against the set
    of the *other* filters, matching the paper's use of the score as a proxy
    for plan cost.  Ties are broken by increasing selectivity (more
    selective first) and then by key for determinism.
    """
    selectivity = estimates.selectivity
    cost_factor = estimates.cost_factor
    filters = list(filters)
    if tree is None or len(filters) <= 1:
        return sorted(filters, key=lambda expr: (selectivity(expr), expr.key()))

    def sort_key(expr: BooleanExpr):
        others = [other for other in filters if other.key() != expr.key()]
        score = benefit_score(tree, expr, others, selectivity)
        factor = max(cost_factor(expr), 1e-9)
        return (-score / factor, selectivity(expr), expr.key())

    return sorted(filters, key=sort_key)

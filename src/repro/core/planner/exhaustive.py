"""TExhaustive: dynamic-programming join ordering under the tagged cost model.

The paper deliberately sticks to simple planners ("it is not the goal of this
work to produce the most advanced, optimal planner") and orders joins
greedily by estimated output cardinality.  This planner is the natural
extension the paper leaves open: a Selinger-style dynamic program that
enumerates every connected join subset (bushy trees included), keeps the
cheapest plan per alias set, and costs candidates with the full tagged cost
model (tag maps included) rather than only output cardinality.

Filter placement follows TPushdown (all base predicates pushed to their base
tables) — the DP explores join orders, which is where greedy ordering can go
wrong.  The planner is exponential in the number of joined tables and is
intended for the query sizes the paper evaluates (2-6 tables); TCombined does
not include it by default, but it is available as the ``texhaustive`` planner
name and in the planner-quality ablation benchmark.
"""

from __future__ import annotations

from itertools import combinations

from repro.core.planner.base import TaggedPlanner
from repro.expr.ast import BooleanExpr
from repro.plan.logical import JoinNode, PlanNode
from repro.plan.query import Query

#: Refuse to enumerate beyond this many tables (2^n subsets).
MAX_TABLES = 10


class TExhaustivePlanner(TaggedPlanner):
    """Exhaustive (DP) join ordering with TPushdown-style filter placement."""

    name = "texhaustive"

    def build_plan(self) -> PlanNode:
        context = self.context
        query = context.query
        if len(query.aliases) > MAX_TABLES:
            raise ValueError(
                f"texhaustive enumerates 2^n join subsets and refuses to run on "
                f"{len(query.aliases)} tables (maximum {MAX_TABLES})"
            )

        leaf_plans, multi_table = self._pushed_leaves()

        if len(query.aliases) == 1:
            joined: PlanNode = leaf_plans[query.aliases[0]]
        else:
            joined = self._dp_join_tree(query, leaf_plans)

        joined = self.stack_filters(joined, context.order_filters(multi_table))
        return self.finish(joined)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _pushed_leaves(self) -> tuple[dict[str, PlanNode], list[BooleanExpr]]:
        """Per-alias scan+filters fragments (TPushdown placement)."""
        context = self.context
        query = context.query
        per_alias: dict[str, list[BooleanExpr]] = {alias: [] for alias in query.aliases}
        multi_table: list[BooleanExpr] = []
        if context.predicate_tree is not None:
            for predicate in context.predicate_tree.base_predicates():
                alias = context.single_table_alias(predicate)
                if alias is not None and alias in per_alias:
                    per_alias[alias].append(predicate)
                else:
                    multi_table.append(predicate)

        leaf_plans = {}
        for alias in query.aliases:
            filters = context.order_filters(per_alias[alias])
            leaf_plans[alias] = self.stack_filters(self.scan_node(alias), filters)
        return leaf_plans, multi_table

    def _plan_cost(self, node: PlanNode) -> float:
        """Cost of a (sub)plan under the tagged cost model, tag maps included."""
        _annotations, cost = self.cost_plan(self.finish(node))
        return cost

    def _dp_join_tree(self, query: Query, leaf_plans: dict[str, PlanNode]) -> PlanNode:
        aliases = list(query.aliases)
        best: dict[frozenset[str], tuple[float, PlanNode]] = {}
        for alias in aliases:
            subset = frozenset({alias})
            best[subset] = (self._plan_cost(leaf_plans[alias]), leaf_plans[alias])

        for size in range(2, len(aliases) + 1):
            for subset_tuple in combinations(aliases, size):
                subset = frozenset(subset_tuple)
                candidate: tuple[float, PlanNode] | None = None
                for left in self._proper_subsets(subset):
                    right = subset - left
                    if left not in best or right not in best:
                        continue
                    conditions = query.conditions_between(left, right)
                    if not conditions:
                        continue
                    joined = JoinNode(best[left][1], best[right][1], conditions)
                    cost = self._plan_cost(joined)
                    if candidate is None or cost < candidate[0]:
                        candidate = (cost, joined)
                if candidate is not None:
                    best[subset] = candidate

        full = frozenset(aliases)
        if full not in best:
            raise ValueError("join graph is disconnected; cannot build a complete join tree")
        return best[full][1]

    @staticmethod
    def _proper_subsets(subset: frozenset[str]):
        """Non-empty proper subsets, each yielded once (its complement is implied)."""
        items = sorted(subset)
        anchor = items[0]
        rest = items[1:]
        for size in range(0, len(rest) + 1):
            for chosen in combinations(rest, size):
                left = frozenset({anchor, *chosen})
                if left != subset:
                    yield left

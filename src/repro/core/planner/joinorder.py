"""Greedy join ordering.

All planners in the paper — tagged and traditional alike — order joins
greedily: at every step, the join whose estimated output cardinality is
smallest is performed next (Section 4.2).  The input is one plan fragment per
alias (a scan, possibly wrapped in pushed-down filters) together with its
estimated surviving row count; the output is a join tree covering every
alias.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plan.logical import JoinNode, PlanNode
from repro.plan.query import Query


@dataclass
class _Component:
    """A connected fragment of the join graph built so far."""

    aliases: frozenset[str]
    plan: PlanNode
    estimated_rows: float


def greedy_join_tree(
    query: Query,
    leaf_plans: dict[str, PlanNode],
    estimated_rows: dict[str, float],
    estimates,
) -> PlanNode:
    """Build a join tree over ``leaf_plans`` by greedy smallest-output joins.

    Raises ValueError if the join graph does not connect every alias (cross
    products are not supported, mirroring Basilisk).
    """
    components = [
        _Component(frozenset({alias}), plan, max(estimated_rows.get(alias, 1.0), 1.0))
        for alias, plan in leaf_plans.items()
    ]
    if not components:
        raise ValueError("greedy_join_tree requires at least one input")

    while len(components) > 1:
        best: tuple[float, int, int, list] | None = None
        for i in range(len(components)):
            for j in range(i + 1, len(components)):
                conditions = query.conditions_between(
                    components[i].aliases, components[j].aliases
                )
                if not conditions:
                    continue
                output_rows = estimates.join_rows_multi(
                    components[i].estimated_rows,
                    components[j].estimated_rows,
                    conditions,
                )
                if best is None or output_rows < best[0]:
                    best = (output_rows, i, j, conditions)
        if best is None:
            missing = [sorted(component.aliases) for component in components]
            raise ValueError(
                f"join graph is disconnected; cannot connect components {missing}"
            )
        output_rows, i, j, conditions = best
        left, right = components[i], components[j]
        merged = _Component(
            left.aliases | right.aliases,
            JoinNode(left.plan, right.plan, conditions),
            max(output_rows, 1.0),
        )
        components = [
            component
            for index, component in enumerate(components)
            if index not in (i, j)
        ]
        components.append(merged)

    return components[0].plan

"""TPullup: pull filters up out of the TPushdown plan when cheaper (Algorithm 2).

TPushdown is the base plan.  Every filter is then considered, in reverse
benefiting order, for being pulled up one node at a time; whenever the
resulting plan is estimated to be cheaper it becomes the new base plan.  The
planner is useful when some predicate subexpressions are so selective that
delaying other, expensive predicates (regex matching, say) until after the
joins is a win.
"""

from __future__ import annotations

from repro.core.planner.base import TaggedPlanner
from repro.core.planner.pushdown import TPushdownPlanner
from repro.plan.logical import (
    FilterNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    TableScanNode,
)


def pullup_once(plan: PlanNode, predicate_key: str) -> PlanNode | None:
    """Move the (first) filter with ``predicate_key`` one node upwards.

    Pulling up past another filter swaps the two; pulling up past a join
    moves the filter above the join.  Returns the rewritten plan, or None
    when the filter cannot be pulled up any further (it sits directly below
    the projection root, or it does not occur in the plan).  The predicate is
    never dropped — a plan rewrite either keeps every filter or fails.
    """
    moved = False

    def is_target(node: PlanNode) -> bool:
        return isinstance(node, FilterNode) and node.predicate.key() == predicate_key

    def rebuild(node: PlanNode) -> PlanNode:
        nonlocal moved
        if isinstance(node, TableScanNode):
            return TableScanNode(node.alias, node.table_name)
        if isinstance(node, FilterNode):
            child = node.child
            if not moved and is_target(child):
                # Swap this filter with the target directly below it.
                moved = True
                assert isinstance(child, FilterNode)
                return FilterNode(
                    child.predicate, FilterNode(node.predicate, rebuild(child.child))
                )
            return FilterNode(node.predicate, rebuild(child))
        if isinstance(node, JoinNode):
            lifted = None
            new_children = []
            for child in (node.left, node.right):
                if not moved and is_target(child):
                    moved = True
                    assert isinstance(child, FilterNode)
                    lifted = child.predicate
                    new_children.append(rebuild(child.child))
                else:
                    new_children.append(rebuild(child))
            rebuilt: PlanNode = JoinNode(new_children[0], new_children[1], node.conditions)
            if lifted is not None:
                rebuilt = FilterNode(lifted, rebuilt)
            return rebuilt
        if isinstance(node, ProjectNode):
            # A filter directly below the projection root cannot go any higher.
            return ProjectNode(rebuild(node.child), node.columns)
        raise TypeError(f"unknown plan node type: {type(node).__name__}")

    result = rebuild(plan)
    return result if moved else None


def pullup_to_next_join(plan: PlanNode, predicate_key: str) -> PlanNode | None:
    """Pull a filter up until it has just crossed the next join above it.

    Pulling a filter past the other filters stacked on top of it never changes
    which slices reach the joins, so intermediate positions are not worth
    costing; the paper's Section 5.2 discussion suggests exactly this
    optimization ("pulls filter nodes up to the next join juncture") to tame
    TPullup's planning time.  Returns None when the filter is already above
    every join it can cross (or absent).
    """
    candidate = pullup_once(plan, predicate_key)
    crossed_join = False
    while candidate is not None:
        # Did the last step move it above a join?  The filter now has a join
        # as its direct child exactly when it has just crossed one.
        for node in candidate.walk():
            if (
                isinstance(node, FilterNode)
                and node.predicate.key() == predicate_key
                and isinstance(node.child, JoinNode)
            ):
                crossed_join = True
                break
        if crossed_join:
            return candidate
        next_candidate = pullup_once(candidate, predicate_key)
        if next_candidate is None:
            return None
        candidate = next_candidate
    return None


class TPullupPlanner(TaggedPlanner):
    """Algorithm 2: iteratively pull filters up while the plan gets cheaper.

    Filters are pulled one *join juncture* at a time (rather than one plan
    node at a time): positions between two filters in the same stack are
    equivalent for the tagged cost model, and skipping them keeps planning
    time linear in the number of joins instead of the plan depth — the
    optimization the paper recommends when discussing Figure 4c.
    """

    name = "tpullup"

    #: Safety bound on pull-up attempts per filter (one per join level).
    MAX_PULLUPS_PER_FILTER = 16

    def build_plan(self) -> PlanNode:
        context = self.context
        base_plan = TPushdownPlanner(context).build_plan()
        _annotations, best_cost = self.cost_plan(base_plan)
        best_plan = base_plan

        if context.predicate_tree is None:
            return best_plan

        filters = [
            node.predicate
            for node in best_plan.walk()
            if isinstance(node, FilterNode)
        ]
        deduplicated: dict[str, object] = {}
        for predicate in filters:
            deduplicated.setdefault(predicate.key(), predicate)
        ordered = context.order_filters(list(deduplicated.values()))

        for predicate in reversed(ordered):
            candidate = best_plan
            for _step in range(self.MAX_PULLUPS_PER_FILTER):
                candidate = pullup_to_next_join(candidate, predicate.key())
                if candidate is None:
                    break
                _annotations, candidate_cost = self.cost_plan(candidate)
                if candidate_cost < best_cost:
                    best_plan, best_cost = candidate, candidate_cost
        return best_plan

"""TPushdown: push every base predicate to its base table (Section 4.2)."""

from __future__ import annotations

from repro.core.planner.base import TaggedPlanner
from repro.core.planner.joinorder import greedy_join_tree
from repro.expr.ast import BooleanExpr
from repro.plan.logical import PlanNode


class TPushdownPlanner(TaggedPlanner):
    """Create a filter per base predicate and push it down to its table.

    Filters on the same table run in benefiting order; joins are ordered
    greedily by estimated output cardinality; base predicates that span more
    than one table (rare) run after the joins.
    """

    name = "tpushdown"

    def build_plan(self) -> PlanNode:
        context = self.context
        query = context.query

        per_alias: dict[str, list[BooleanExpr]] = {alias: [] for alias in query.aliases}
        multi_table: list[BooleanExpr] = []
        if context.predicate_tree is not None:
            for predicate in context.predicate_tree.base_predicates():
                alias = context.single_table_alias(predicate)
                if alias is not None and alias in per_alias:
                    per_alias[alias].append(predicate)
                else:
                    multi_table.append(predicate)

        leaf_plans: dict[str, PlanNode] = {}
        estimated_rows: dict[str, float] = {}
        for alias in query.aliases:
            filters = context.order_filters(per_alias[alias])
            leaf_plans[alias] = self.stack_filters(self.scan_node(alias), filters)
            estimated_rows[alias] = context.effective_alias_rows(
                alias, filters, disjunctive=True
            )

        if len(query.aliases) == 1:
            joined: PlanNode = leaf_plans[query.aliases[0]]
        else:
            joined = greedy_join_tree(query, leaf_plans, estimated_rows, context.estimates)

        remaining = context.order_filters(multi_table)
        joined = self.stack_filters(joined, remaining)
        return self.finish(joined)

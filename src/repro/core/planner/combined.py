"""TCombined: cost every tagged planner's plan and keep the cheapest.

This is the planner Basilisk runs by default (Section 4.2).  It also exposes
the per-candidate costs, which the evaluation harness uses both for
diagnostics and for the TMin oracle of Figure 3c (execute every candidate,
report the fastest).
"""

from __future__ import annotations

from repro.core.planner.base import PlannerContext, PlannerResult, TaggedPlanner
from repro.core.planner.iterpush import TIterPushPlanner
from repro.core.planner.pullup import TPullupPlanner
from repro.core.planner.pushconj import TPushConjPlanner
from repro.core.planner.pushdown import TPushdownPlanner
from repro.plan.logical import PlanNode


class TCombinedPlanner(TaggedPlanner):
    """Pick the cheapest of TPushdown, TPullup, TIterPush and TPushConj."""

    name = "tcombined"

    #: The candidate planners considered, in evaluation order.
    CANDIDATES = (TPushdownPlanner, TPullupPlanner, TIterPushPlanner, TPushConjPlanner)

    def __init__(self, context: PlannerContext) -> None:
        super().__init__(context)
        self.candidate_results: list[PlannerResult] = []

    def candidates(self) -> list[PlannerResult]:
        """Plan with every candidate planner (memoized)."""
        if not self.candidate_results:
            self.candidate_results = [
                planner_class(self.context).plan() for planner_class in self.CANDIDATES
            ]
        return self.candidate_results

    def build_plan(self) -> PlanNode:
        best = min(self.candidates(), key=lambda result: result.estimated_cost)
        return best.plan

    def plan(self) -> PlannerResult:
        best = min(self.candidates(), key=lambda result: result.estimated_cost)
        return PlannerResult(
            self.name,
            best.plan,
            best.annotations,
            best.estimated_cost,
            node_rows=dict(best.node_rows),
        )

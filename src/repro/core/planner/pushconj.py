"""TPushConj: the tagged mirror of a traditional conjunctive planner.

If the predicate tree's root is an AND node, root-clause children whose
predicates all reference a single table are pushed down to that table (as a
single complex filter); the remaining children are applied after all joins in
increasing order of selectivity.  Any other root shape gets no pushdown at
all.  TPushConj mainly serves as the overhead comparison point against
BPushConj (Figure 3d): the plans are identical, so the runtime difference is
the cost of the tag machinery itself.
"""

from __future__ import annotations

from repro.core.planner.base import TaggedPlanner
from repro.core.planner.joinorder import greedy_join_tree
from repro.expr.ast import BooleanExpr
from repro.plan.logical import PlanNode


def split_conjunctive_pushdown(
    predicate_root: BooleanExpr | None,
    aliases: list[str],
    is_and_root: bool,
) -> tuple[dict[str, list[BooleanExpr]], list[BooleanExpr]]:
    """Partition root clauses into per-alias pushable ones and the rest.

    Returns ``(per_alias_pushed, remaining)``.  Shared by TPushConj and the
    traditional BPushConj planner so the two produce identical plan shapes.
    """
    per_alias: dict[str, list[BooleanExpr]] = {alias: [] for alias in aliases}
    remaining: list[BooleanExpr] = []
    if predicate_root is None:
        return per_alias, remaining

    clauses = list(predicate_root.children()) if is_and_root else [predicate_root]
    for clause in clauses:
        clause_aliases = clause.tables()
        if len(clause_aliases) == 1:
            alias = next(iter(clause_aliases))
            if alias in per_alias:
                per_alias[alias].append(clause)
                continue
        remaining.append(clause)
    return per_alias, remaining


class TPushConjPlanner(TaggedPlanner):
    """Push single-table root conjuncts; everything else runs after the joins."""

    name = "tpushconj"

    def build_plan(self) -> PlanNode:
        context = self.context
        query = context.query
        tree = context.predicate_tree

        is_and_root = tree is not None and tree.root.is_and
        per_alias, remaining = split_conjunctive_pushdown(
            tree.expression if tree is not None else None, query.aliases, is_and_root
        )

        leaf_plans: dict[str, PlanNode] = {}
        estimated_rows: dict[str, float] = {}
        for alias in query.aliases:
            pushed = per_alias[alias]
            leaf_plans[alias] = self.stack_filters(self.scan_node(alias), pushed)
            estimated_rows[alias] = context.effective_alias_rows(
                alias, pushed, disjunctive=False
            )

        if len(query.aliases) == 1:
            joined: PlanNode = leaf_plans[query.aliases[0]]
        else:
            joined = greedy_join_tree(query, leaf_plans, estimated_rows, context.estimates)

        remaining_sorted = sorted(
            remaining, key=lambda expr: (context.estimates.selectivity(expr), expr.key())
        )
        # Most selective clause first means it must sit lowest in the stack.
        joined = self.stack_filters(joined, remaining_sorted)
        return self.finish(joined)

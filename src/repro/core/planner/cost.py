"""Cost models for tagged plans (Section 4.1).

The cost of a tagged plan is the sum of its operators' costs, where each
operator only pays for the relational slices its tag map touches:

* filter: ``alpha * sum over matching slices of F_P * |slice|``
* join:   hash-build + hash-lookup + index-build over the participating
  slices, with the output cardinality estimated PostgreSQL-style.

Per-slice cardinalities are estimated by walking the plan bottom-up with the
same tag maps the executor will use, multiplying slice sizes by measured
predicate selectivities under the independence assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tagmap import PlanTagAnnotations, TagMapBuilder
from repro.core.tags import Tag
from repro.expr.ast import BooleanExpr
from repro.plan.logical import FilterNode, JoinNode, PlanNode, ProjectNode, TableScanNode
from repro.plan.query import JoinCondition
from repro.stats.cardinality import CardinalityEstimator
from repro.stats.selectivity import SelectivityEstimator


@dataclass(frozen=True)
class CostParams:
    """Cost-model calibration constants.

    ``alpha`` calibrates filter costs against join costs; the ``f_*``
    constants are the per-row cost factors of the join components.
    """

    alpha: float = 1.0
    f_hash_lookup: float = 1.0
    f_hash_build: float = 2.0
    f_index_build: float = 1.0


@dataclass
class PlanCostBreakdown:
    """Total plan cost plus per-operator contributions."""

    total: float = 0.0
    filter_cost: float = 0.0
    join_cost: float = 0.0

    def add_filter(self, amount: float) -> None:
        self.filter_cost += amount
        self.total += amount

    def add_join(self, amount: float) -> None:
        self.join_cost += amount
        self.total += amount


def estimate_plan_cost(
    plan: PlanNode,
    annotations: PlanTagAnnotations,
    selectivity: SelectivityEstimator,
    cardinality: CardinalityEstimator,
    params: CostParams | None = None,
) -> PlanCostBreakdown:
    """Estimate the execution cost of a tagged plan.

    ``annotations`` must have been produced for exactly this plan (the tag
    maps are looked up by node id).
    """
    params = params or CostParams()
    breakdown = PlanCostBreakdown()
    _estimate_node(plan, annotations, selectivity, cardinality, params, breakdown)
    return breakdown


def _estimate_node(
    node: PlanNode,
    annotations: PlanTagAnnotations,
    selectivity: SelectivityEstimator,
    cardinality: CardinalityEstimator,
    params: CostParams,
    breakdown: PlanCostBreakdown,
) -> dict[Tag, float]:
    """Return estimated rows per output tag of ``node``."""
    if isinstance(node, TableScanNode):
        return {Tag.empty(): cardinality.base_rows(node.alias)}

    if isinstance(node, FilterNode):
        input_rows = _estimate_node(
            node.child, annotations, selectivity, cardinality, params, breakdown
        )
        return _estimate_filter(node, input_rows, annotations, selectivity, params, breakdown)

    if isinstance(node, JoinNode):
        left_rows = _estimate_node(
            node.left, annotations, selectivity, cardinality, params, breakdown
        )
        right_rows = _estimate_node(
            node.right, annotations, selectivity, cardinality, params, breakdown
        )
        return _estimate_join(
            node, left_rows, right_rows, annotations, cardinality, params, breakdown
        )

    if isinstance(node, ProjectNode):
        return _estimate_node(
            node.child, annotations, selectivity, cardinality, params, breakdown
        )

    raise TypeError(f"unknown plan node type: {type(node).__name__}")


def _estimate_filter(
    node: FilterNode,
    input_rows: dict[Tag, float],
    annotations: PlanTagAnnotations,
    selectivity: SelectivityEstimator,
    params: CostParams,
    breakdown: PlanCostBreakdown,
) -> dict[Tag, float]:
    tag_map = annotations.filter_maps.get(node.node_id)
    predicate = node.predicate
    predicate_selectivity = selectivity.selectivity(predicate)
    cost_factor = selectivity.cost_factor(predicate)

    output: dict[Tag, float] = {}

    def accumulate(tag: Tag, rows: float) -> None:
        output[tag] = output.get(tag, 0.0) + rows

    rows_evaluated = 0.0
    for in_tag, rows in input_rows.items():
        entry = tag_map.entries.get(in_tag) if tag_map is not None else None
        if entry is None:
            accumulate(in_tag, rows)
            continue
        rows_evaluated += rows
        if entry.pos_tag is not None:
            accumulate(entry.pos_tag, rows * predicate_selectivity)
        if entry.neg_tag is not None:
            accumulate(entry.neg_tag, rows * (1.0 - predicate_selectivity))
        # UNKNOWN outputs only materialize when the data has NULLs; they are
        # treated as negligible for costing.

    breakdown.add_filter(params.alpha * cost_factor * rows_evaluated)
    return output


def _estimate_join(
    node: JoinNode,
    left_rows: dict[Tag, float],
    right_rows: dict[Tag, float],
    annotations: PlanTagAnnotations,
    cardinality: CardinalityEstimator,
    params: CostParams,
    breakdown: PlanCostBreakdown,
) -> dict[Tag, float]:
    tag_map = annotations.join_maps.get(node.node_id)
    output: dict[Tag, float] = {}
    if tag_map is None or not tag_map.entries:
        return output

    participating_left = {tag for tag, _ in tag_map.entries} & set(left_rows)
    participating_right = {tag for _, tag in tag_map.entries} & set(right_rows)
    left_total = sum(left_rows[tag] for tag in participating_left)
    right_total = sum(right_rows[tag] for tag in participating_right)

    unique_left = _estimate_unique(left_total, node.conditions, cardinality, side="left")
    hash_build = params.f_hash_lookup * left_total + params.f_hash_build * unique_left
    hash_lookup = params.f_hash_lookup * right_total

    output_total = 0.0
    for (left_tag, right_tag), out_tag in tag_map.entries.items():
        if left_tag not in left_rows or right_tag not in right_rows:
            continue
        pair_output = cardinality.join_rows_multi(
            left_rows[left_tag], right_rows[right_tag], node.conditions
        )
        output[out_tag] = output.get(out_tag, 0.0) + pair_output
        output_total += pair_output

    index_build = params.f_index_build * output_total
    breakdown.add_join(hash_build + hash_lookup + index_build)
    return output


def _estimate_unique(
    rows: float,
    conditions: list[JoinCondition],
    cardinality: CardinalityEstimator,
    side: str,
) -> float:
    """Estimated number of distinct join keys among ``rows`` input rows."""
    if not conditions:
        return rows
    condition = conditions[0]
    ref = condition.left if side == "left" else condition.right
    distinct = cardinality.distinct_values(ref.alias, ref.column)
    return min(rows, distinct)


def filter_expressions_in_plan(plan: PlanNode) -> list[BooleanExpr]:
    """Distinct filter predicates appearing in a plan (helper for planners)."""
    seen: dict[str, BooleanExpr] = {}
    for node in plan.walk():
        if isinstance(node, FilterNode):
            seen.setdefault(node.predicate.key(), node.predicate)
    return list(seen.values())

"""Cost models for tagged plans (Section 4.1).

The cost of a tagged plan is the sum of its operators' costs, where each
operator only pays for the relational slices its tag map touches:

* filter: ``alpha * sum over matching slices of F_P * |slice|``
* join:   hash-build + hash-lookup + index-build over the participating
  slices, with the output cardinality estimated PostgreSQL-style.

Per-slice cardinalities are estimated by walking the plan bottom-up with the
same tag maps the executor will use, multiplying slice sizes by predicate
selectivities under the independence assumption.  Every number comes from a
single :class:`~repro.optimizer.estimates.EstimateProvider` — the unified
estimation layer all planners share — so feedback-corrected selectivities
flow into costing without any changes here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tagmap import PlanTagAnnotations
from repro.core.tags import Tag
from repro.expr.ast import BooleanExpr
from repro.plan.logical import FilterNode, JoinNode, PlanNode, ProjectNode, TableScanNode
from repro.plan.query import JoinCondition


@dataclass(frozen=True)
class CostParams:
    """Cost-model calibration constants.

    ``alpha`` calibrates filter costs against join costs; the ``f_*``
    constants are the per-row cost factors of the join components.
    ``f_page_io`` weighs the per-leaf scan I/O term (estimated pages touched
    under the chosen access path — full, zone-pruned or index scan).  Every
    candidate plan for one query scans the same aliases, so the term shifts
    plan costs uniformly within a planner's search and only differentiates
    *access paths*, never join orders.
    """

    alpha: float = 1.0
    f_hash_lookup: float = 1.0
    f_hash_build: float = 2.0
    f_index_build: float = 1.0
    f_page_io: float = 1.0


@dataclass
class PlanCostBreakdown:
    """Total plan cost plus per-operator contributions.

    ``node_rows`` maps each plan node id to its estimated output rows
    (summed over tags); the session stores it on prepared plans so
    ``--explain-analyze`` can line estimates up against actuals.
    """

    total: float = 0.0
    filter_cost: float = 0.0
    join_cost: float = 0.0
    scan_cost: float = 0.0
    node_rows: dict[int, float] = field(default_factory=dict)

    def add_filter(self, amount: float) -> None:
        self.filter_cost += amount
        self.total += amount

    def add_join(self, amount: float) -> None:
        self.join_cost += amount
        self.total += amount

    def add_scan(self, amount: float) -> None:
        self.scan_cost += amount
        self.total += amount


def estimate_plan_cost(
    plan: PlanNode,
    annotations: PlanTagAnnotations,
    estimates,
    params: CostParams | None = None,
) -> PlanCostBreakdown:
    """Estimate the execution cost of a tagged plan.

    ``annotations`` must have been produced for exactly this plan (the tag
    maps are looked up by node id).  ``estimates`` is the query's
    :class:`~repro.optimizer.estimates.EstimateProvider`; ``params``
    defaults to the provider's cost constants.
    """
    params = params or estimates.cost_params
    breakdown = PlanCostBreakdown()
    _estimate_node(plan, annotations, estimates, params, breakdown)
    return breakdown


def _estimate_node(
    node: PlanNode,
    annotations: PlanTagAnnotations,
    estimates,
    params: CostParams,
    breakdown: PlanCostBreakdown,
) -> dict[Tag, float]:
    """Return estimated rows per output tag of ``node``."""
    if isinstance(node, TableScanNode):
        output = {Tag.empty(): estimates.base_rows(node.alias)}
        # Per-leaf scan I/O under the chosen access path (full / zone-pruned
        # / index scan); providers without access-path awareness (test
        # doubles) simply contribute no scan term.
        scan_pages = getattr(estimates, "scan_pages", None)
        if scan_pages is not None:
            breakdown.add_scan(params.f_page_io * float(scan_pages(node.alias)))
    elif isinstance(node, FilterNode):
        input_rows = _estimate_node(
            node.child, annotations, estimates, params, breakdown
        )
        output = _estimate_filter(
            node, input_rows, annotations, estimates, params, breakdown
        )
    elif isinstance(node, JoinNode):
        left_rows = _estimate_node(node.left, annotations, estimates, params, breakdown)
        right_rows = _estimate_node(
            node.right, annotations, estimates, params, breakdown
        )
        output = _estimate_join(
            node, left_rows, right_rows, annotations, estimates, params, breakdown
        )
    elif isinstance(node, ProjectNode):
        output = _estimate_node(node.child, annotations, estimates, params, breakdown)
    else:
        raise TypeError(f"unknown plan node type: {type(node).__name__}")
    breakdown.node_rows[node.node_id] = sum(output.values())
    return output


def _estimate_filter(
    node: FilterNode,
    input_rows: dict[Tag, float],
    annotations: PlanTagAnnotations,
    estimates,
    params: CostParams,
    breakdown: PlanCostBreakdown,
) -> dict[Tag, float]:
    tag_map = annotations.filter_maps.get(node.node_id)
    predicate = node.predicate
    predicate_selectivity = estimates.selectivity(predicate)
    cost_factor = estimates.cost_factor(predicate)

    output: dict[Tag, float] = {}

    def accumulate(tag: Tag, rows: float) -> None:
        output[tag] = output.get(tag, 0.0) + rows

    rows_evaluated = 0.0
    for in_tag, rows in input_rows.items():
        entry = tag_map.entries.get(in_tag) if tag_map is not None else None
        if entry is None:
            accumulate(in_tag, rows)
            continue
        rows_evaluated += rows
        if entry.pos_tag is not None:
            accumulate(entry.pos_tag, rows * predicate_selectivity)
        if entry.neg_tag is not None:
            accumulate(entry.neg_tag, rows * (1.0 - predicate_selectivity))
        # UNKNOWN outputs only materialize when the data has NULLs; they are
        # treated as negligible for costing.

    breakdown.add_filter(params.alpha * cost_factor * rows_evaluated)
    return output


def _estimate_join(
    node: JoinNode,
    left_rows: dict[Tag, float],
    right_rows: dict[Tag, float],
    annotations: PlanTagAnnotations,
    estimates,
    params: CostParams,
    breakdown: PlanCostBreakdown,
) -> dict[Tag, float]:
    tag_map = annotations.join_maps.get(node.node_id)
    output: dict[Tag, float] = {}
    if tag_map is None or not tag_map.entries:
        return output

    participating_left = {tag for tag, _ in tag_map.entries} & set(left_rows)
    participating_right = {tag for _, tag in tag_map.entries} & set(right_rows)
    left_total = sum(left_rows[tag] for tag in participating_left)
    right_total = sum(right_rows[tag] for tag in participating_right)

    unique_left = _estimate_unique(left_total, node.conditions, estimates, side="left")
    hash_build = params.f_hash_lookup * left_total + params.f_hash_build * unique_left
    hash_lookup = params.f_hash_lookup * right_total

    output_total = 0.0
    for (left_tag, right_tag), out_tag in tag_map.entries.items():
        if left_tag not in left_rows or right_tag not in right_rows:
            continue
        pair_output = estimates.join_rows_multi(
            left_rows[left_tag], right_rows[right_tag], node.conditions
        )
        output[out_tag] = output.get(out_tag, 0.0) + pair_output
        output_total += pair_output

    index_build = params.f_index_build * output_total
    breakdown.add_join(hash_build + hash_lookup + index_build)
    return output


def _estimate_unique(
    rows: float,
    conditions: list[JoinCondition],
    estimates,
    side: str,
) -> float:
    """Estimated number of distinct join keys among ``rows`` input rows."""
    if not conditions:
        return rows
    condition = conditions[0]
    ref = condition.left if side == "left" else condition.right
    distinct = estimates.distinct_values(ref.alias, ref.column)
    return min(rows, distinct)


def filter_expressions_in_plan(plan: PlanNode) -> list[BooleanExpr]:
    """Distinct filter predicates appearing in a plan (helper for planners)."""
    seen: dict[str, BooleanExpr] = {}
    for node in plan.walk():
        if isinstance(node, FilterNode):
            seen.setdefault(node.predicate.key(), node.predicate)
    return list(seen.values())

"""Shared planner infrastructure.

:class:`PlannerContext` bundles everything a planner needs about one query:
the query itself, its predicate tree and a single
:class:`~repro.optimizer.estimates.EstimateProvider` supplying all planning
numbers (table statistics, per-expression selectivities, cost constants).
Planners never construct estimators themselves — the provider is built by
:func:`repro.optimizer.estimates.build_estimate_provider` and may carry
feedback-corrected selectivity overrides injected by the service layer.

:class:`TaggedPlanner` is the base class: subclasses implement
:meth:`TaggedPlanner.build_plan` and inherit costing and common plan-building
helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.planner.benefit import benefiting_order
from repro.core.planner.cost import CostParams, estimate_plan_cost
from repro.core.predtree import PredicateTree
from repro.core.tagmap import PlanTagAnnotations, TagMapBuilder
from repro.expr.ast import BooleanExpr
from repro.expr.builders import or_
from repro.plan.logical import FilterNode, PlanNode, ProjectNode, TableScanNode
from repro.plan.query import Query
from repro.stats.table_stats import TableStats
from repro.storage.catalog import Catalog

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.optimizer.estimates import EstimateProvider


@dataclass
class PlannerContext:
    """Everything a planner needs to know about one query."""

    query: Query
    catalog: Catalog
    estimates: "EstimateProvider"
    predicate_tree: PredicateTree | None
    three_valued: bool = True
    naive_tags: bool = False

    @property
    def table_stats(self) -> dict[str, TableStats]:
        """Per-table summary statistics (delegates to the estimate provider)."""
        return self.estimates.table_stats

    @property
    def cost_params(self) -> CostParams:
        """Cost-model constants (delegates to the estimate provider)."""
        return self.estimates.cost_params

    @classmethod
    def for_query(
        cls,
        query: Query,
        catalog: Catalog,
        cost_params: CostParams | None = None,
        three_valued: bool = True,
        naive_tags: bool = False,
        sample_size: int = 20_000,
        selectivity_mode: str = "measured",
        stats_provider=None,
        selectivity_overrides=None,
        access_manager=None,
    ) -> "PlannerContext":
        """Build the estimate provider and predicate tree for ``query``.

        All estimation knobs (``sample_size``, ``selectivity_mode``,
        ``stats_provider``, ``selectivity_overrides``, ``access_manager``)
        are forwarded to
        :func:`repro.optimizer.estimates.build_estimate_provider`; see there
        for their meaning.  ``selectivity_overrides`` is how the service
        layer injects runtime-observed selectivities when re-planning;
        ``access_manager`` is an opaque handle this package never inspects —
        access-path choices reach planners only through the provider.
        """
        # Imported lazily: the optimizer package imports the cost model from
        # this package, so a module-level import would be circular.
        from repro.optimizer.estimates import build_estimate_provider

        estimates = build_estimate_provider(
            query,
            catalog,
            cost_params=cost_params,
            sample_size=sample_size,
            selectivity_mode=selectivity_mode,
            stats_provider=stats_provider,
            selectivity_overrides=selectivity_overrides,
            access_manager=access_manager,
        )
        tree = PredicateTree(query.predicate) if query.predicate is not None else None
        return cls(
            query=query,
            catalog=catalog,
            estimates=estimates,
            predicate_tree=tree,
            three_valued=three_valued,
            naive_tags=naive_tags,
        )

    # ------------------------------------------------------------------ #
    # Helpers shared by the planners
    # ------------------------------------------------------------------ #
    def tag_map_builder(self) -> TagMapBuilder:
        """A tag-map builder configured for this query."""
        return TagMapBuilder(
            self.predicate_tree, naive=self.naive_tags, three_valued=self.three_valued
        )

    def single_table_alias(self, expr: BooleanExpr) -> str | None:
        """The single alias referenced by ``expr``, or None when it spans tables."""
        aliases = expr.tables()
        if len(aliases) == 1:
            return next(iter(aliases))
        return None

    def order_filters(self, filters: list[BooleanExpr]) -> list[BooleanExpr]:
        """Sort filters in benefiting order (Appendix A)."""
        return benefiting_order(self.predicate_tree, filters, self.estimates)

    def effective_alias_rows(
        self, alias: str, pushed: list[BooleanExpr], disjunctive: bool
    ) -> float:
        """Estimated rows of ``alias`` surviving its pushed filters.

        In tagged execution, pushing the predicates of a disjunctive query
        keeps every tuple that satisfies *any* of them (the others are
        dropped by precept (1)), so the surviving fraction is the selectivity
        of their disjunction; conjunctive pushes multiply selectivities.
        """
        base = self.estimates.base_rows(alias)
        if not pushed:
            return base
        if disjunctive and len(pushed) > 1:
            return base * self.estimates.selectivity(or_(*pushed))
        rows = base
        for predicate in pushed:
            rows *= self.estimates.selectivity(predicate)
        return rows


@dataclass
class PlannerResult:
    """A planned query: the logical plan, its tag maps and its estimated cost.

    ``node_rows`` carries the cost model's estimated output rows per plan
    node id (``--explain-analyze`` lines them up against observed rows).
    """

    planner_name: str
    plan: PlanNode
    annotations: PlanTagAnnotations
    estimated_cost: float
    node_rows: dict[int, float] = field(default_factory=dict)

    def describe(self) -> str:
        """One-line summary used by reports."""
        return f"{self.planner_name}: cost={self.estimated_cost:.1f}"


class TaggedPlanner:
    """Base class of tagged-execution planners."""

    name = "tagged"

    def __init__(self, context: PlannerContext) -> None:
        self.context = context

    # ------------------------------------------------------------------ #
    # Interface
    # ------------------------------------------------------------------ #
    def build_plan(self) -> PlanNode:
        """Return the logical plan chosen by this planner."""
        raise NotImplementedError

    def plan(self) -> PlannerResult:
        """Build the plan, its tag maps, its estimated cost and row counts."""
        logical_plan = self.build_plan()
        annotations, breakdown = self.cost_breakdown(logical_plan)
        return PlannerResult(
            self.name,
            logical_plan,
            annotations,
            breakdown.total,
            node_rows=dict(breakdown.node_rows),
        )

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def cost_breakdown(self, plan: PlanNode):
        """Tag maps + full cost breakdown for a candidate plan."""
        annotations = self.context.tag_map_builder().build(plan)
        breakdown = estimate_plan_cost(plan, annotations, self.context.estimates)
        return annotations, breakdown

    def cost_plan(self, plan: PlanNode) -> tuple[PlanTagAnnotations, float]:
        """Tag maps + estimated cost for a candidate plan."""
        annotations, breakdown = self.cost_breakdown(plan)
        return annotations, breakdown.total

    def scan_node(self, alias: str) -> TableScanNode:
        """A scan node for ``alias``."""
        return TableScanNode(alias, self.context.query.tables[alias])

    def stack_filters(self, node: PlanNode, filters: list[BooleanExpr]) -> PlanNode:
        """Wrap ``node`` in filter nodes, innermost first."""
        for predicate in filters:
            node = FilterNode(predicate, node)
        return node

    def finish(self, node: PlanNode) -> PlanNode:
        """Add the projection root."""
        return ProjectNode(node, self.context.query.select)

"""Shared planner infrastructure.

:class:`PlannerContext` bundles everything a planner needs about one query
(the query itself, its predicate tree, statistics and estimators).
:class:`TaggedPlanner` is the base class: subclasses implement
:meth:`TaggedPlanner.build_plan` and inherit costing and common plan-building
helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.planner.benefit import benefiting_order
from repro.core.planner.cost import CostParams, estimate_plan_cost
from repro.core.predtree import PredicateTree
from repro.core.tagmap import PlanTagAnnotations, TagMapBuilder
from repro.expr.ast import BooleanExpr
from repro.expr.builders import or_
from repro.plan.logical import FilterNode, PlanNode, ProjectNode, TableScanNode
from repro.plan.query import Query
from repro.stats.cardinality import CardinalityEstimator
from repro.stats.selectivity import SelectivityEstimator
from repro.stats.table_stats import TableStats, collect_table_stats
from repro.storage.catalog import Catalog


@dataclass
class PlannerContext:
    """Everything a planner needs to know about one query."""

    query: Query
    catalog: Catalog
    table_stats: dict[str, TableStats]
    selectivity: SelectivityEstimator
    cardinality: CardinalityEstimator
    predicate_tree: PredicateTree | None
    cost_params: CostParams = field(default_factory=CostParams)
    three_valued: bool = True
    naive_tags: bool = False

    @classmethod
    def for_query(
        cls,
        query: Query,
        catalog: Catalog,
        cost_params: CostParams | None = None,
        three_valued: bool = True,
        naive_tags: bool = False,
        sample_size: int = 20_000,
        selectivity_mode: str = "measured",
        stats_provider=None,
    ) -> "PlannerContext":
        """Collect statistics and estimators for ``query``.

        ``selectivity_mode`` selects how base-predicate selectivities are
        estimated: ``"measured"`` evaluates each predicate on a sample (the
        paper's approach), ``"histogram"`` answers simple numeric predicates
        from per-column equi-depth histograms.

        ``stats_provider`` optionally supplies the two cacheable (per-table,
        query-independent) ingredients of a context — ``table_stats(table)``
        summaries and ``sample_positions(table, sample_size, seed)`` sample
        draws — so a caller serving many queries (the service layer's stats
        cache) computes them once per catalog version instead of once per
        call.  When omitted, both are computed from scratch, which is
        byte-for-byte equivalent because stats collection and sampling are
        deterministic.
        """
        if stats_provider is not None:
            table_stats = {
                table_name: stats_provider.table_stats(catalog.get(table_name))
                for table_name in set(query.tables.values())
            }
            sample_provider = stats_provider.sample_positions
        else:
            table_stats = {
                table_name: collect_table_stats(catalog.get(table_name))
                for table_name in set(query.tables.values())
            }
            sample_provider = None
        if selectivity_mode == "measured":
            selectivity = SelectivityEstimator(
                catalog, query, sample_size=sample_size, sample_provider=sample_provider
            )
        elif selectivity_mode == "histogram":
            from repro.stats.histograms import HistogramSelectivityEstimator

            selectivity = HistogramSelectivityEstimator(
                catalog, query, sample_size=sample_size, sample_provider=sample_provider
            )
        else:
            raise ValueError(
                f"unknown selectivity_mode {selectivity_mode!r}; "
                "choose 'measured' or 'histogram'"
            )
        cardinality = CardinalityEstimator(query, table_stats, selectivity)
        tree = PredicateTree(query.predicate) if query.predicate is not None else None
        return cls(
            query=query,
            catalog=catalog,
            table_stats=table_stats,
            selectivity=selectivity,
            cardinality=cardinality,
            predicate_tree=tree,
            cost_params=cost_params or CostParams(),
            three_valued=three_valued,
            naive_tags=naive_tags,
        )

    # ------------------------------------------------------------------ #
    # Helpers shared by the planners
    # ------------------------------------------------------------------ #
    def tag_map_builder(self) -> TagMapBuilder:
        """A tag-map builder configured for this query."""
        return TagMapBuilder(
            self.predicate_tree, naive=self.naive_tags, three_valued=self.three_valued
        )

    def single_table_alias(self, expr: BooleanExpr) -> str | None:
        """The single alias referenced by ``expr``, or None when it spans tables."""
        aliases = expr.tables()
        if len(aliases) == 1:
            return next(iter(aliases))
        return None

    def order_filters(self, filters: list[BooleanExpr]) -> list[BooleanExpr]:
        """Sort filters in benefiting order (Appendix A)."""
        return benefiting_order(
            self.predicate_tree,
            filters,
            self.selectivity.selectivity,
            self.selectivity.cost_factor,
        )

    def effective_alias_rows(
        self, alias: str, pushed: list[BooleanExpr], disjunctive: bool
    ) -> float:
        """Estimated rows of ``alias`` surviving its pushed filters.

        In tagged execution, pushing the predicates of a disjunctive query
        keeps every tuple that satisfies *any* of them (the others are
        dropped by precept (1)), so the surviving fraction is the selectivity
        of their disjunction; conjunctive pushes multiply selectivities.
        """
        base = self.cardinality.base_rows(alias)
        if not pushed:
            return base
        if disjunctive and len(pushed) > 1:
            return base * self.selectivity.selectivity(or_(*pushed))
        rows = base
        for predicate in pushed:
            rows *= self.selectivity.selectivity(predicate)
        return rows


@dataclass
class PlannerResult:
    """A planned query: the logical plan, its tag maps and its estimated cost."""

    planner_name: str
    plan: PlanNode
    annotations: PlanTagAnnotations
    estimated_cost: float

    def describe(self) -> str:
        """One-line summary used by reports."""
        return f"{self.planner_name}: cost={self.estimated_cost:.1f}"


class TaggedPlanner:
    """Base class of tagged-execution planners."""

    name = "tagged"

    def __init__(self, context: PlannerContext) -> None:
        self.context = context

    # ------------------------------------------------------------------ #
    # Interface
    # ------------------------------------------------------------------ #
    def build_plan(self) -> PlanNode:
        """Return the logical plan chosen by this planner."""
        raise NotImplementedError

    def plan(self) -> PlannerResult:
        """Build the plan, its tag maps and its estimated cost."""
        logical_plan = self.build_plan()
        annotations, cost = self.cost_plan(logical_plan)
        return PlannerResult(self.name, logical_plan, annotations, cost)

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def cost_plan(self, plan: PlanNode) -> tuple[PlanTagAnnotations, float]:
        """Tag maps + estimated cost for a candidate plan."""
        annotations = self.context.tag_map_builder().build(plan)
        breakdown = estimate_plan_cost(
            plan,
            annotations,
            self.context.selectivity,
            self.context.cardinality,
            self.context.cost_params,
        )
        return annotations, breakdown.total

    def scan_node(self, alias: str) -> TableScanNode:
        """A scan node for ``alias``."""
        return TableScanNode(alias, self.context.query.tables[alias])

    def stack_filters(self, node: PlanNode, filters: list[BooleanExpr]) -> PlanNode:
        """Wrap ``node`` in filter nodes, innermost first."""
        for predicate in filters:
            node = FilterNode(predicate, node)
        return node

    def finish(self, node: PlanNode) -> PlanNode:
        """Add the projection root."""
        return ProjectNode(node, self.context.query.select)

"""Planners for tagged execution (Section 4).

All planners share greedy join ordering (:mod:`repro.core.planner.joinorder`)
and the benefit score of Appendix A (:mod:`repro.core.planner.benefit`); they
differ in where filter operators are placed:

* :class:`~repro.core.planner.pushdown.TPushdownPlanner` — every base
  predicate pushed to its base table.
* :class:`~repro.core.planner.pullup.TPullupPlanner` — starts from TPushdown
  and pulls filters up while it reduces estimated cost (Algorithm 2).
* :class:`~repro.core.planner.iterpush.TIterPushPlanner` — starts with all
  filters above the joins and pushes them down while it reduces cost.
* :class:`~repro.core.planner.pushconj.TPushConjPlanner` — mimics what a
  traditional conjunctive planner would do (the overhead comparison point).
* :class:`~repro.core.planner.combined.TCombinedPlanner` — costs the four
  plans above and returns the cheapest (the system default).
"""

from repro.core.planner.base import PlannerContext, PlannerResult, TaggedPlanner
from repro.core.planner.benefit import benefit_score, benefiting_order
from repro.core.planner.combined import TCombinedPlanner
from repro.core.planner.cost import CostParams, estimate_plan_cost
from repro.core.planner.exhaustive import TExhaustivePlanner
from repro.core.planner.iterpush import TIterPushPlanner
from repro.core.planner.joinorder import greedy_join_tree
from repro.core.planner.pullup import TPullupPlanner
from repro.core.planner.pushconj import TPushConjPlanner
from repro.core.planner.pushdown import TPushdownPlanner

PLANNER_REGISTRY = {
    "tpushdown": TPushdownPlanner,
    "tpullup": TPullupPlanner,
    "titerpush": TIterPushPlanner,
    "tpushconj": TPushConjPlanner,
    "tcombined": TCombinedPlanner,
    "texhaustive": TExhaustivePlanner,
}

#: The planners the paper's TMin oracle minimizes over (Figure 3c): the four
#: candidate planners TCombined itself considers.  TExhaustive is an
#: extension beyond the paper and is excluded so TMin keeps its meaning.
TMIN_CANDIDATES = ("tpushdown", "tpullup", "titerpush", "tpushconj")

__all__ = [
    "CostParams",
    "PLANNER_REGISTRY",
    "TMIN_CANDIDATES",
    "PlannerContext",
    "PlannerResult",
    "TCombinedPlanner",
    "TExhaustivePlanner",
    "TIterPushPlanner",
    "TPullupPlanner",
    "TPushConjPlanner",
    "TPushdownPlanner",
    "TaggedPlanner",
    "benefit_score",
    "benefiting_order",
    "estimate_plan_cost",
    "greedy_join_tree",
]

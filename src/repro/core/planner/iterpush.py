"""TIterPush: start with all filters above the joins, push down when cheaper.

The opposite extreme of TPullup (Section 4.2): the base plan performs every
join first and applies all filters afterwards in benefiting order.  Each
filter is then considered, in benefiting order, for being pushed down to its
base table; the push is kept whenever the estimated plan cost decreases.
This catches plans TPullup misses, where only moving *several* filters at
once (or keeping several up) pays off.
"""

from __future__ import annotations

from repro.core.planner.base import TaggedPlanner
from repro.core.planner.joinorder import greedy_join_tree
from repro.expr.ast import BooleanExpr
from repro.plan.logical import (
    FilterNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    TableScanNode,
    remove_filter,
)


def push_filter_to_alias(plan: PlanNode, predicate: BooleanExpr, alias: str) -> PlanNode:
    """Move a filter from wherever it is onto the scan of ``alias``.

    The filter is removed from its current position and re-inserted directly
    above the alias's scan node (below any filters already pushed there, so
    previously pushed filters keep their relative order above it).
    """
    without = remove_filter(plan, predicate.key())
    inserted = False

    def rebuild(node: PlanNode) -> PlanNode:
        nonlocal inserted
        if isinstance(node, TableScanNode):
            rebuilt: PlanNode = TableScanNode(node.alias, node.table_name)
            if not inserted and node.alias == alias:
                inserted = True
                rebuilt = FilterNode(predicate, rebuilt)
            return rebuilt
        if isinstance(node, FilterNode):
            return FilterNode(node.predicate, rebuild(node.child))
        if isinstance(node, JoinNode):
            return JoinNode(rebuild(node.left), rebuild(node.right), node.conditions)
        if isinstance(node, ProjectNode):
            return ProjectNode(rebuild(node.child), node.columns)
        raise TypeError(f"unknown plan node type: {type(node).__name__}")

    result = rebuild(without)
    if not inserted:
        raise ValueError(f"alias {alias!r} not found in plan")
    return result


class TIterPushPlanner(TaggedPlanner):
    """Iteratively push filters down from an all-joins-first base plan."""

    name = "titerpush"

    def build_plan(self) -> PlanNode:
        context = self.context
        query = context.query

        leaf_plans: dict[str, PlanNode] = {
            alias: self.scan_node(alias) for alias in query.aliases
        }
        estimated_rows = {
            alias: context.estimates.base_rows(alias) for alias in query.aliases
        }
        if len(query.aliases) == 1:
            joined: PlanNode = leaf_plans[query.aliases[0]]
        else:
            joined = greedy_join_tree(query, leaf_plans, estimated_rows, context.estimates)

        if context.predicate_tree is None:
            return self.finish(joined)

        base_predicates = context.order_filters(context.predicate_tree.base_predicates())
        # Filters above the joins run in benefiting order: the most beneficial
        # filter must run first, i.e. sit lowest in the stack.
        joined = self.stack_filters(joined, list(reversed(base_predicates)))
        best_plan = self.finish(joined)
        _annotations, best_cost = self.cost_plan(best_plan)

        for predicate in base_predicates:
            alias = context.single_table_alias(predicate)
            if alias is None:
                continue
            try:
                candidate = push_filter_to_alias(best_plan, predicate, alias)
            except ValueError:
                continue
            _annotations, candidate_cost = self.cost_plan(candidate)
            if candidate_cost < best_cost:
                best_plan, best_cost = candidate, candidate_cost
        return best_plan

"""Tag generalization (Algorithm 1: GeneralizeTag).

Generalization propagates a tag's assignments upwards through the predicate
tree wherever Boolean implication allows it, then keeps only the topmost
assignments.  A generalized tag stands in for every ungeneralized tag that
implies it, which is what keeps the number of tags in the system small
(Section 3.2).  The three-valued-logic extension of Section 3.4 is supported
throughout: assignments may be TRUE, FALSE or UNKNOWN, and propagation across
AND/OR nodes folds children with the SQL truth tables.
"""

from __future__ import annotations

from collections import deque

from repro.core.implication import implied_truth_value
from repro.core.predtree import PredicateTree, PredNode
from repro.core.tags import Tag
from repro.expr.three_valued import FALSE, TRUE, UNKNOWN, TruthValue, scalar_and, scalar_not, scalar_or


def _can_propagate(node: PredNode, parent: PredNode, assignments: dict[str, TruthValue]) -> bool:
    """The five propagation conditions of Algorithm 1 (3VL variant).

    (a) the parent is a NOT node;
    (b) the parent is an OR node and this child is TRUE;
    (c) the parent is an AND node and this child is FALSE;
    (d) the parent is an OR node and all children are FALSE or UNKNOWN;
    (e) the parent is an AND node and all children are TRUE or UNKNOWN.
    """
    value = assignments.get(node.key)
    if value is None:
        return False
    if parent.is_not:
        return True
    if parent.is_or and value is TRUE:
        return True
    if parent.is_and and value is FALSE:
        return True
    child_values = [assignments.get(child.key) for child in parent.children]
    if parent.is_or and all(v in (FALSE, UNKNOWN) for v in child_values):
        return True
    if parent.is_and and all(v in (TRUE, UNKNOWN) for v in child_values):
        return True
    return False


def _do_propagate(node: PredNode, parent: PredNode, assignments: dict[str, TruthValue]) -> TruthValue:
    """Compute and record the parent's assignment value."""
    value = assignments[node.key]
    if parent.is_not:
        result = scalar_not(value)
    elif parent.is_or:
        if value is TRUE:
            result = TRUE
        else:
            result = FALSE
            for child in parent.children:
                result = scalar_or(result, assignments.get(child.key, FALSE))
    elif parent.is_and:
        if value is FALSE:
            result = FALSE
        else:
            result = TRUE
            for child in parent.children:
                result = scalar_and(result, assignments.get(child.key, TRUE))
    else:  # pragma: no cover - parents are always NOT/AND/OR nodes
        result = value
    assignments[parent.key] = result
    return result


def _topmost_assignments(
    node: PredNode,
    assignments: dict[str, TruthValue],
    derived_only: set[str],
) -> dict[str, TruthValue]:
    """Collect only the topmost assignments reachable from ``node``.

    An assignment survives only where no ancestor on that path carries an
    assignment; because the recursion is per path, a predicate occurring in
    several places keeps its assignment as long as at least one occurrence
    has no assigned ancestor (Section 3.2, "Duplicates").  Leaf assignments
    that were merely *derived* through predicate implication (and never part
    of the input tag) are used as propagation fuel only and are not emitted.
    """
    if not assignments:
        return {}
    if node.key in assignments:
        if node.is_leaf and node.key in derived_only:
            return {}
        return {node.key: assignments[node.key]}
    collected: dict[str, TruthValue] = {}
    for child in node.children:
        collected.update(_topmost_assignments(child, assignments, derived_only))
    return collected


def _augment_with_implications(
    tree: PredicateTree, assignments: dict[str, TruthValue]
) -> set[str]:
    """Derive assignments for unassigned leaves via predicate implication.

    For example ``t.year > 2000 = T`` derives ``t.year > 1980 = T``.  Returns
    the set of keys that were added (used to keep them out of the final tag).
    """
    facts = []
    for key, value in assignments.items():
        if key in tree:
            expr = tree.expr_for(key)
            if expr.is_base_predicate():
                facts.append((expr, value))
    if not facts:
        return set()

    derived: set[str] = set()
    for leaf in tree.base_predicates():
        leaf_key = leaf.key()
        if leaf_key in assignments:
            continue
        value = implied_truth_value(leaf, facts)
        if value is not None:
            assignments[leaf_key] = value
            derived.add(leaf_key)
    return derived


def generalize_tag(tree: PredicateTree, tag: Tag) -> Tag:
    """Generalize ``tag`` against ``tree`` (Algorithm 1).

    Assignments to expressions that do not occur in the tree are preserved
    verbatim (they cannot be generalized but still constrain the slice).
    Before propagation the tag is augmented with leaf assignments implied by
    value-level reasoning over comparison predicates (e.g. ``year > 2000``
    implies ``year > 1980``); those derived assignments drive propagation but
    never appear in the resulting tag themselves.
    """
    assignments: dict[str, TruthValue] = tag.as_dict()
    foreign = {key: value for key, value in assignments.items() if key not in tree}
    derived_only = _augment_with_implications(tree, assignments)

    fringe: deque[str] = deque(key for key in assignments if key in tree)
    enqueued = set(fringe)
    while fringe:
        key = fringe.popleft()
        enqueued.discard(key)
        for instance in tree.instances(key):
            parent = instance.parent
            if parent is None:
                continue
            if _can_propagate(instance, parent, assignments):
                previous = assignments.get(parent.key)
                new_value = _do_propagate(instance, parent, assignments)
                if previous != new_value and parent.key not in enqueued:
                    fringe.append(parent.key)
                    enqueued.add(parent.key)

    result = _topmost_assignments(tree.root, assignments, derived_only)
    result.update(foreign)
    return Tag(result)


def root_assignment(tree: PredicateTree, tag: Tag) -> TruthValue | None:
    """The tag's assignment to the whole predicate expression, if any."""
    return tag.get(tree.root_key)


def satisfies_root(tree: PredicateTree, tag: Tag) -> bool:
    """True when the tag assigns TRUE to the root (tuples certainly match)."""
    return root_assignment(tree, tag) is TRUE


def refutes_root(tree: PredicateTree, tag: Tag, include_unknown: bool = True) -> bool:
    """True when the tag's root assignment proves tuples will not be output.

    Under SQL semantics a WHERE clause only passes rows whose predicate is
    TRUE, so both FALSE and UNKNOWN root assignments mean the slice can be
    dropped (Section 3.4, change 4).  Pass ``include_unknown=False`` for the
    strictly two-valued behaviour.
    """
    value = root_assignment(tree, tag)
    if value is FALSE:
        return True
    if include_unknown and value is UNKNOWN:
        return True
    return False

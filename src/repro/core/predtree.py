"""Predicate trees.

The query's WHERE expression is represented as a *predicate tree*
(Section 3.2): leaves are base predicates, interior nodes are AND / OR / NOT,
and the tree is normalized so an interior node never has a parent of the same
type.  The same subexpression may occur at several positions; each occurrence
is a distinct :class:`PredNode` *instance*, while tags refer to expressions by
their structural key.  Tag generalization propagates assignments per instance
and collapses them per key, which is what lets tagged execution evaluate every
predicate exactly once even when it appears repeatedly (Section 3.2,
"Duplicates").
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.expr.ast import AndExpr, BooleanExpr, NotExpr, OrExpr, flatten


class PredNode:
    """One occurrence (instance) of a subexpression in the predicate tree."""

    __slots__ = ("expr", "key", "parent", "children")

    def __init__(self, expr: BooleanExpr, parent: "PredNode | None") -> None:
        self.expr = expr
        self.key = expr.key()
        self.parent = parent
        self.children: list[PredNode] = []

    @property
    def is_and(self) -> bool:
        """True if this node is an AND node."""
        return isinstance(self.expr, AndExpr)

    @property
    def is_or(self) -> bool:
        """True if this node is an OR node."""
        return isinstance(self.expr, OrExpr)

    @property
    def is_not(self) -> bool:
        """True if this node is a NOT node."""
        return isinstance(self.expr, NotExpr)

    @property
    def is_leaf(self) -> bool:
        """True for base predicates."""
        return not self.children

    def ancestors(self) -> Iterator["PredNode"]:
        """Yield ancestors from the parent up to (and including) the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def ancestor_path(self) -> list["PredNode"]:
        """Ancestor nodes from parent to root, as a list."""
        return list(self.ancestors())

    def __repr__(self) -> str:
        return f"PredNode({self.key})"


class PredicateTree:
    """Normalized predicate tree for one query's WHERE expression."""

    def __init__(self, expr: BooleanExpr) -> None:
        self._expr = flatten(expr)
        self.root = self._build(self._expr, None)
        self._instances: dict[str, list[PredNode]] = {}
        self._expr_by_key: dict[str, BooleanExpr] = {}
        for node in self.walk():
            self._instances.setdefault(node.key, []).append(node)
            self._expr_by_key.setdefault(node.key, node.expr)

    def _build(self, expr: BooleanExpr, parent: PredNode | None) -> PredNode:
        node = PredNode(expr, parent)
        for child in expr.children():
            node.children.append(self._build(child, node))
        return node

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def expression(self) -> BooleanExpr:
        """The normalized WHERE expression."""
        return self._expr

    @property
    def root_key(self) -> str:
        """Structural key of the whole predicate expression."""
        return self.root.key

    def walk(self) -> Iterator[PredNode]:
        """Yield every node instance, pre-order from the root."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def instances(self, key: str) -> list[PredNode]:
        """Every occurrence of the subexpression with structural key ``key``."""
        return list(self._instances.get(key, []))

    def expr_for(self, key: str) -> BooleanExpr:
        """The expression object for a key; raises KeyError if unknown."""
        try:
            return self._expr_by_key[key]
        except KeyError:
            raise KeyError(f"key {key!r} does not occur in this predicate tree") from None

    def __contains__(self, key: str) -> bool:
        return key in self._instances

    def keys(self) -> list[str]:
        """All distinct subexpression keys."""
        return list(self._instances)

    def leaves(self) -> list[PredNode]:
        """Every base-predicate occurrence (with repeats), left-to-right."""
        return [node for node in self._walk_in_order(self.root) if node.is_leaf]

    def base_predicates(self) -> list[BooleanExpr]:
        """Distinct base predicates, in first-occurrence order."""
        seen: dict[str, BooleanExpr] = {}
        for node in self._walk_in_order(self.root):
            if node.is_leaf:
                seen.setdefault(node.key, node.expr)
        return list(seen.values())

    def _walk_in_order(self, node: PredNode) -> Iterator[PredNode]:
        yield node
        for child in node.children:
            yield from self._walk_in_order(child)

    # ------------------------------------------------------------------ #
    # Structure queries used by tag-map construction and the benefit score
    # ------------------------------------------------------------------ #
    def parents(self, key: str) -> list[PredNode]:
        """Parent node of each instance of ``key`` (roots have no parent)."""
        return [node.parent for node in self.instances(key) if node.parent is not None]

    def ancestor_paths(self, key: str) -> list[list[PredNode]]:
        """For each instance of ``key``, its ancestor path (parent .. root)."""
        return [node.ancestor_path() for node in self.instances(key)]

    def every_instance_has_assigned_ancestor(self, key: str, assigned_keys: set[str]) -> bool:
        """Precept (2) check: every instance of ``key`` has an ancestor whose
        key carries an assignment."""
        instances = self.instances(key)
        if not instances:
            return False
        for instance in instances:
            if not any(ancestor.key in assigned_keys for ancestor in instance.ancestors()):
                return False
        return True

    def num_nodes(self) -> int:
        """Total number of node instances in the tree."""
        return sum(1 for _node in self.walk())

    def __repr__(self) -> str:
        return f"PredicateTree({self.root_key})"

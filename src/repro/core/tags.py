"""Tags: truth-value assignments to predicate subexpressions.

A tag is a set of assignments ``<expr> = T/F/U`` where ``<expr>`` is an
arbitrarily complex boolean subexpression of the query's predicate
(Section 2.1).  Expressions are identified by their canonical structural key
(:meth:`repro.expr.ast.BooleanExpr.key`), so the same subexpression appearing
in different places is recognized as one expression.

Tags are immutable and hashable: they serve as dictionary keys both in tagged
relations (tag -> bitmap) and in tag maps.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.expr.three_valued import TruthValue


class Tag:
    """An immutable set of ``expression-key -> TruthValue`` assignments."""

    __slots__ = ("_assignments", "_hash")

    def __init__(self, assignments: Mapping[str, TruthValue] | None = None) -> None:
        items = {}
        if assignments:
            for key, value in assignments.items():
                items[key] = TruthValue(value)
        self._assignments: tuple[tuple[str, TruthValue], ...] = tuple(
            sorted(items.items())
        )
        self._hash = hash(self._assignments)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls) -> "Tag":
        """The empty tag ``{}`` carried by base tagged relations."""
        return _EMPTY_TAG

    @classmethod
    def single(cls, key: str, value: TruthValue) -> "Tag":
        """A tag with exactly one assignment."""
        return cls({key: value})

    # ------------------------------------------------------------------ #
    # Mapping-style access
    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict[str, TruthValue]:
        """The assignments as a mutable dictionary copy."""
        return dict(self._assignments)

    def get(self, key: str) -> TruthValue | None:
        """Assignment for ``key``, or None when unassigned."""
        for assigned_key, value in self._assignments:
            if assigned_key == key:
                return value
        return None

    def keys(self) -> list[str]:
        """Assigned expression keys."""
        return [key for key, _value in self._assignments]

    def items(self) -> Iterator[tuple[str, TruthValue]]:
        """Iterate over (key, value) assignments."""
        return iter(self._assignments)

    def __contains__(self, key: str) -> bool:
        return any(assigned_key == key for assigned_key, _value in self._assignments)

    def __len__(self) -> int:
        return len(self._assignments)

    def is_empty(self) -> bool:
        """True for the empty tag."""
        return not self._assignments

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def with_assignment(self, key: str, value: TruthValue) -> "Tag":
        """A new tag with ``key = value`` added (or overwritten)."""
        assignments = self.as_dict()
        assignments[key] = value
        return Tag(assignments)

    def union(self, other: "Tag") -> "Tag":
        """Combine two tags' assignments.

        Conflicting assignments for the same key would describe an empty set
        of tuples; such unions raise :class:`ValueError` because tag-map
        builders never create them.
        """
        assignments = self.as_dict()
        for key, value in other.items():
            if key in assignments and assignments[key] != value:
                raise ValueError(
                    f"conflicting assignments for {key!r}: "
                    f"{assignments[key]!s} vs {value!s}"
                )
            assignments[key] = value
        return Tag(assignments)

    # ------------------------------------------------------------------ #
    # Dunder / display
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tag):
            return NotImplemented
        return self._assignments == other._assignments

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self._assignments:
            return "{}"
        rendered = ", ".join(f"{key} = {value!s}" for key, value in self._assignments)
        return "{" + rendered + "}"


_EMPTY_TAG = Tag()

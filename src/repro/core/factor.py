"""Common-subexpression factoring of OR-rooted predicates.

Section 5.1 describes how, before comparing against BPushConj, predicate
subexpressions common to *every* root clause of a disjunction are pulled out
to form an equivalent AND-rooted expression, e.g.::

    (A AND B AND C) OR (A AND B AND D)   ->   A AND B AND (C OR D)

This module implements that rewrite.  It is used by the Figure 3b/3c/3d
benchmark setups and by tests; it is also useful on its own as a traditional
optimizer building block.
"""

from __future__ import annotations

from repro.expr.ast import AndExpr, BooleanExpr, OrExpr, flatten


def _clause_parts(clause: BooleanExpr) -> list[BooleanExpr]:
    """The conjunctive parts of one root clause."""
    if isinstance(clause, AndExpr):
        return list(clause.children())
    return [clause]


def factor_common_subexpressions(expr: BooleanExpr) -> BooleanExpr:
    """Pull subexpressions common to every root clause out of an OR root.

    Non-OR-rooted expressions are returned unchanged (after normalization).
    When every part of every clause is common the result is purely
    conjunctive; when no part is common the expression is returned unchanged.
    """
    expr = flatten(expr)
    if not isinstance(expr, OrExpr):
        return expr

    clauses = list(expr.children())
    clause_parts = [_clause_parts(clause) for clause in clauses]
    clause_keysets = [{part.key() for part in parts} for parts in clause_parts]

    common_keys = set(clause_keysets[0])
    for keyset in clause_keysets[1:]:
        common_keys &= keyset
    if not common_keys:
        return expr

    # Preserve the first clause's ordering of the common parts.
    common_parts = [part for part in clause_parts[0] if part.key() in common_keys]

    residual_clauses: list[BooleanExpr] = []
    any_clause_fully_common = False
    for parts in clause_parts:
        residual = [part for part in parts if part.key() not in common_keys]
        if not residual:
            any_clause_fully_common = True
            continue
        if len(residual) == 1:
            residual_clauses.append(residual[0])
        else:
            residual_clauses.append(AndExpr(residual))

    conjuncts: list[BooleanExpr] = list(common_parts)
    if not any_clause_fully_common and residual_clauses:
        if len(residual_clauses) == 1:
            conjuncts.append(residual_clauses[0])
        else:
            conjuncts.append(OrExpr(residual_clauses))
    # If some clause consisted solely of common parts, the residual
    # disjunction is subsumed (C OR TRUE = TRUE) and drops out entirely.

    if len(conjuncts) == 1:
        return flatten(conjuncts[0])
    return flatten(AndExpr(conjuncts))

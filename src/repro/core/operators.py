"""Tagged execution operators: filter, join and projection.

These implement the runtime side of Section 2: given the tag maps produced at
plan time, each operator touches only the relational slices its tag map names
and routes results to output tags.  Implementation follows Basilisk's choices
(Section 2.5): filters evaluate their predicate once over the union of the
matching slices' bitmaps and never physically delete rows; joins build a
single shared structure over all participating slices; values are fetched
lazily by row index through the storage layer.
"""

from __future__ import annotations

import numpy as np

from repro.core.tagged_relation import TaggedRelation
from repro.core.tagmap import FilterTagMap, JoinTagMap, ProjectionTagSet
from repro.core.tags import Tag
from repro.engine.metrics import ExecContext
from repro.expr import three_valued as tv
from repro.expr.ast import BooleanExpr
from repro.physical.expressions import evaluate_predicate, read_join_keys
from repro.plan.query import JoinCondition
from repro.storage.bitmap import Bitmap
from repro.utils.join import equi_join_indices

#: Sentinel stored in the full-length truth array for rows the filter did not
#: evaluate (they belong to no matching slice).
_NOT_EVALUATED = np.uint8(255)


class TaggedFilterOperator:
    """Filter operator driven by a tag map (Section 2.2 / 2.5.2)."""

    def __init__(self, predicate: BooleanExpr, tag_map: FilterTagMap) -> None:
        self.predicate = predicate
        self.tag_map = tag_map

    def execute(self, relation: TaggedRelation, context: ExecContext) -> TaggedRelation:
        """Apply the filter to ``relation`` and return the output relation."""
        context.metrics.operators_executed += 1

        matching = [tag for tag in relation.slices if self.tag_map.matches(tag)]
        passthrough = [tag for tag in relation.slices if not self.tag_map.matches(tag)]

        output_masks: dict[Tag, np.ndarray] = {}

        def add_mask(tag: Tag, mask: np.ndarray) -> None:
            if not mask.any():
                return
            if tag in output_masks:
                output_masks[tag] = output_masks[tag] | mask
            else:
                output_masks[tag] = mask

        for tag in passthrough:
            add_mask(tag, relation.slices[tag].mask)

        if matching:
            union_bitmap = Bitmap.union_all(
                (relation.slices[tag] for tag in matching), size=relation.num_rows
            )
            positions = union_bitmap.positions()
            truth_full = np.full(relation.num_rows, _NOT_EVALUATED, dtype=np.uint8)
            if positions.size:
                truth_full[positions] = self._evaluate(relation, positions, context)
            context.metrics.predicate_evaluations += 1
            context.metrics.predicate_rows_evaluated += int(positions.size)

            true_mask = truth_full == np.uint8(int(tv.TRUE))
            false_mask = truth_full == np.uint8(int(tv.FALSE))
            unknown_mask = truth_full == np.uint8(int(tv.UNKNOWN))

            for tag in matching:
                entry = self.tag_map.entries[tag]
                slice_mask = relation.slices[tag].mask
                if entry.pos_tag is not None:
                    add_mask(entry.pos_tag, slice_mask & true_mask)
                if entry.neg_tag is not None:
                    add_mask(entry.neg_tag, slice_mask & false_mask)
                if entry.unk_tag is not None:
                    add_mask(entry.unk_tag, slice_mask & unknown_mask)

        slices = {tag: Bitmap.from_mask(mask) for tag, mask in output_masks.items()}
        context.metrics.slices_created += len(slices)
        return relation.with_slices(slices)

    def _evaluate(
        self, relation: TaggedRelation, positions: np.ndarray, context: ExecContext
    ) -> np.ndarray:
        return evaluate_predicate(
            self.predicate, relation.tables, relation.indices, context, positions=positions
        )


class TaggedJoinOperator:
    """Hash equi-join driven by a tag map (Section 2.3 / 2.5.3)."""

    def __init__(self, conditions: list[JoinCondition], tag_map: JoinTagMap) -> None:
        if not conditions:
            raise ValueError("a tagged join requires at least one join condition")
        self.conditions = list(conditions)
        self.tag_map = tag_map

    def execute(
        self, left: TaggedRelation, right: TaggedRelation, context: ExecContext
    ) -> TaggedRelation:
        """Join ``left`` and ``right`` and return the output tagged relation.

        Only slice pairings with a tag-map entry are joined; incompatible
        pairings are never generated.  Right slices sharing the same set of
        compatible left slices are probed together against one shared build
        structure, mirroring Basilisk's single hash table per join.
        """
        context.metrics.operators_executed += 1

        left_tags = [tag for tag in left.slices if tag in self.tag_map.left_tags()]
        right_tags = [tag for tag in right.slices if tag in self.tag_map.right_tags()]
        merged_tables = {**left.tables, **right.tables}

        if not left_tags or not right_tags:
            return TaggedRelation(merged_tables, self._empty_indices(left, right), {})

        left_union = Bitmap.union_all(
            (left.slices[tag] for tag in left_tags), size=left.num_rows
        ).positions()
        right_union = Bitmap.union_all(
            (right.slices[tag] for tag in right_tags), size=right.num_rows
        ).positions()

        # Join keys, factorized once across both sides and scattered into
        # row-position-indexed arrays (−1 = row not participating / NULL key).
        left_subset_keys, right_subset_keys = self._join_keys(
            left, right, left_union, right_union, context
        )
        left_keys = np.full(left.num_rows, -1, dtype=np.int64)
        left_keys[left_union] = left_subset_keys
        right_keys = np.full(right.num_rows, -1, dtype=np.int64)
        right_keys[right_union] = right_subset_keys

        # Slice identities (slices are mutually exclusive, so each row has one).
        left_slice_of_row = self._slice_ids(left, left_tags)
        right_slice_of_row = self._slice_ids(right, right_tags)

        # Output-tag lookup table indexed by (left slice id, right slice id).
        out_tags: list[Tag] = []
        out_tag_index: dict[Tag, int] = {}
        allowed = np.full((len(left_tags), len(right_tags)), -1, dtype=np.int64)
        left_tag_index = {tag: index for index, tag in enumerate(left_tags)}
        right_tag_index = {tag: index for index, tag in enumerate(right_tags)}
        for (left_tag, right_tag), out_tag in self.tag_map.entries.items():
            if left_tag not in left_tag_index or right_tag not in right_tag_index:
                continue
            if out_tag not in out_tag_index:
                out_tag_index[out_tag] = len(out_tags)
                out_tags.append(out_tag)
            allowed[left_tag_index[left_tag], right_tag_index[right_tag]] = out_tag_index[out_tag]

        # Group right slices by their compatible left-slice sets so each group
        # is joined exactly once against exactly the rows it may match.
        groups: dict[frozenset[int], list[int]] = {}
        for right_index in range(len(right_tags)):
            compatible = frozenset(np.flatnonzero(allowed[:, right_index] >= 0).tolist())
            if compatible:
                groups.setdefault(compatible, []).append(right_index)

        matched_left_chunks: list[np.ndarray] = []
        matched_right_chunks: list[np.ndarray] = []
        matched_tag_chunks: list[np.ndarray] = []

        for compatible_left, right_indices in groups.items():
            left_group = Bitmap.union_all(
                (left.slices[left_tags[index]] for index in compatible_left),
                size=left.num_rows,
            ).positions()
            right_group = Bitmap.union_all(
                (right.slices[right_tags[index]] for index in right_indices),
                size=right.num_rows,
            ).positions()
            if left_group.size == 0 or right_group.size == 0:
                continue
            context.metrics.hash_tables_built += 1
            context.metrics.join_build_rows += int(left_group.size)
            context.metrics.join_probe_rows += int(right_group.size)

            left_match, right_match = equi_join_indices(
                left_keys[left_group], right_keys[right_group]
            )
            if left_match.size == 0:
                continue
            rows_left = left_group[left_match]
            rows_right = right_group[right_match]
            tag_indices = allowed[left_slice_of_row[rows_left], right_slice_of_row[rows_right]]
            matched_left_chunks.append(rows_left)
            matched_right_chunks.append(rows_right)
            matched_tag_chunks.append(tag_indices)

        if not matched_left_chunks:
            return TaggedRelation(merged_tables, self._empty_indices(left, right), {})

        kept_left_rows = np.concatenate(matched_left_chunks)
        kept_right_rows = np.concatenate(matched_right_chunks)
        kept_tag_indices = np.concatenate(matched_tag_chunks)

        out_indices: dict[str, np.ndarray] = {}
        for alias in left.indices:
            out_indices[alias] = left.indices[alias][kept_left_rows]
        for alias in right.indices:
            out_indices[alias] = right.indices[alias][kept_right_rows]

        out_slices: dict[Tag, Bitmap] = {}
        for index, out_tag in enumerate(out_tags):
            mask = kept_tag_indices == index
            if mask.any():
                out_slices[out_tag] = Bitmap.from_mask(mask)

        output_rows = int(kept_left_rows.size)
        context.metrics.join_output_rows += output_rows
        context.metrics.tuples_materialized += output_rows
        context.metrics.slices_created += len(out_slices)
        return TaggedRelation(merged_tables, out_indices, out_slices)

    @staticmethod
    def _slice_ids(relation: TaggedRelation, tags: list[Tag]) -> np.ndarray:
        """Per-row slice index (−1 for rows outside every listed slice)."""
        slice_of_row = np.full(relation.num_rows, -1, dtype=np.int64)
        for index, tag in enumerate(tags):
            slice_of_row[relation.slices[tag].positions()] = index
        return slice_of_row

    def _join_keys(
        self,
        left: TaggedRelation,
        right: TaggedRelation,
        left_positions: np.ndarray,
        right_positions: np.ndarray,
        context: ExecContext,
    ) -> tuple[np.ndarray, np.ndarray]:
        return read_join_keys(
            self.conditions,
            left.tables,
            left.indices,
            right.tables,
            right.indices,
            context,
            left_positions=left_positions,
            right_positions=right_positions,
        )

    @staticmethod
    def _empty_indices(left: TaggedRelation, right: TaggedRelation) -> dict[str, np.ndarray]:
        empty = np.empty(0, dtype=np.int64)
        out = {alias: empty for alias in left.indices}
        out.update({alias: empty for alias in right.indices})
        return out


class TaggedProjectOperator:
    """Projection: the final tag-based selection point (Section 2.4)."""

    def __init__(
        self,
        projection: ProjectionTagSet,
        residual_predicate: BooleanExpr | None = None,
    ) -> None:
        self.projection = projection
        self.residual_predicate = residual_predicate

    def execute(self, relation: TaggedRelation, context: ExecContext) -> np.ndarray:
        """Return the row positions (into the relation) that belong to the result."""
        context.metrics.operators_executed += 1
        selected = Bitmap.empty(relation.num_rows)
        for tag in self.projection.allowed:
            if tag in relation.slices:
                selected = selected | relation.slices[tag]

        residual_tags = [tag for tag in self.projection.residual if tag in relation.slices]
        if residual_tags:
            if self.residual_predicate is None:
                raise ValueError(
                    "relation contains slices without a definite root assignment "
                    "but no residual predicate was provided"
                )
            residual_bitmap = Bitmap.union_all(
                (relation.slices[tag] for tag in residual_tags), size=relation.num_rows
            )
            positions = residual_bitmap.positions()
            if positions.size:
                truth = evaluate_predicate(
                    self.residual_predicate,
                    relation.tables,
                    relation.indices,
                    context,
                    positions=positions,
                    description="residual",
                )
                context.metrics.residual_rows_evaluated += int(positions.size)
                passing = positions[tv.is_true(truth)]
                selected = selected | Bitmap.from_positions(relation.num_rows, passing)

        result_positions = selected.positions()
        context.metrics.output_rows += int(result_positions.size)
        return result_positions

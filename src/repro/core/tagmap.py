"""Tag maps and their construction (Section 3.3).

A *tag map* tells a tagged operator which relational slices to touch and
which output tags to produce:

* filter entries: ``in-tag -> {T: pos-tag?, F: neg-tag?, U: unk-tag?}``
* join entries:   ``(left-tag, right-tag) -> out-tag``
* projection:     the set of allowed tags.

:class:`TagMapBuilder` walks a logical plan and constructs all tag maps,
following either the *naive strategy* of Section 3.1 or the generalized
strategy of Section 3.3 with its two precepts:

1. never produce an output tag whose generalized form refutes the root of the
   predicate tree (those tuples can never reach the output);
2. never apply a filter to a slice whose tag already dominates the predicate
   (every occurrence of the predicate has an assigned ancestor), since the
   split would not refine the selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.generalize import generalize_tag, refutes_root, satisfies_root
from repro.core.implication import implied_truth_value
from repro.core.predtree import PredicateTree
from repro.core.tags import Tag
from repro.expr.ast import BooleanExpr
from repro.expr.three_valued import FALSE, TRUE, UNKNOWN
from repro.plan.logical import FilterNode, JoinNode, PlanNode, ProjectNode, TableScanNode


@dataclass
class FilterEntry:
    """Outputs of one filter tag-map entry (any of them may be dropped)."""

    pos_tag: Tag | None = None
    neg_tag: Tag | None = None
    unk_tag: Tag | None = None

    def output_tags(self) -> list[Tag]:
        """The output tags that are actually produced."""
        return [tag for tag in (self.pos_tag, self.neg_tag, self.unk_tag) if tag is not None]


@dataclass
class FilterTagMap:
    """Tag map of a tagged filter operator."""

    entries: dict[Tag, FilterEntry] = field(default_factory=dict)

    def matches(self, tag: Tag) -> bool:
        """Whether the slice tagged ``tag`` is processed by the filter."""
        return tag in self.entries

    def input_tags(self) -> list[Tag]:
        """Tags with an entry (the slices the predicate is evaluated on)."""
        return list(self.entries)


@dataclass
class JoinTagMap:
    """Tag map of a tagged join operator."""

    entries: dict[tuple[Tag, Tag], Tag] = field(default_factory=dict)

    def left_tags(self) -> set[Tag]:
        """Left input tags with at least one matching entry."""
        return {left for left, _right in self.entries}

    def right_tags(self) -> set[Tag]:
        """Right input tags with at least one matching entry."""
        return {right for _left, right in self.entries}

    def output_tag(self, left: Tag, right: Tag) -> Tag | None:
        """Output tag for a slice pairing, or None when the pair is dropped."""
        return self.entries.get((left, right))


@dataclass
class ProjectionTagSet:
    """Allowed tags at the projection operator."""

    allowed: set[Tag] = field(default_factory=set)
    #: Tags that survived to the projection without a definite root
    #: assignment; the executor evaluates the residual predicate on them to
    #: preserve correctness for plans that did not apply every predicate.
    residual: set[Tag] = field(default_factory=set)


@dataclass
class PlanTagAnnotations:
    """Per-node tag maps and output tags for one logical plan."""

    filter_maps: dict[int, FilterTagMap] = field(default_factory=dict)
    join_maps: dict[int, JoinTagMap] = field(default_factory=dict)
    projection: ProjectionTagSet | None = None
    #: Output tags of every node (node_id -> list of tags), useful for
    #: debugging, cost estimation and tests.
    output_tags: dict[int, list[Tag]] = field(default_factory=dict)

    def num_tags(self) -> int:
        """Total number of distinct tags appearing anywhere in the plan."""
        tags: set[Tag] = set()
        for node_tags in self.output_tags.values():
            tags.update(node_tags)
        return len(tags)


class TagMapBuilder:
    """Builds tag maps for every operator of a logical plan.

    Args:
        tree: the query's predicate tree.
        naive: use the naive strategy of Section 3.1 (no generalization, no
            precepts) instead of the default generalized strategy.
        three_valued: honour NULLs by producing UNKNOWN output tags; with
            ``False`` the builder behaves exactly like the two-valued model
            of Sections 2-3.3.
    """

    def __init__(
        self,
        tree: PredicateTree | None,
        naive: bool = False,
        three_valued: bool = True,
    ) -> None:
        self.tree = tree
        self.naive = naive
        self.three_valued = three_valued

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def build(self, plan: PlanNode) -> PlanTagAnnotations:
        """Build tag maps for every node of ``plan``."""
        annotations = PlanTagAnnotations()
        self._build_node(plan, annotations)
        return annotations

    # ------------------------------------------------------------------ #
    # Per-node construction
    # ------------------------------------------------------------------ #
    def _build_node(self, node: PlanNode, annotations: PlanTagAnnotations) -> list[Tag]:
        if isinstance(node, TableScanNode):
            tags = [Tag.empty()]
        elif isinstance(node, FilterNode):
            input_tags = self._build_node(node.child, annotations)
            tags = self._build_filter(node, input_tags, annotations)
        elif isinstance(node, JoinNode):
            left_tags = self._build_node(node.left, annotations)
            right_tags = self._build_node(node.right, annotations)
            tags = self._build_join(node, left_tags, right_tags, annotations)
        elif isinstance(node, ProjectNode):
            input_tags = self._build_node(node.child, annotations)
            tags = self._build_projection(node, input_tags, annotations)
        else:
            raise TypeError(f"unknown plan node type: {type(node).__name__}")
        annotations.output_tags[node.node_id] = tags
        return tags

    def _generalize(self, tag: Tag) -> Tag:
        if self.naive or self.tree is None:
            return tag
        return generalize_tag(self.tree, tag)

    def _refuted(self, tag: Tag) -> bool:
        if self.tree is None:
            return False
        if self.naive:
            # Even the naive strategy never *keeps* provably-dead tuples at the
            # projection, but it does keep them flowing through the plan.
            return False
        return refutes_root(self.tree, tag, include_unknown=self.three_valued)

    def _build_filter(
        self,
        node: FilterNode,
        input_tags: list[Tag],
        annotations: PlanTagAnnotations,
    ) -> list[Tag]:
        predicate = node.predicate
        predicate_key = predicate.key()
        tag_map = FilterTagMap()
        output: dict[Tag, None] = {}

        for in_tag in input_tags:
            entry = self._filter_entry(predicate, predicate_key, in_tag)
            if entry is None:
                # Slice passes through untouched.
                output.setdefault(in_tag)
                continue
            tag_map.entries[in_tag] = entry
            for out_tag in entry.output_tags():
                output.setdefault(out_tag)

        annotations.filter_maps[node.node_id] = tag_map
        return list(output)

    def _filter_entry(
        self, predicate: BooleanExpr, predicate_key: str, in_tag: Tag
    ) -> FilterEntry | None:
        if self.naive:
            return FilterEntry(
                pos_tag=in_tag.with_assignment(predicate_key, TRUE),
                neg_tag=in_tag.with_assignment(predicate_key, FALSE),
                unk_tag=(
                    in_tag.with_assignment(predicate_key, UNKNOWN)
                    if self.three_valued
                    else None
                ),
            )

        assigned_keys = set(in_tag.keys())
        if predicate_key in assigned_keys:
            return None
        if self.tree is not None and predicate_key in self.tree:
            # Precept (2): skip slices whose tag already dominates the predicate.
            if self.tree.every_instance_has_assigned_ancestor(predicate_key, assigned_keys):
                return None
        if self._implied_by(in_tag, predicate) is not None:
            # The slice's tag already determines this predicate's outcome
            # through value-level implication (e.g. year > 2000 determines
            # year > 1980), so splitting it would not refine the selection.
            return None

        entry = FilterEntry()
        entry.pos_tag = self._filter_output(in_tag, predicate_key, TRUE)
        entry.neg_tag = self._filter_output(in_tag, predicate_key, FALSE)
        if self.three_valued:
            entry.unk_tag = self._filter_output(in_tag, predicate_key, UNKNOWN)
        if not entry.output_tags():
            # Every outcome is dropped: the predicate still needs to run to
            # decide the tuples' fate (they all die), so keep the entry.
            return entry
        return entry

    def _implied_by(self, in_tag: Tag, predicate: BooleanExpr):
        """Truth value of ``predicate`` forced by the tag's base-predicate assignments."""
        if self.tree is None:
            return None
        facts = []
        for key, value in in_tag.items():
            if key in self.tree:
                expr = self.tree.expr_for(key)
                if expr.is_base_predicate():
                    facts.append((expr, value))
        if not facts:
            return None
        return implied_truth_value(predicate, facts)

    def _filter_output(self, in_tag: Tag, predicate_key: str, value) -> Tag | None:
        try:
            candidate = in_tag.with_assignment(predicate_key, value)
        except ValueError:  # pragma: no cover - conflicting assignment
            return None
        generalized = self._generalize(candidate)
        if self._refuted(generalized):
            # Precept (1): never emit tags that cannot reach the output.
            return None
        return generalized

    def _build_join(
        self,
        node: JoinNode,
        left_tags: list[Tag],
        right_tags: list[Tag],
        annotations: PlanTagAnnotations,
    ) -> list[Tag]:
        tag_map = JoinTagMap()
        output: dict[Tag, None] = {}
        for left_tag in left_tags:
            for right_tag in right_tags:
                try:
                    combined = left_tag.union(right_tag)
                except ValueError:
                    # Conflicting assignments describe an empty pairing.
                    continue
                out_tag = self._generalize(combined)
                if self._refuted(out_tag):
                    # Precept (1): skip pairings that cannot reach the output.
                    continue
                tag_map.entries[(left_tag, right_tag)] = out_tag
                output.setdefault(out_tag)
        annotations.join_maps[node.node_id] = tag_map
        return list(output)

    def _build_projection(
        self,
        node: ProjectNode,
        input_tags: list[Tag],
        annotations: PlanTagAnnotations,
    ) -> list[Tag]:
        projection = ProjectionTagSet()
        if self.tree is None:
            projection.allowed = set(input_tags)
        else:
            for tag in input_tags:
                generalized = generalize_tag(self.tree, tag)
                if satisfies_root(self.tree, generalized):
                    projection.allowed.add(tag)
                elif not refutes_root(self.tree, generalized, include_unknown=self.three_valued):
                    # No definite verdict: the executor must evaluate the
                    # residual predicate on this slice.
                    projection.residual.add(tag)
        annotations.projection = projection
        return sorted(projection.allowed, key=repr)

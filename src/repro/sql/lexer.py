"""SQL tokenizer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Kinds of SQL tokens."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    END = "end"


KEYWORDS = {
    "SELECT",
    "FROM",
    "JOIN",
    "INNER",
    "ON",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "AS",
    "LIKE",
    "ILIKE",
    "IN",
    "BETWEEN",
    "IS",
    "NULL",
    "TRUE",
    "FALSE",
    "DISTINCT",
    "GROUP",
    "ORDER",
    "BY",
    "ASC",
    "DESC",
    "LIMIT",
    "COUNT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
}

_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">")
_PUNCTUATION = "(),.*"


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    type: TokenType
    value: str
    position: int

    def matches_keyword(self, keyword: str) -> bool:
        """True if this token is the given keyword (case-insensitive)."""
        return self.type is TokenType.KEYWORD and self.value == keyword.upper()


class LexError(ValueError):
    """Raised on unrecognizable input."""


def tokenize(text: str) -> list[Token]:
    """Split SQL text into tokens (ending with a synthetic END token)."""
    tokens: list[Token] = []
    position = 0
    length = len(text)

    while position < length:
        char = text[position]

        if char.isspace():
            position += 1
            continue

        if char == "'":
            end = position + 1
            chunks = []
            while True:
                if end >= length:
                    raise LexError(f"unterminated string literal starting at {position}")
                if text[end] == "'":
                    if end + 1 < length and text[end + 1] == "'":
                        chunks.append("'")
                        end += 2
                        continue
                    break
                chunks.append(text[end])
                end += 1
            tokens.append(Token(TokenType.STRING, "".join(chunks), position))
            position = end + 1
            continue

        matched_operator = False
        for operator in _OPERATORS:
            if text.startswith(operator, position):
                value = "!=" if operator == "<>" else operator
                tokens.append(Token(TokenType.OPERATOR, value, position))
                position += len(operator)
                matched_operator = True
                break
        if matched_operator:
            continue

        if char in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, char, position))
            position += 1
            continue

        if char.isdigit() or (char == "-" and position + 1 < length and text[position + 1].isdigit()):
            end = position + 1
            seen_dot = False
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    # A dot followed by a non-digit is punctuation, not a decimal point.
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            tokens.append(Token(TokenType.NUMBER, text[position:end], position))
            position = end
            continue

        if char.isalpha() or char == "_":
            end = position + 1
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[position:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, position))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, position))
            position = end
            continue

        raise LexError(f"unexpected character {char!r} at position {position}")

    tokens.append(Token(TokenType.END, "", length))
    return tokens

"""SQL front end.

A tokenizer and recursive-descent parser for the SQL subset used by the
paper's workloads: ``SELECT`` lists, ``FROM`` with inner ``JOIN ... ON``
equi-joins, and ``WHERE`` clauses made of comparisons, ``LIKE``/``ILIKE``,
``IN``, ``BETWEEN``, ``IS [NOT] NULL``, combined with ``AND`` / ``OR`` /
``NOT`` and parentheses.  ``parse_query`` returns a bound
:class:`~repro.plan.query.Query`.
"""

from repro.sql.parser import ParseError, parse_expression, parse_query

__all__ = ["ParseError", "parse_expression", "parse_query"]

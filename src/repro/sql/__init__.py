"""SQL front end.

A tokenizer and recursive-descent parser for the SQL subset used by the
paper's workloads: ``SELECT`` lists, ``FROM`` with inner ``JOIN ... ON``
equi-joins, and ``WHERE`` clauses made of comparisons, ``LIKE``/``ILIKE``,
``IN``, ``BETWEEN``, ``IS [NOT] NULL``, combined with ``AND`` / ``OR`` /
``NOT`` and parentheses.  ``parse_query`` returns a bound
:class:`~repro.plan.query.Query`.

``parse_query_cached`` memoizes parsing on the raw SQL text (after trivial
whitespace normalization).  The service layer uses it on its hot path:
repeated query texts skip the tokenizer and parser entirely.  Because cached
calls return the *same* :class:`~repro.plan.query.Query` object, callers
must treat the result as immutable — which every planner already does.
"""

from functools import lru_cache

from repro.sql.parser import ParseError, parse_expression, parse_query

#: Number of distinct query texts memoized by :func:`parse_query_cached`.
PARSE_CACHE_SIZE = 1024


@lru_cache(maxsize=PARSE_CACHE_SIZE)
def _parse_normalized(sql: str):
    return parse_query(sql)


def parse_query_cached(sql: str):
    """Parse ``sql`` into a bound Query, memoizing on the normalized text.

    Normalization collapses runs of whitespace so reformatted copies of one
    query (the common case in templated workloads) share a cache entry.
    Whitespace inside string literals is preserved by the conservative rule
    of only normalizing texts without quotes.
    """
    if "'" not in sql and '"' not in sql:
        sql = " ".join(sql.split())
    return _parse_normalized(sql)


def parse_cache_info():
    """Hit/miss statistics of the parse cache (``functools`` CacheInfo)."""
    return _parse_normalized.cache_info()


def clear_parse_cache() -> None:
    """Drop all memoized parses (mainly for tests)."""
    _parse_normalized.cache_clear()


__all__ = [
    "ParseError",
    "parse_expression",
    "parse_query",
    "parse_query_cached",
    "parse_cache_info",
    "clear_parse_cache",
    "PARSE_CACHE_SIZE",
]

"""Recursive-descent SQL parser producing bound queries.

Grammar (informally)::

    query       := SELECT [DISTINCT] select_list FROM table_ref
                   (JOIN table_ref ON join_cond)* [WHERE expr]
                   [GROUP BY column (',' column)*]
                   [ORDER BY order_item (',' order_item)*]
                   [LIMIT number]
    select_list := '*' | select_item (',' select_item)*
    select_item := column | aggregate
    aggregate   := COUNT '(' ('*' | [DISTINCT] column) ')'
                 | (SUM|AVG|MIN|MAX) '(' column ')'
    order_item  := (column | aggregate) [ASC | DESC]
    table_ref   := identifier [AS] identifier
    join_cond   := column '=' column (AND column '=' column)*
    expr        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | primary
    primary     := '(' expr ')' | predicate
    predicate   := operand comparison | operand [NOT] LIKE/ILIKE string
                 | operand [NOT] IN '(' literal (',' literal)* ')'
                 | operand [NOT] BETWEEN literal AND literal
                 | operand IS [NOT] NULL
    operand     := column | literal
    column      := identifier '.' identifier
"""

from __future__ import annotations

from repro.expr.ast import (
    BetweenPredicate,
    BooleanExpr,
    ColumnRef,
    Comparison,
    InPredicate,
    IsNullPredicate,
    LikePredicate,
    Literal,
    NotExpr,
    ValueExpr,
    flatten,
)
from repro.expr.builders import and_, or_
from repro.plan.postselect import AggregateFunction, AggregateSpec, OrderItem
from repro.plan.query import JoinCondition, Query
from repro.sql.lexer import Token, TokenType, tokenize

_AGGREGATE_KEYWORDS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


class ParseError(ValueError):
    """Raised on syntactically invalid SQL."""


class _Parser:
    """Token-stream cursor with the parsing routines."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # ------------------------------------------------------------------ #
    # Cursor helpers
    # ------------------------------------------------------------------ #
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.END:
            self._position += 1
        return token

    def _check_keyword(self, keyword: str) -> bool:
        return self._peek().matches_keyword(keyword)

    def _accept_keyword(self, keyword: str) -> bool:
        if self._check_keyword(keyword):
            self._advance()
            return True
        return False

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            token = self._peek()
            raise ParseError(
                f"expected keyword {keyword!r} at position {token.position}, got {token.value!r}"
            )

    def _accept_punctuation(self, value: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCTUATION and token.value == value:
            self._advance()
            return True
        return False

    def _expect_punctuation(self, value: str) -> None:
        if not self._accept_punctuation(value):
            token = self._peek()
            raise ParseError(
                f"expected {value!r} at position {token.position}, got {token.value!r}"
            )

    def _expect_identifier(self) -> str:
        token = self._peek()
        if token.type is not TokenType.IDENTIFIER:
            raise ParseError(
                f"expected identifier at position {token.position}, got {token.value!r}"
            )
        self._advance()
        return token.value

    # ------------------------------------------------------------------ #
    # Query
    # ------------------------------------------------------------------ #
    def parse_query(self) -> Query:
        """Parse a full SELECT statement."""
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        plain_columns, aggregates = self._parse_select_list()

        self._expect_keyword("FROM")
        tables: dict[str, str] = {}
        table_name, alias = self._parse_table_ref()
        tables[alias] = table_name

        join_conditions: list[JoinCondition] = []
        while self._check_keyword("JOIN") or self._check_keyword("INNER"):
            self._accept_keyword("INNER")
            self._expect_keyword("JOIN")
            table_name, alias = self._parse_table_ref()
            if alias in tables:
                raise ParseError(f"duplicate table alias {alias!r}")
            tables[alias] = table_name
            self._expect_keyword("ON")
            join_conditions.extend(self._parse_join_conditions())

        predicate: BooleanExpr | None = None
        if self._accept_keyword("WHERE"):
            predicate = flatten(self._parse_expression())

        group_by = self._parse_group_by()
        order_by = self._parse_order_by()
        limit = self._parse_limit()

        trailing = self._peek()
        if trailing.type is not TokenType.END:
            raise ParseError(
                f"unexpected trailing input at position {trailing.position}: {trailing.value!r}"
            )

        select = self._resolve_physical_select(plain_columns, aggregates, group_by, order_by)

        return Query(
            tables=tables,
            join_conditions=join_conditions,
            predicate=predicate,
            select=select,
            distinct=distinct,
            aggregates=aggregates,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
        )

    def _parse_select_list(self) -> tuple[list[ColumnRef], list[AggregateSpec]]:
        if self._accept_punctuation("*"):
            return [], []
        plain_columns: list[ColumnRef] = []
        aggregates: list[AggregateSpec] = []

        def parse_item() -> None:
            if self._peek_aggregate_keyword():
                aggregates.append(self._parse_aggregate())
            else:
                plain_columns.append(self._parse_column())

        parse_item()
        while self._accept_punctuation(","):
            parse_item()
        return plain_columns, aggregates

    def _peek_aggregate_keyword(self) -> bool:
        token = self._peek()
        next_token = self._peek(1)
        return (
            token.type is TokenType.KEYWORD
            and token.value in _AGGREGATE_KEYWORDS
            and next_token.type is TokenType.PUNCTUATION
            and next_token.value == "("
        )

    def _parse_aggregate(self) -> AggregateSpec:
        token = self._advance()
        function = AggregateFunction(token.value)
        self._expect_punctuation("(")
        distinct = False
        argument: ColumnRef | None = None
        if function is AggregateFunction.COUNT and self._accept_punctuation("*"):
            argument = None
        else:
            distinct = self._accept_keyword("DISTINCT")
            argument = self._parse_column()
        self._expect_punctuation(")")
        try:
            return AggregateSpec(function, argument, distinct=distinct)
        except ValueError as error:
            raise ParseError(str(error)) from None

    def _parse_group_by(self) -> list[ColumnRef]:
        if not self._accept_keyword("GROUP"):
            return []
        self._expect_keyword("BY")
        columns = [self._parse_column()]
        while self._accept_punctuation(","):
            columns.append(self._parse_column())
        return columns

    def _parse_order_by(self) -> list[OrderItem]:
        if not self._accept_keyword("ORDER"):
            return []
        self._expect_keyword("BY")
        items = [self._parse_order_item()]
        while self._accept_punctuation(","):
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> OrderItem:
        if self._peek_aggregate_keyword():
            key = self._parse_aggregate().label()
        else:
            key = self._parse_column().key()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return OrderItem(key, descending=descending)

    def _parse_limit(self) -> int | None:
        if not self._accept_keyword("LIMIT"):
            return None
        token = self._peek()
        if token.type is not TokenType.NUMBER or "." in token.value:
            raise ParseError(f"LIMIT requires an integer at position {token.position}")
        self._advance()
        return int(token.value)

    def _resolve_physical_select(
        self,
        plain_columns: list[ColumnRef],
        aggregates: list[AggregateSpec],
        group_by: list[ColumnRef],
        order_by: list[OrderItem],
    ) -> list[ColumnRef]:
        """The columns the execution engine must materialize.

        For aggregate queries the engine materializes the GROUP BY columns and
        every aggregate argument; the plain SELECT columns must all appear in
        the GROUP BY clause (standard SQL).  For plain queries the engine
        materializes the SELECT list, and ORDER BY keys must be among the
        output columns (trivially true for ``SELECT *``).
        """
        if aggregates:
            group_keys = {column.key() for column in group_by}
            for column in plain_columns:
                if column.key() not in group_keys:
                    raise ParseError(
                        f"column {column.key()} must appear in the GROUP BY clause"
                    )
            physical: list[ColumnRef] = []
            seen: set[str] = set()
            for column in list(group_by) + [
                aggregate.argument for aggregate in aggregates if aggregate.argument is not None
            ]:
                if column.key() not in seen:
                    seen.add(column.key())
                    physical.append(column)
            allowed_order_keys = group_keys | {aggregate.label() for aggregate in aggregates}
            for item in order_by:
                if item.key not in allowed_order_keys:
                    raise ParseError(
                        f"ORDER BY key {item.key!r} must be a GROUP BY column or a "
                        f"selected aggregate"
                    )
            return physical

        if plain_columns:
            selected_keys = {column.key() for column in plain_columns}
            for item in order_by:
                if item.key not in selected_keys:
                    raise ParseError(
                        f"ORDER BY key {item.key!r} is not in the SELECT list"
                    )
        return plain_columns

    def _parse_table_ref(self) -> tuple[str, str]:
        table_name = self._expect_identifier()
        alias = table_name
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        return table_name, alias

    def _parse_join_conditions(self) -> list[JoinCondition]:
        conditions = [self._parse_single_join_condition()]
        while self._accept_keyword("AND"):
            conditions.append(self._parse_single_join_condition())
        return conditions

    def _parse_single_join_condition(self) -> JoinCondition:
        left = self._parse_column()
        token = self._peek()
        if token.type is not TokenType.OPERATOR or token.value != "=":
            raise ParseError(
                f"join conditions must be equalities; got {token.value!r} at {token.position}"
            )
        self._advance()
        right = self._parse_column()
        return JoinCondition(left, right)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def _parse_expression(self) -> BooleanExpr:
        return self._parse_or()

    def _parse_or(self) -> BooleanExpr:
        operands = [self._parse_and()]
        while self._accept_keyword("OR"):
            operands.append(self._parse_and())
        return operands[0] if len(operands) == 1 else or_(*operands)

    def _parse_and(self) -> BooleanExpr:
        operands = [self._parse_not()]
        while self._accept_keyword("AND"):
            operands.append(self._parse_not())
        return operands[0] if len(operands) == 1 else and_(*operands)

    def _parse_not(self) -> BooleanExpr:
        if self._accept_keyword("NOT"):
            return flatten(NotExpr(self._parse_not()))
        return self._parse_primary()

    def _parse_primary(self) -> BooleanExpr:
        if self._accept_punctuation("("):
            expr = self._parse_expression()
            self._expect_punctuation(")")
            return expr
        return self._parse_predicate()

    def _parse_predicate(self) -> BooleanExpr:
        operand = self._parse_operand()

        negated = self._accept_keyword("NOT")

        if self._accept_keyword("LIKE") or self._check_keyword("ILIKE"):
            case_insensitive = self._accept_keyword("ILIKE")
            pattern_token = self._peek()
            if pattern_token.type is not TokenType.STRING:
                raise ParseError(
                    f"LIKE pattern must be a string literal at position {pattern_token.position}"
                )
            self._advance()
            predicate: BooleanExpr = LikePredicate(
                operand, pattern_token.value, case_insensitive=case_insensitive
            )
            return flatten(NotExpr(predicate)) if negated else predicate

        if self._accept_keyword("IN"):
            self._expect_punctuation("(")
            values = [self._parse_literal_value()]
            while self._accept_punctuation(","):
                values.append(self._parse_literal_value())
            self._expect_punctuation(")")
            predicate = InPredicate(operand, values)
            return flatten(NotExpr(predicate)) if negated else predicate

        if self._accept_keyword("BETWEEN"):
            low = Literal(self._parse_literal_value())
            self._expect_keyword("AND")
            high = Literal(self._parse_literal_value())
            predicate = BetweenPredicate(operand, low, high)
            return flatten(NotExpr(predicate)) if negated else predicate

        if negated:
            token = self._peek()
            raise ParseError(
                f"expected LIKE/ILIKE, IN or BETWEEN after NOT at position {token.position}"
            )

        if self._accept_keyword("IS"):
            is_negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return IsNullPredicate(operand, negated=is_negated)

        token = self._peek()
        if token.type is TokenType.OPERATOR:
            self._advance()
            right = self._parse_operand()
            return Comparison(operand, token.value, right)

        raise ParseError(f"expected a predicate at position {token.position}")

    def _parse_operand(self) -> ValueExpr:
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            return self._parse_column()
        if token.type in (TokenType.NUMBER, TokenType.STRING) or token.matches_keyword(
            "NULL"
        ) or token.matches_keyword("TRUE") or token.matches_keyword("FALSE"):
            return Literal(self._parse_literal_value())
        raise ParseError(f"expected column or literal at position {token.position}")

    def _parse_column(self) -> ColumnRef:
        alias = self._expect_identifier()
        self._expect_punctuation(".")
        column = self._expect_identifier()
        return ColumnRef(alias, column)

    def _parse_literal_value(self):
        token = self._advance()
        if token.type is TokenType.NUMBER:
            return float(token.value) if "." in token.value else int(token.value)
        if token.type is TokenType.STRING:
            return token.value
        if token.matches_keyword("NULL"):
            return None
        if token.matches_keyword("TRUE"):
            return True
        if token.matches_keyword("FALSE"):
            return False
        raise ParseError(f"expected a literal at position {token.position}")


def parse_query(sql: str) -> Query:
    """Parse a SELECT statement into a bound :class:`~repro.plan.query.Query`."""
    return _Parser(tokenize(sql)).parse_query()


def parse_expression(sql: str) -> BooleanExpr:
    """Parse a standalone boolean expression (useful in tests and workloads)."""
    parser = _Parser(tokenize(sql))
    expr = parser._parse_expression()
    trailing = parser._peek()
    if trailing.type is not TokenType.END:
        raise ParseError(
            f"unexpected trailing input at position {trailing.position}: {trailing.value!r}"
        )
    return flatten(expr)

"""repro — tagged execution for disjunctive query optimization.

A Python reproduction of *"Optimizing Disjunctive Queries with Tagged
Execution"* (Kim & Madden, SIGMOD 2024).  The package contains a small
column-oriented query engine that can execute queries under two models:

* the **traditional execution model** with the BDisj / BPushConj planners the
  paper uses as baselines, and
* the **tagged execution model** — the paper's contribution — where tuples
  are grouped into relational slices tagged with the predicate subexpressions
  they satisfy, and operators use those tags to skip redundant work.

Typical usage::

    from repro import Session, Catalog, Table

    catalog = Catalog([
        Table.from_dict("title", {"id": [1, 2], "production_year": [2008, 1994]}),
        Table.from_dict("movie_info_idx", {"movie_id": [1, 2], "info": [9.0, 9.3]}),
    ])
    session = Session(catalog)
    result = session.execute(
        "SELECT * FROM title AS t JOIN movie_info_idx AS mi ON t.id = mi.movie_id "
        "WHERE (t.production_year > 2000 AND mi.info > 7.0) "
        "   OR (t.production_year > 1980 AND mi.info > 8.0)"
    )

See :mod:`repro.workloads` for the paper's synthetic and IMDB/JOB-style
workloads and :mod:`repro.bench` for the harness that regenerates every
figure in the evaluation.
"""

from repro.engine.result import QueryResult
from repro.engine.session import PreparedPlan, Session
from repro.mutation import CatalogSnapshot, MutationBatch, MutationCommit
from repro.service import QueryService
from repro.expr.builders import and_, between, col, ilike, in_, is_null, like, lit, not_, or_
from repro.plan.postselect import AggregateFunction, AggregateSpec, OrderItem
from repro.plan.query import JoinCondition, Query
from repro.sql.parser import parse_expression, parse_query
from repro.storage.catalog import Catalog
from repro.storage.column import Column, ColumnType
from repro.storage.table import Table

__version__ = "1.1.0"

__all__ = [
    "AggregateFunction",
    "AggregateSpec",
    "Catalog",
    "CatalogSnapshot",
    "Column",
    "ColumnType",
    "JoinCondition",
    "MutationBatch",
    "MutationCommit",
    "OrderItem",
    "PreparedPlan",
    "Query",
    "QueryResult",
    "QueryService",
    "Session",
    "Table",
    "and_",
    "between",
    "col",
    "ilike",
    "in_",
    "is_null",
    "like",
    "lit",
    "not_",
    "or_",
    "parse_expression",
    "parse_query",
    "__version__",
]

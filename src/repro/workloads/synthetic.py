"""The synthetic workload of Section 5.2.

Three tables ``T0``, ``T1``, ``T2``:

* ``T0.id`` is a primary key with unique values ``1 .. N``;
* ``T1.fid`` and ``T2.fid`` are foreign keys drawn from a Zipf distribution
  with shape 1.5 (truncated to ``1 .. N``);
* predicate attributes ``A1 .. Ak`` are uniform in ``[0, 1)``.

The DNF base query is::

    SELECT * FROM T0 JOIN T1 ON T0.id = T1.fid JOIN T2 ON T0.id = T2.fid
    WHERE (T1.A1 < s AND T2.A1 < s) OR (T1.A2 < s AND T2.A2 < s)

and the CNF version swaps ANDs and ORs.  ``make_dnf_query`` /
``make_cnf_query`` generalize both to a configurable number of root clauses,
selectivity, and an optional *outer conjunctive factor* (an additional
``T0.A1 < f`` term, conjoined for CNF and added to every clause for DNF).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.expr.ast import BooleanExpr
from repro.expr.builders import and_, col, lit, or_
from repro.plan.query import JoinCondition, Query
from repro.storage.catalog import Catalog
from repro.storage.column import Column, ColumnType
from repro.storage.table import Table


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the synthetic dataset."""

    table_size: int = 10_000
    num_attributes: int = 7
    zipf_shape: float = 1.5
    seed: int = 42


def _zipf_foreign_keys(rng: np.random.Generator, size: int, max_value: int, shape: float) -> np.ndarray:
    """Zipf-distributed foreign keys truncated to ``1 .. max_value``."""
    keys = np.empty(size, dtype=np.int64)
    filled = 0
    while filled < size:
        draw = rng.zipf(shape, size=size)
        draw = draw[draw <= max_value]
        take = min(size - filled, draw.size)
        keys[filled:filled + take] = draw[:take]
        filled += take
    return keys


def generate_synthetic_catalog(config: SyntheticConfig | None = None) -> Catalog:
    """Generate the T0/T1/T2 synthetic dataset."""
    config = config or SyntheticConfig()
    rng = np.random.default_rng(config.seed)
    size = config.table_size

    def attribute_columns(prefix_rng: np.random.Generator) -> list[Column]:
        return [
            Column(f"A{index}", prefix_rng.random(size), ctype=ColumnType.FLOAT)
            for index in range(1, config.num_attributes + 1)
        ]

    t0_columns = [Column("id", np.arange(1, size + 1), ctype=ColumnType.INT)]
    t0_columns.extend(attribute_columns(rng))

    t1_columns = [
        Column(
            "fid",
            _zipf_foreign_keys(rng, size, size, config.zipf_shape),
            ctype=ColumnType.INT,
        )
    ]
    t1_columns.extend(attribute_columns(rng))

    t2_columns = [
        Column(
            "fid",
            _zipf_foreign_keys(rng, size, size, config.zipf_shape),
            ctype=ColumnType.INT,
        )
    ]
    t2_columns.extend(attribute_columns(rng))

    return Catalog(
        [
            Table("T0", t0_columns),
            Table("T1", t1_columns),
            Table("T2", t2_columns),
        ]
    )


def _synthetic_query_skeleton() -> tuple[dict[str, str], list[JoinCondition]]:
    tables = {"T0": "T0", "T1": "T1", "T2": "T2"}
    joins = [
        JoinCondition(col("T0", "id"), col("T1", "fid")),
        JoinCondition(col("T0", "id"), col("T2", "fid")),
    ]
    return tables, joins


def make_dnf_query(
    num_root_clauses: int = 2,
    selectivity: float = 0.2,
    outer_factor: float | None = None,
    name: str = "",
) -> Query:
    """The DNF synthetic query with the given parameters."""
    if num_root_clauses < 1:
        raise ValueError("num_root_clauses must be at least 1")
    tables, joins = _synthetic_query_skeleton()

    clauses: list[BooleanExpr] = []
    for index in range(1, num_root_clauses + 1):
        parts = [
            col("T1", f"A{index}") < lit(selectivity),
            col("T2", f"A{index}") < lit(selectivity),
        ]
        if outer_factor is not None:
            parts.insert(0, col("T0", "A1") < lit(outer_factor))
        clauses.append(and_(*parts))

    predicate = clauses[0] if len(clauses) == 1 else or_(*clauses)
    return Query(
        tables=tables,
        join_conditions=joins,
        predicate=predicate,
        name=name or f"synthetic_dnf_k{num_root_clauses}_s{selectivity}",
    )


def make_cnf_query(
    num_root_clauses: int = 2,
    selectivity: float = 0.2,
    outer_factor: float | None = None,
    name: str = "",
) -> Query:
    """The CNF synthetic query with the given parameters."""
    if num_root_clauses < 1:
        raise ValueError("num_root_clauses must be at least 1")
    tables, joins = _synthetic_query_skeleton()

    clauses: list[BooleanExpr] = []
    for index in range(1, num_root_clauses + 1):
        clauses.append(
            or_(
                col("T1", f"A{index}") < lit(selectivity),
                col("T2", f"A{index}") < lit(selectivity),
            )
        )
    if outer_factor is not None:
        clauses.insert(0, col("T0", "A1") < lit(outer_factor))

    predicate = clauses[0] if len(clauses) == 1 else and_(*clauses)
    return Query(
        tables=tables,
        join_conditions=joins,
        predicate=predicate,
        name=name or f"synthetic_cnf_k{num_root_clauses}_s{selectivity}",
    )

"""Workloads: datasets and queries used by the paper's evaluation.

* :mod:`repro.workloads.synthetic` — the Section 5.2 synthetic workload:
  three Zipf-keyed tables and parameterized DNF/CNF queries.
* :mod:`repro.workloads.imdb` — a synthetic IMDB-like dataset with the Join
  Order Benchmark schema (substitute for the real IMDB dump, which cannot be
  shipped).
* :mod:`repro.workloads.job` — 33 disjunctive query groups over that schema,
  mirroring how the paper combines the queries of each JOB group.
"""

from repro.workloads.imdb import generate_imdb_catalog
from repro.workloads.job import job_query_groups
from repro.workloads.synthetic import (
    SyntheticConfig,
    generate_synthetic_catalog,
    make_cnf_query,
    make_dnf_query,
)

__all__ = [
    "SyntheticConfig",
    "generate_imdb_catalog",
    "generate_synthetic_catalog",
    "job_query_groups",
    "make_cnf_query",
    "make_dnf_query",
]

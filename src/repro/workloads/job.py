"""Disjunctive query groups in the style of the Join Order Benchmark.

The paper builds its workload by taking each of JOB's 33 query groups and
OR-ing together the predicate expressions of the queries inside the group
(Section 5.1).  The real JOB queries reference the licensed IMDB dump, so
this module defines 33 *analogue* query groups over the synthetic IMDB-like
schema of :mod:`repro.workloads.imdb`.  Each group follows the same recipe as
the paper's combined queries:

* all clauses share the group's join graph (2-4 tables);
* the clauses share one or more *common subexpressions* (the group's theme —
  a keyword, a kind, an info type), which is what makes the Figure 3b
  factoring experiment meaningful;
* the varying parts mix cheap comparisons with expensive pattern-matching
  predicates, and span more than one table, so conjunctive planners cannot
  push them down.

``job_query_groups()`` returns the 33 queries, named ``job01`` .. ``job33``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.expr.builders import and_, col, ilike, in_, lit, or_
from repro.plan.query import JoinCondition, Query


@dataclass(frozen=True)
class QueryGroupSpec:
    """Parameters of one JOB-style query group."""

    index: int
    template: str
    years: tuple[int, ...]
    ratings: tuple[float, ...]
    patterns: tuple[str, ...]
    keywords: tuple[str, ...]
    countries: tuple[str, ...] = ("[us]", "[gb]")


# --------------------------------------------------------------------------- #
# Templates
# --------------------------------------------------------------------------- #
def _rating_year_group(spec: QueryGroupSpec) -> Query:
    """title x movie_info_idx: year/rating disjunction (Query 1 style)."""
    tables = {"t": "title", "mi_idx": "movie_info_idx"}
    joins = [JoinCondition(col("t", "id"), col("mi_idx", "movie_id"))]
    common = col("mi_idx", "info_type_id").eq(99)
    clauses = [
        and_(common, col("t", "production_year") > lit(spec.years[0]),
             col("mi_idx", "info") > lit(spec.ratings[0])),
        and_(common, col("t", "production_year") > lit(spec.years[1]),
             col("mi_idx", "info") > lit(spec.ratings[1])),
    ]
    if len(spec.patterns) > 0:
        clauses.append(
            and_(common, ilike(col("t", "title"), spec.patterns[0]),
                 col("mi_idx", "info") > lit(spec.ratings[1]))
        )
    return Query(tables, joins, or_(*clauses), name=f"job{spec.index:02d}")


def _keyword_theme_group(spec: QueryGroupSpec) -> Query:
    """title x movie_keyword x keyword: themed keyword plus varying clauses."""
    tables = {"t": "title", "mk": "movie_keyword", "k": "keyword"}
    joins = [
        JoinCondition(col("t", "id"), col("mk", "movie_id")),
        JoinCondition(col("mk", "keyword_id"), col("k", "id")),
    ]
    common = in_(col("k", "keyword"), list(spec.keywords))
    clauses = [
        and_(common, col("t", "production_year") > lit(spec.years[0]),
             ilike(col("t", "title"), spec.patterns[0])),
        and_(common, col("t", "production_year") > lit(spec.years[1]),
             col("t", "kind_id").eq(1)),
    ]
    return Query(tables, joins, or_(*clauses), name=f"job{spec.index:02d}")


def _character_group(spec: QueryGroupSpec) -> Query:
    """title x cast_info x char_name: superhero-style character clauses."""
    tables = {"t": "title", "ci": "cast_info", "chn": "char_name"}
    joins = [
        JoinCondition(col("t", "id"), col("ci", "movie_id")),
        JoinCondition(col("ci", "person_role_id"), col("chn", "id")),
    ]
    common = col("t", "kind_id").eq(1)
    clauses = [
        and_(common, col("t", "production_year") > lit(spec.years[0]),
             col("chn", "name").eq(spec.keywords[0])),
        and_(common, col("t", "production_year") > lit(spec.years[1]),
             ilike(col("chn", "name"), spec.patterns[0])),
    ]
    if len(spec.patterns) > 1:
        clauses.append(
            and_(common, ilike(col("chn", "name"), spec.patterns[1]),
                 col("t", "production_year") > lit(spec.years[1]))
        )
    return Query(tables, joins, or_(*clauses), name=f"job{spec.index:02d}")


def _company_group(spec: QueryGroupSpec) -> Query:
    """title x movie_companies x company_name: production-company clauses."""
    tables = {"t": "title", "mc": "movie_companies", "cn": "company_name"}
    joins = [
        JoinCondition(col("t", "id"), col("mc", "movie_id")),
        JoinCondition(col("mc", "company_id"), col("cn", "id")),
    ]
    common = col("mc", "company_type_id").eq(1)
    clauses = [
        and_(common, col("cn", "country_code").eq(spec.countries[0]),
             col("t", "production_year") > lit(spec.years[0])),
        and_(common, ilike(col("cn", "name"), spec.patterns[0]),
             col("t", "production_year") > lit(spec.years[1])),
    ]
    return Query(tables, joins, or_(*clauses), name=f"job{spec.index:02d}")


def _rating_keyword_group(spec: QueryGroupSpec) -> Query:
    """title x movie_info_idx x movie_keyword x keyword: four-table group."""
    tables = {
        "t": "title",
        "mi_idx": "movie_info_idx",
        "mk": "movie_keyword",
        "k": "keyword",
    }
    joins = [
        JoinCondition(col("t", "id"), col("mi_idx", "movie_id")),
        JoinCondition(col("t", "id"), col("mk", "movie_id")),
        JoinCondition(col("mk", "keyword_id"), col("k", "id")),
    ]
    common = in_(col("k", "keyword"), list(spec.keywords))
    clauses = [
        and_(common, col("mi_idx", "info") > lit(spec.ratings[0]),
             col("t", "production_year") > lit(spec.years[0])),
        and_(common, col("mi_idx", "info") > lit(spec.ratings[1]),
             ilike(col("t", "title"), spec.patterns[0])),
    ]
    return Query(tables, joins, or_(*clauses), name=f"job{spec.index:02d}")


def _person_group(spec: QueryGroupSpec) -> Query:
    """title x cast_info x name: actor-centric clauses."""
    tables = {"t": "title", "ci": "cast_info", "n": "name"}
    joins = [
        JoinCondition(col("t", "id"), col("ci", "movie_id")),
        JoinCondition(col("ci", "person_id"), col("n", "id")),
    ]
    common = col("ci", "role_id").eq(1)
    clauses = [
        and_(common, col("n", "gender").eq("f"),
             col("t", "production_year") > lit(spec.years[0])),
        and_(common, ilike(col("n", "name"), spec.patterns[0]),
             col("t", "production_year") > lit(spec.years[1])),
    ]
    return Query(tables, joins, or_(*clauses), name=f"job{spec.index:02d}")


_TEMPLATES = {
    "rating_year": _rating_year_group,
    "keyword_theme": _keyword_theme_group,
    "character": _character_group,
    "company": _company_group,
    "rating_keyword": _rating_keyword_group,
    "person": _person_group,
}


# --------------------------------------------------------------------------- #
# The 33 groups
# --------------------------------------------------------------------------- #
_GROUP_SPECS: list[QueryGroupSpec] = [
    QueryGroupSpec(1, "rating_year", (2000, 1980), (7.0, 8.0), ("%dark%",), ()),
    QueryGroupSpec(2, "keyword_theme", (1995, 2005), (), ("%love%",), ("love", "romantic")),
    QueryGroupSpec(3, "company", (1990, 2000), (), ("%films%",), (), ("[us]", "[gb]")),
    QueryGroupSpec(4, "rating_keyword", (2000, 1985), (6.5, 8.5), ("%war%",), ("world-war-ii", "revenge")),
    QueryGroupSpec(5, "person", (1995, 2005), (), ("%smith%",), ()),
    QueryGroupSpec(6, "character", (1950, 2000), (), ("%man%", "%woman%"), ("Iron Man",)),
    QueryGroupSpec(7, "rating_year", (1990, 1970), (6.0, 7.5), ("%love%",), ()),
    QueryGroupSpec(8, "keyword_theme", (1980, 2000), (), ("%king%",), ("based-on-novel", "sequel")),
    QueryGroupSpec(9, "person", (1985, 2000), (), ("%garcia%",), ()),
    QueryGroupSpec(10, "company", (1995, 2010), (), ("%studios%",), (), ("[de]", "[fr]")),
    QueryGroupSpec(11, "rating_keyword", (1995, 1980), (7.5, 9.0), ("%night%",), ("murder", "serial-killer")),
    QueryGroupSpec(12, "rating_year", (2005, 1990), (7.5, 8.5), ("%world%",), ()),
    QueryGroupSpec(13, "keyword_theme", (1975, 1995), (), ("%dead%",), ("zombie", "vampire")),
    QueryGroupSpec(14, "character", (1970, 1995), (), ("%doctor%", "%captain%"), ("Superman",)),
    QueryGroupSpec(15, "company", (2000, 2010), (), ("%entertainment%",), (), ("[us]", "[jp]")),
    QueryGroupSpec(16, "person", (2000, 2010), (), ("%johnson%",), ()),
    QueryGroupSpec(17, "keyword_theme", (1990, 2005), (), ("%man%",), ("character-name-in-title",)),
    QueryGroupSpec(18, "rating_keyword", (2005, 1995), (8.0, 9.0), ("%star%",), ("space", "alien")),
    QueryGroupSpec(19, "person", (1990, 2005), (), ("%williams%",), ()),
    QueryGroupSpec(20, "character", (1950, 2000), (), ("%man%",), ("Iron Man",)),
    QueryGroupSpec(21, "company", (1985, 2000), (), ("%bros%",), (), ("[us]", "[ca]")),
    QueryGroupSpec(22, "rating_year", (1995, 1975), (6.5, 8.0), ("%city%",), ()),
    QueryGroupSpec(23, "keyword_theme", (2000, 2010), (), ("%game%",), ("dystopia", "time-travel")),
    QueryGroupSpec(24, "rating_keyword", (1990, 1975), (7.0, 8.5), ("%blood%",), ("martial-arts", "boxing")),
    QueryGroupSpec(25, "person", (1975, 1995), (), ("%miller%",), ()),
    QueryGroupSpec(26, "character", (1985, 2005), (), ("%agent%", "%detective%"), ("Batman",)),
    QueryGroupSpec(27, "company", (1995, 2005), (), ("%pictures%",), (), ("[gb]", "[fr]")),
    QueryGroupSpec(28, "keyword_theme", (1985, 2000), (), ("%house%",), ("ghost", "haunted"),),
    QueryGroupSpec(29, "rating_year", (2010, 1995), (7.0, 8.8), ("%secret%",), ()),
    QueryGroupSpec(30, "rating_keyword", (2000, 1990), (7.5, 8.8), ("%lord%",), ("wizard", "dragon")),
    QueryGroupSpec(31, "person", (1995, 2010), (), ("%davis%",), ()),
    QueryGroupSpec(32, "keyword_theme", (1995, 2008), (), ("%fire%",), ("heist", "robbery")),
    QueryGroupSpec(33, "character", (1960, 1990), (), ("%king%", "%queen%"), ("Wonder Woman",)),
]


def job_query_groups() -> list[Query]:
    """The 33 combined disjunctive queries, in group order."""
    queries = []
    for spec in _GROUP_SPECS:
        builder = _TEMPLATES[spec.template]
        queries.append(builder(spec))
    return queries


def job_query(group_index: int) -> Query:
    """The combined query of one group (1-based index, matching the paper)."""
    if not 1 <= group_index <= len(_GROUP_SPECS):
        raise ValueError(f"group index must be in 1..{len(_GROUP_SPECS)}, got {group_index}")
    spec = _GROUP_SPECS[group_index - 1]
    return _TEMPLATES[spec.template](spec)


def common_subexpression_keys(query: Query) -> set[str]:
    """Keys of the subexpressions shared by every root clause of ``query``.

    Used by tests to confirm each group has a factorable common theme.
    """
    predicate = query.predicate
    if predicate is None or not predicate.children():
        return set()
    clause_keysets = []
    for clause in predicate.children():
        parts = clause.children() if clause.children() else (clause,)
        clause_keysets.append({part.key() for part in parts})
    common = set(clause_keysets[0])
    for keyset in clause_keysets[1:]:
        common &= keyset
    return common

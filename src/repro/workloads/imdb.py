"""A synthetic IMDB-like dataset with the Join Order Benchmark schema.

The paper evaluates on the real IMDB dump used by the Join Order Benchmark.
That dump is several gigabytes and cannot be bundled, so this module
generates a *synthetic* dataset with the same schema and qualitatively
similar shape:

* Zipf-skewed foreign keys (a few blockbuster movies account for most of the
  ``movie_info_idx`` / ``cast_info`` / ``movie_keyword`` rows);
* production years concentrated in recent decades;
* ratings centred between 6 and 8 with a thin tail above 9;
* titles, character names, company names and keywords assembled from themed
  word pools so the JOB-style LIKE / equality predicates have realistic,
  widely varying selectivities.

``generate_imdb_catalog(scale=1.0)`` produces ~300k rows across 11 tables;
benchmarks use smaller scales.
"""

from __future__ import annotations

import numpy as np

from repro.storage.catalog import Catalog
from repro.storage.column import Column, ColumnType
from repro.storage.table import Table

#: Base table sizes at ``scale=1.0``.
BASE_SIZES = {
    "title": 50_000,
    "movie_info_idx": 60_000,
    "cast_info": 90_000,
    "char_name": 20_000,
    "name": 30_000,
    "movie_keyword": 70_000,
    "keyword": 4_000,
    "movie_companies": 45_000,
    "company_name": 8_000,
    "info_type": 113,
    "kind_type": 7,
}

_TITLE_THEME_WORDS = [
    "man", "dark", "love", "war", "world", "night", "king", "girl", "dead",
    "blood", "star", "house", "city", "lord", "story", "dream", "game",
    "return", "secret", "last", "shadow", "fire", "golden", "iron", "super",
]
_TITLE_FILLER_WORDS = [
    "the", "of", "a", "rising", "forever", "chronicles", "legacy", "origins",
    "untold", "beyond", "beneath", "broken", "silent", "crimson", "eternal",
    "hidden", "lost", "final", "first", "again",
]
_FAMOUS_TITLES = [
    "the godfather", "the dark knight", "the lord of the rings", "pulp fiction",
    "the shawshank redemption", "iron man", "superman returns", "batman begins",
    "the matrix", "avatar", "casablanca", "citizen kane", "vertigo", "jaws",
]
_CHARACTER_WORDS = [
    "man", "woman", "doctor", "captain", "agent", "detective", "king", "queen",
    "soldier", "teacher", "nurse", "officer", "driver", "reporter", "waiter",
]
_SUPERHERO_NAMES = [
    "Iron Man", "Spider-Man", "Superman", "Batman", "Wonder Woman", "Ant-Man",
    "Aquaman", "Catwoman", "Hawkman", "He-Man",
]
_FIRST_NAMES = [
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael",
    "linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen",
]
_LAST_NAMES = [
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
]
_KEYWORDS = [
    "superhero", "sequel", "based-on-novel", "murder", "love", "revenge",
    "marvel-comics", "dc-comics", "independent-film", "character-name-in-title",
    "female-nudity", "martial-arts", "world-war-ii", "robbery", "vampire",
    "zombie", "space", "time-travel", "dystopia", "serial-killer", "heist",
    "coming-of-age", "road-trip", "courtroom", "boxing", "chess", "hacker",
    "alien", "robot", "dragon", "wizard", "pirate", "ghost", "musical",
]
_COMPANY_SUFFIXES = [
    "pictures", "films", "studios", "entertainment", "productions", "media",
    "bros", "international", "cinema", "works",
]
_COUNTRY_CODES = ["[us]", "[gb]", "[fr]", "[de]", "[jp]", "[in]", "[ca]", "[it]", "[es]", "[au]"]
_KIND_NAMES = ["movie", "tv series", "tv movie", "video movie", "tv mini series", "video game", "episode"]
_INFO_NAMES = ["rating", "votes", "budget", "gross", "runtimes"]


def _scaled(base: int, scale: float, minimum: int = 10) -> int:
    return max(minimum, int(round(base * scale)))


def _zipf_keys(rng: np.random.Generator, size: int, max_value: int, shape: float = 1.4) -> np.ndarray:
    keys = np.empty(size, dtype=np.int64)
    filled = 0
    while filled < size:
        draw = rng.zipf(shape, size=size)
        draw = draw[draw <= max_value]
        take = min(size - filled, draw.size)
        keys[filled:filled + take] = draw[:take]
        filled += take
    # Map rank -> a shuffled id so the popular movies are spread across ids.
    permutation = rng.permutation(max_value) + 1
    return permutation[keys - 1]


def _make_titles(rng: np.random.Generator, count: int) -> list[str]:
    titles = []
    for index in range(count):
        if index < len(_FAMOUS_TITLES):
            titles.append(_FAMOUS_TITLES[index])
            continue
        num_words = int(rng.integers(2, 5))
        words = []
        for position in range(num_words):
            pool = _TITLE_THEME_WORDS if rng.random() < 0.45 else _TITLE_FILLER_WORDS
            words.append(pool[int(rng.integers(0, len(pool)))])
        titles.append(" ".join(words))
    return titles


def _make_years(rng: np.random.Generator, count: int) -> np.ndarray:
    # Recent decades dominate, matching IMDB's growth over time.
    fractions = rng.beta(4.0, 1.6, size=count)
    return (1930 + np.round(fractions * 93)).astype(np.int64)


def _make_ratings(rng: np.random.Generator, count: int) -> np.ndarray:
    ratings = rng.normal(6.6, 1.1, size=count)
    ratings = np.clip(ratings, 1.0, 9.9)
    # A thin tail of exceptional movies above 9.0.
    exceptional = rng.random(count) < 0.002
    ratings[exceptional] = rng.uniform(9.0, 9.6, size=int(exceptional.sum()))
    return np.round(ratings, 1)


def _make_character_names(rng: np.random.Generator, count: int) -> list[str]:
    names = []
    for index in range(count):
        if index < len(_SUPERHERO_NAMES):
            names.append(_SUPERHERO_NAMES[index])
            continue
        first = _FIRST_NAMES[int(rng.integers(0, len(_FIRST_NAMES)))].capitalize()
        if rng.random() < 0.3:
            word = _CHARACTER_WORDS[int(rng.integers(0, len(_CHARACTER_WORDS)))]
            names.append(f"{first} the {word}")
        else:
            last = _LAST_NAMES[int(rng.integers(0, len(_LAST_NAMES)))].capitalize()
            names.append(f"{first} {last}")
    return names


def _make_person_names(rng: np.random.Generator, count: int) -> list[str]:
    names = []
    for _ in range(count):
        first = _FIRST_NAMES[int(rng.integers(0, len(_FIRST_NAMES)))]
        last = _LAST_NAMES[int(rng.integers(0, len(_LAST_NAMES)))]
        names.append(f"{last}, {first}")
    return names


def _make_company_names(rng: np.random.Generator, count: int) -> list[str]:
    names = []
    for _ in range(count):
        stem = _LAST_NAMES[int(rng.integers(0, len(_LAST_NAMES)))]
        suffix = _COMPANY_SUFFIXES[int(rng.integers(0, len(_COMPANY_SUFFIXES)))]
        names.append(f"{stem} {suffix}")
    return names


def generate_imdb_catalog(scale: float = 0.05, seed: int = 7) -> Catalog:
    """Generate the synthetic IMDB-like catalog at the given scale factor."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    rng = np.random.default_rng(seed)
    sizes = {name: _scaled(base, scale) for name, base in BASE_SIZES.items()}
    sizes["info_type"] = BASE_SIZES["info_type"]
    sizes["kind_type"] = BASE_SIZES["kind_type"]

    num_titles = sizes["title"]
    title = Table(
        "title",
        [
            Column("id", np.arange(1, num_titles + 1), ctype=ColumnType.INT),
            Column("title", _make_titles(rng, num_titles), ctype=ColumnType.STRING),
            Column("production_year", _make_years(rng, num_titles), ctype=ColumnType.INT),
            Column(
                "kind_id",
                rng.choice(
                    np.arange(1, 8), size=num_titles, p=[0.55, 0.2, 0.08, 0.07, 0.04, 0.03, 0.03]
                ),
                ctype=ColumnType.INT,
            ),
        ],
    )

    num_mi = sizes["movie_info_idx"]
    movie_info_idx = Table(
        "movie_info_idx",
        [
            Column("id", np.arange(1, num_mi + 1), ctype=ColumnType.INT),
            Column("movie_id", _zipf_keys(rng, num_mi, num_titles), ctype=ColumnType.INT),
            Column(
                "info_type_id",
                rng.choice([99, 100, 101, 102, 103], size=num_mi, p=[0.4, 0.3, 0.15, 0.1, 0.05]),
                ctype=ColumnType.INT,
            ),
            Column("info", _make_ratings(rng, num_mi), ctype=ColumnType.FLOAT),
        ],
    )

    num_char = sizes["char_name"]
    char_name = Table(
        "char_name",
        [
            Column("id", np.arange(1, num_char + 1), ctype=ColumnType.INT),
            Column("name", _make_character_names(rng, num_char), ctype=ColumnType.STRING),
        ],
    )

    num_names = sizes["name"]
    name = Table(
        "name",
        [
            Column("id", np.arange(1, num_names + 1), ctype=ColumnType.INT),
            Column("name", _make_person_names(rng, num_names), ctype=ColumnType.STRING),
            Column(
                "gender",
                rng.choice(["m", "f"], size=num_names, p=[0.62, 0.38]),
                ctype=ColumnType.STRING,
            ),
        ],
    )

    num_cast = sizes["cast_info"]
    cast_info = Table(
        "cast_info",
        [
            Column("id", np.arange(1, num_cast + 1), ctype=ColumnType.INT),
            Column("movie_id", _zipf_keys(rng, num_cast, num_titles), ctype=ColumnType.INT),
            Column("person_id", rng.integers(1, num_names + 1, size=num_cast), ctype=ColumnType.INT),
            Column(
                "person_role_id",
                rng.integers(1, num_char + 1, size=num_cast),
                ctype=ColumnType.INT,
            ),
            Column(
                "role_id",
                rng.choice(np.arange(1, 12), size=num_cast),
                ctype=ColumnType.INT,
            ),
            Column(
                "note",
                rng.choice(
                    ["", "(voice)", "(uncredited)", "(as himself)", "(archive footage)"],
                    size=num_cast,
                    p=[0.6, 0.15, 0.1, 0.08, 0.07],
                ),
                ctype=ColumnType.STRING,
            ),
        ],
    )

    num_kw = sizes["keyword"]
    keyword_values = [
        _KEYWORDS[index] if index < len(_KEYWORDS) else f"keyword-{index}"
        for index in range(num_kw)
    ]
    keyword = Table(
        "keyword",
        [
            Column("id", np.arange(1, num_kw + 1), ctype=ColumnType.INT),
            Column("keyword", keyword_values, ctype=ColumnType.STRING),
        ],
    )

    num_mk = sizes["movie_keyword"]
    movie_keyword = Table(
        "movie_keyword",
        [
            Column("id", np.arange(1, num_mk + 1), ctype=ColumnType.INT),
            Column("movie_id", _zipf_keys(rng, num_mk, num_titles), ctype=ColumnType.INT),
            Column(
                "keyword_id",
                _zipf_keys(rng, num_mk, num_kw, shape=1.3),
                ctype=ColumnType.INT,
            ),
        ],
    )

    num_cn = sizes["company_name"]
    company_name = Table(
        "company_name",
        [
            Column("id", np.arange(1, num_cn + 1), ctype=ColumnType.INT),
            Column("name", _make_company_names(rng, num_cn), ctype=ColumnType.STRING),
            Column(
                "country_code",
                rng.choice(_COUNTRY_CODES, size=num_cn,
                           p=[0.45, 0.12, 0.08, 0.07, 0.07, 0.06, 0.05, 0.04, 0.03, 0.03]),
                ctype=ColumnType.STRING,
            ),
        ],
    )

    num_mc = sizes["movie_companies"]
    movie_companies = Table(
        "movie_companies",
        [
            Column("id", np.arange(1, num_mc + 1), ctype=ColumnType.INT),
            Column("movie_id", _zipf_keys(rng, num_mc, num_titles), ctype=ColumnType.INT),
            Column(
                "company_id",
                _zipf_keys(rng, num_mc, num_cn, shape=1.3),
                ctype=ColumnType.INT,
            ),
            Column(
                "company_type_id",
                rng.choice([1, 2], size=num_mc, p=[0.7, 0.3]),
                ctype=ColumnType.INT,
            ),
        ],
    )

    info_type = Table(
        "info_type",
        [
            Column("id", np.arange(1, sizes["info_type"] + 1), ctype=ColumnType.INT),
            Column(
                "info",
                [
                    _INFO_NAMES[index % len(_INFO_NAMES)] + (f"-{index}" if index >= len(_INFO_NAMES) else "")
                    for index in range(sizes["info_type"])
                ],
                ctype=ColumnType.STRING,
            ),
        ],
    )

    kind_type = Table(
        "kind_type",
        [
            Column("id", np.arange(1, sizes["kind_type"] + 1), ctype=ColumnType.INT),
            Column("kind", _KIND_NAMES[: sizes["kind_type"]], ctype=ColumnType.STRING),
        ],
    )

    return Catalog(
        [
            title,
            movie_info_idx,
            cast_info,
            char_name,
            name,
            movie_keyword,
            keyword,
            movie_companies,
            company_name,
            info_type,
            kind_type,
        ]
    )

"""The on-disk append log: mutating saved catalogs without rewriting them.

A saved dataset (see :mod:`repro.storage.disk`) is mutated by *appending*:

* ``append_rows_to_saved_catalog`` writes the new rows as a **segment
  directory** (``<table>/segment-<n>/<column>.values.npy`` + NULL masks) and
  records an ``append`` delta in the manifest's ordered ``mutations`` list —
  the base column files are untouched, so the write cost is O(new rows);
* ``delete_rows_from_saved_catalog`` evaluates a predicate against the
  current state and records the matching positions as a ``delete`` delta
  (``<table>/delete-<n>.npy``);
* :func:`repro.storage.disk.load_catalog` replays the records in order
  (``snapshot=K`` stops after K — time-travel reads);
* ``compact_saved_catalog`` folds the log back into flat column files,
  dropping deleted rows and rebuilding exact statistics and index sidecars.

Replay goes through the same column-extension / delete-bitmap primitives as
in-memory commits, so a loaded catalog is indistinguishable from one whose
mutations were applied live.

Since format v4 every mutation is **write-ahead logged** first: the public
append/delete entry points frame the operation as a JSON op, append it to
the dataset's WAL as one committed transaction (see
:mod:`repro.mutation.wal`), and only then let
:func:`apply_ops_to_saved_catalog` write the segment / delete files and the
manifest (atomically, recording the transaction as applied).  A crash
anywhere in between is repaired by :mod:`repro.mutation.recovery`, which
replays exactly this same ``apply_ops_to_saved_catalog`` from the WAL's own
payload — application is idempotent because file names derive from the
manifest's ``file_seq`` counter and the manifest only advances in the final
atomic rename.
"""

from __future__ import annotations

import csv
import json
import shutil
from pathlib import Path

import numpy as np

from repro.mutation.batch import MutationError, extend_column
from repro.storage.catalog import Catalog
from repro.storage.column import Column, ColumnType
from repro.storage.disk import (
    CatalogFormatError,
    FORMAT_VERSION,
    MANIFEST_NAME,
    _read_manifest,
    _values_for_save,
    _write_manifest,
    fsync_dir,
    fsync_file,
    load_catalog,
)
from repro.storage.table import Table
from repro.testing import faults


# --------------------------------------------------------------------------- #
# Manifest helpers
# --------------------------------------------------------------------------- #
def _table_entry(manifest: dict, table: str) -> dict:
    for entry in manifest.get("tables", []):
        if entry["name"] == table:
            return entry
    raise CatalogFormatError(f"unknown table {table!r} in {MANIFEST_NAME}")


def _mutation_records(manifest: dict) -> list[dict]:
    return manifest.setdefault("mutations", [])


def _next_file_seq(manifest: dict) -> int:
    """The naming counter for segment dirs / delete files.

    v4 manifests persist it (``file_seq``) so compaction — which drops
    records from the ``mutations`` list — never re-issues a name an old
    pinned snapshot (or a crashed compaction's leftovers) might still hold.
    v3 manifests named files after the record index; the counts coincide, so
    the fallback is exact.
    """
    return int(manifest.get("file_seq", len(manifest.get("mutations", []))))


# --------------------------------------------------------------------------- #
# Applying WAL-framed ops to the directory
# --------------------------------------------------------------------------- #
def apply_ops_to_saved_catalog(
    root: str | Path, ops: list[dict], wal_txn: int | None = None, sync: bool = True
) -> list[dict]:
    """Write one WAL transaction's ``ops`` into the dataset directory.

    Each op is the JSON payload logged to the WAL —
    ``{"table": t, "op": "append", "rows": [...]}``
    or ``{"table": t, "op": "delete", "positions": [...]}`` — and becomes
    one segment directory / delete-position file plus one manifest delta
    record.  Every data file (and its directory) is fsync'd **before** the
    manifest is rewritten — once, atomically, with ``wal.applied`` advanced
    to ``wal_txn``: the rename is the transaction's single apply point, and
    the ordering guarantees a power loss can never leave a durable manifest
    pointing at undurable segment data (which recovery would then skip
    replaying, since the watermark already covers the transaction).
    ``sync=False`` skips the data fsyncs — the same bench knob as the WAL's:
    recovery then only holds against process kills, not power loss.

    Idempotent by construction, which is what crash recovery relies on when
    it replays a committed-but-unapplied transaction: if ``wal.applied``
    already covers ``wal_txn`` the call is a no-op, and if a previous
    attempt crashed mid-way the manifest never advanced, so file names
    (derived from the persisted ``file_seq`` counter) come out identical and
    the leftovers are simply overwritten.

    Returns the manifest records appended.
    """
    root = Path(root)
    manifest = _read_manifest(root)
    if wal_txn is not None:
        applied = int(manifest.get("wal", {}).get("applied", 0))
        if applied >= wal_txn:
            return []  # recovery re-run: this transaction already landed
    file_seq = _next_file_seq(manifest)
    records = []
    written: list[Path] = []
    for op in ops:
        table = op["table"]
        entry = _table_entry(manifest, table)
        directory = root / entry.get("dir", table)
        if op["op"] == "append":
            record, files = _apply_append(directory, entry, op["rows"], file_seq)
            records.append(record)
            written.extend(files)
        elif op["op"] == "delete":
            positions = np.asarray(op["positions"], dtype=np.int64)
            positions_file = f"delete-{file_seq:04d}.npy"
            directory.mkdir(parents=True, exist_ok=True)
            np.save(directory / positions_file, positions)
            written.append(directory / positions_file)
            records.append(
                {
                    "table": table,
                    "op": "delete",
                    "rows": int(positions.size),
                    "positions": positions_file,
                }
            )
        else:
            raise MutationError(f"unknown mutation op {op.get('op')!r}")
        file_seq += 1
    if sync and written:
        for path in written:
            fsync_file(path)
        directories = set()
        for path in written:
            # The file's directory, plus the directory holding a freshly
            # created segment dir — both entries must survive power loss
            # before the manifest claims the transaction applied.
            directories.add(path.parent)
            directories.add(path.parent.parent)
        for directory in directories:
            fsync_dir(directory)
    _mutation_records(manifest).extend(records)
    manifest["file_seq"] = file_seq
    manifest["format_version"] = FORMAT_VERSION
    if wal_txn is not None:
        manifest.setdefault("wal", {})["applied"] = wal_txn
    _write_manifest(root, manifest)
    return records


def _apply_append(
    directory: Path, entry: dict, rows: list[dict], file_seq: int
) -> tuple[dict, list[Path]]:
    types = {column["name"]: ColumnType(column["type"]) for column in entry["columns"]}
    page_sizes = {
        column["name"]: int(column.get("page_size", 1024)) for column in entry["columns"]
    }
    segment_dir = directory / f"segment-{file_seq:04d}"
    if segment_dir.exists():
        # Leftover of a crashed earlier attempt at this same transaction
        # (the manifest never advanced, so the name repeats): start clean.
        shutil.rmtree(segment_dir)
    segment_dir.mkdir(parents=True)
    written: list[Path] = []
    first = True
    for name, ctype in types.items():
        column = Column(
            name,
            [row.get(name) for row in rows],
            ctype=ctype,
            page_size=page_sizes[name],
        )
        values_path = segment_dir / f"{name}.values.npy"
        np.save(values_path, _values_for_save(column.data, ctype))
        written.append(values_path)
        if first:
            faults.fire("segment.partial_write")
            first = False
        nulls_path = segment_dir / f"{name}.nulls.npy"
        np.save(nulls_path, column.null_mask)
        written.append(nulls_path)
    record = {
        "table": entry["name"],
        "op": "append",
        "rows": len(rows),
        "segment": segment_dir.name,
    }
    return record, written


def _wal_commit(root: Path, ops: list[dict]) -> list[dict]:
    """WAL-log ``ops`` as one transaction, then apply them to the directory."""
    from repro.mutation.wal import WalWriter, dataset_write_lock, json_safe

    ops = [json_safe(op) for op in ops]
    with dataset_write_lock(root):
        with WalWriter(root) as writer:
            txn = writer.append_transaction(ops)
        return apply_ops_to_saved_catalog(root, ops, wal_txn=txn)


# --------------------------------------------------------------------------- #
# Appends
# --------------------------------------------------------------------------- #
def append_rows_to_saved_catalog(root: str | Path, table: str, rows) -> dict:
    """Append ``rows`` (dicts of column -> value) to a saved dataset.

    WAL-logs the batch, then writes one segment directory plus one manifest
    delta record; the base column files are never read or rewritten, so
    appending is O(len(rows)).  Returns the delta record.
    """
    root = Path(root)
    manifest = _read_manifest(root)
    entry = _table_entry(manifest, table)
    types = {column["name"]: ColumnType(column["type"]) for column in entry["columns"]}
    rows = [dict(row) for row in rows]
    if not rows:
        raise MutationError("append requires at least one row")
    for row in rows:
        unknown = set(row) - set(types)
        if unknown:
            raise MutationError(
                f"row for table {table!r} names unknown columns: {sorted(unknown)}"
            )
    records = _wal_commit(root, [{"table": table, "op": "append", "rows": rows}])
    return records[0]


# --------------------------------------------------------------------------- #
# Deletes
# --------------------------------------------------------------------------- #
def delete_rows_from_saved_catalog(root: str | Path, table: str, where) -> dict:
    """Delete the rows of ``table`` matching the ``where`` predicate.

    The predicate (SQL expression string or
    :class:`~repro.expr.ast.BooleanExpr`) is evaluated against the dataset's
    *current* state (base + every earlier delta); the matching live
    positions are WAL-logged and recorded as one ``delete`` delta
    (``<table>/delete-<n>.npy``).  Returns the record (``rows`` may be 0 —
    the record is still appended so snapshots stay addressable).
    """
    from repro.mutation.batch import _matching_live_positions
    from repro.mutation.wal import dataset_write_lock

    root = Path(root)
    with dataset_write_lock(root):
        # Only the target table is needed to evaluate the predicate; a
        # filtered load keeps a one-table delete O(table) instead of
        # O(dataset).  Evaluation runs inside the dataset write lock so the
        # matched positions cannot go stale before the WAL commit below.
        catalog = load_catalog(root, tables=[table])
        table_obj = catalog.get(table)
        positions = _matching_live_positions(table_obj, where)
        records = _wal_commit(
            root,
            [
                {
                    "table": table,
                    "op": "delete",
                    "positions": [int(p) for p in positions],
                }
            ],
        )
    return records[0]


# --------------------------------------------------------------------------- #
# Replay (called by repro.storage.disk.load_catalog)
# --------------------------------------------------------------------------- #
def replay_saved_mutations(
    catalog: Catalog,
    records: list[dict],
    root: Path,
    dirs: dict[str, str] | None = None,
) -> None:
    """Apply manifest delta ``records`` (in order) to a freshly loaded catalog.

    Uses the same extension primitives as in-memory commits: appended
    segments extend the columns (merging the seeded statistics), deletes
    extend the tables' bitmaps.

    Append records are coalesced **per table**: each table's appends buffer
    up and apply as one column extension, flushed only when a delete record
    for *that* table arrives (its positions may reference the buffered
    rows).  Records for different tables commute — an append or delete on
    table B cannot move table A's row positions — so a long interleaved
    multi-table log still costs one concatenation per column per table
    (O(final size), not O(records x size)).

    ``dirs`` maps table names to their (generation-suffixed, v4) directory
    names; tables not listed live in the default ``<root>/<table>/``.
    """
    dirs = dirs or {}
    pending: dict[str, list[dict]] = {}

    def table_directory(table_name: str) -> Path:
        return root / dirs.get(table_name, table_name)

    def flush_appends(table_name: str) -> None:
        run = pending.pop(table_name, None)
        if not run:
            return
        table = catalog.get(table_name)
        appended_rows = sum(int(r["rows"]) for r in run)
        columns = [
            extend_column(
                column, _combined_segment(table_directory(table_name), table_name, column, run)
            )
            for column in table.columns()
        ]
        mask = table.delete_mask
        if mask is not None:
            mask = np.concatenate([mask, np.zeros(appended_rows, dtype=np.bool_)])
        catalog.apply_mutation({table_name: Table(table_name, columns, delete_mask=mask)})

    for record in records:
        table_name = record["table"]
        if record["op"] == "append":
            pending.setdefault(table_name, []).append(record)
        elif record["op"] == "delete":
            flush_appends(table_name)
            table = catalog.get(table_name)
            positions_path = table_directory(table_name) / record["positions"]
            if not positions_path.exists():
                raise CatalogFormatError(f"missing delete record {positions_path}")
            positions = np.load(positions_path, allow_pickle=False).astype(np.int64)
            mask = (
                table.delete_mask.copy()
                if table.delete_mask is not None
                else np.zeros(table.num_rows, dtype=np.bool_)
            )
            if positions.size:
                if positions.min() < 0 or positions.max() >= table.num_rows:
                    raise CatalogFormatError(
                        f"delete record {positions_path.name} is out of range for "
                        f"table {table_name!r}"
                    )
                mask[positions] = True
            catalog.apply_mutation({table_name: table.with_delete_mask(mask)})
        else:
            raise CatalogFormatError(f"unknown mutation op {record.get('op')!r}")
    for table_name in list(pending):
        flush_appends(table_name)


def _combined_segment(directory: Path, table_name: str, column, run: list[dict]) -> Column:
    """One column's appended values across a run of append records."""
    values_parts = []
    nulls_parts = []
    for record in run:
        segment_dir = directory / record["segment"]
        values_path = segment_dir / f"{column.name}.values.npy"
        nulls_path = segment_dir / f"{column.name}.nulls.npy"
        if not values_path.exists() or not nulls_path.exists():
            raise CatalogFormatError(
                f"missing segment files for {table_name}.{column.name} "
                f"in {segment_dir.name}"
            )
        values = np.load(values_path, allow_pickle=False)
        if column.ctype is ColumnType.STRING:
            values = values.astype(object)
        if values.shape[0] != int(record["rows"]):
            raise CatalogFormatError(
                f"segment {segment_dir.name} of {table_name} holds "
                f"{values.shape[0]} rows but the record says {record['rows']}"
            )
        values_parts.append(values)
        nulls_parts.append(np.load(nulls_path, allow_pickle=False))
    return Column(
        column.name,
        values_parts[0] if len(values_parts) == 1 else np.concatenate(values_parts),
        ctype=column.ctype,
        null_mask=(
            nulls_parts[0] if len(nulls_parts) == 1 else np.concatenate(nulls_parts)
        ),
        page_size=column.page_size,
    )


# --------------------------------------------------------------------------- #
# Compaction
# --------------------------------------------------------------------------- #
def compact_saved_catalog(root: str | Path, online: bool = False) -> dict:
    """Fold a dataset's append log into flat column files.

    Delegates to :class:`repro.mutation.compact.Compactor`: the folded state
    is staged into fresh generation directories and swapped in by a single
    atomic manifest rename, then the WAL is truncated past the fold point —
    a crash at any moment leaves either the old or the new state fully
    intact (the pre-v4 implementation rewrote base files in place and could
    leave a stale append log readable if killed between the fold and the
    log truncation).  ``online=True`` releases the dataset write lock during
    the fold so concurrent writers keep committing; their transactions are
    rebased onto the new generation at swap time.  Returns a summary
    dictionary.
    """
    from repro.mutation.compact import Compactor

    return Compactor(root).run(online=online)


# --------------------------------------------------------------------------- #
# Row sources for the CLI
# --------------------------------------------------------------------------- #
def rows_from_csv(path: str | Path, types: dict[str, ColumnType]) -> list[dict]:
    """Read append rows from a CSV file with a header (empty cells = NULL)."""
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise MutationError(f"CSV file {path} is empty") from None
        raw_rows = [row for row in reader if row]

    def parse(text: str, ctype: ColumnType | None):
        if text == "":
            return None
        if ctype is ColumnType.INT:
            return int(text)
        if ctype is ColumnType.FLOAT:
            return float(text)
        if ctype is ColumnType.BOOL:
            return text.lower() in ("1", "true", "t", "yes")
        return text

    return [
        {
            name: parse(row[position], types.get(name))
            for position, name in enumerate(header)
            if position < len(row)
        }
        for row in raw_rows
    ]


def rows_from_json(text: str) -> list[dict]:
    """Parse append rows from a JSON array of objects (or one object)."""
    payload = json.loads(text)
    if isinstance(payload, dict):
        payload = [payload]
    if not isinstance(payload, list) or not all(
        isinstance(row, dict) for row in payload
    ):
        raise MutationError("--values expects a JSON object or array of objects")
    return payload


def saved_table_types(root: str | Path, table: str) -> dict[str, ColumnType]:
    """Column name -> type of one saved table (manifest only, no data read)."""
    entry = _table_entry(_read_manifest(Path(root)), table)
    return {column["name"]: ColumnType(column["type"]) for column in entry["columns"]}

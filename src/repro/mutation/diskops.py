"""The on-disk append log: mutating saved catalogs without rewriting them.

A saved dataset (see :mod:`repro.storage.disk`) is mutated by *appending*:

* ``append_rows_to_saved_catalog`` writes the new rows as a **segment
  directory** (``<table>/segment-<n>/<column>.values.npy`` + NULL masks) and
  records an ``append`` delta in the manifest's ordered ``mutations`` list —
  the base column files are untouched, so the write cost is O(new rows);
* ``delete_rows_from_saved_catalog`` evaluates a predicate against the
  current state and records the matching positions as a ``delete`` delta
  (``<table>/delete-<n>.npy``);
* :func:`repro.storage.disk.load_catalog` replays the records in order
  (``snapshot=K`` stops after K — time-travel reads);
* ``compact_saved_catalog`` folds the log back into flat column files,
  dropping deleted rows and rebuilding exact statistics and index sidecars.

Replay goes through the same column-extension / delete-bitmap primitives as
in-memory commits, so a loaded catalog is indistinguishable from one whose
mutations were applied live.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.mutation.batch import MutationError, extend_column
from repro.storage.catalog import Catalog
from repro.storage.column import Column, ColumnType
from repro.storage.disk import (
    CatalogFormatError,
    FORMAT_VERSION,
    MANIFEST_NAME,
    _read_manifest,
    _values_for_save,
    _write_manifest,
    load_catalog,
    save_catalog,
)
from repro.storage.table import Table


# --------------------------------------------------------------------------- #
# Manifest helpers
# --------------------------------------------------------------------------- #
def _table_entry(manifest: dict, table: str) -> dict:
    for entry in manifest.get("tables", []):
        if entry["name"] == table:
            return entry
    raise CatalogFormatError(f"unknown table {table!r} in {MANIFEST_NAME}")


def _mutation_records(manifest: dict) -> list[dict]:
    return manifest.setdefault("mutations", [])


def _next_sequence(manifest: dict) -> int:
    return len(manifest.get("mutations", []))


# --------------------------------------------------------------------------- #
# Appends
# --------------------------------------------------------------------------- #
def append_rows_to_saved_catalog(root: str | Path, table: str, rows) -> dict:
    """Append ``rows`` (dicts of column -> value) to a saved dataset.

    Writes one segment directory plus one manifest delta record; the base
    column files are never read or rewritten, so appending is O(len(rows)).
    Returns the delta record.
    """
    root = Path(root)
    manifest = _read_manifest(root)
    entry = _table_entry(manifest, table)
    types = {column["name"]: ColumnType(column["type"]) for column in entry["columns"]}
    page_sizes = {
        column["name"]: int(column.get("page_size", 1024)) for column in entry["columns"]
    }
    rows = list(rows)
    if not rows:
        raise MutationError("append requires at least one row")
    for row in rows:
        unknown = set(row) - set(types)
        if unknown:
            raise MutationError(
                f"row for table {table!r} names unknown columns: {sorted(unknown)}"
            )

    sequence = _next_sequence(manifest)
    segment_dir = root / table / f"segment-{sequence:04d}"
    segment_dir.mkdir(parents=True, exist_ok=True)
    for name, ctype in types.items():
        column = Column(
            name,
            [row.get(name) for row in rows],
            ctype=ctype,
            page_size=page_sizes[name],
        )
        np.save(segment_dir / f"{name}.values.npy", _values_for_save(column.data, ctype))
        np.save(segment_dir / f"{name}.nulls.npy", column.null_mask)

    record = {
        "table": table,
        "op": "append",
        "rows": len(rows),
        "segment": segment_dir.name,
    }
    _mutation_records(manifest).append(record)
    manifest["format_version"] = FORMAT_VERSION
    _write_manifest(root, manifest)
    return record


# --------------------------------------------------------------------------- #
# Deletes
# --------------------------------------------------------------------------- #
def delete_rows_from_saved_catalog(root: str | Path, table: str, where) -> dict:
    """Delete the rows of ``table`` matching the ``where`` predicate.

    The predicate (SQL expression string or
    :class:`~repro.expr.ast.BooleanExpr`) is evaluated against the dataset's
    *current* state (base + every earlier delta); the matching live
    positions are recorded as one ``delete`` delta.  Returns the record
    (``rows`` may be 0 — the record is still appended so snapshots stay
    addressable).
    """
    from repro.mutation.batch import _matching_live_positions

    root = Path(root)
    # Only the target table is needed to evaluate the predicate; a filtered
    # load keeps a one-table delete O(table) instead of O(dataset).
    catalog = load_catalog(root, tables=[table])
    table_obj = catalog.get(table)
    positions = _matching_live_positions(table_obj, where)

    manifest = _read_manifest(root)
    _table_entry(manifest, table)  # validates the name
    sequence = _next_sequence(manifest)
    positions_file = f"delete-{sequence:04d}.npy"
    np.save(root / table / positions_file, positions.astype(np.int64))
    record = {
        "table": table,
        "op": "delete",
        "rows": int(positions.size),
        "positions": positions_file,
    }
    _mutation_records(manifest).append(record)
    manifest["format_version"] = FORMAT_VERSION
    _write_manifest(root, manifest)
    return record


# --------------------------------------------------------------------------- #
# Replay (called by repro.storage.disk.load_catalog)
# --------------------------------------------------------------------------- #
def replay_saved_mutations(catalog: Catalog, records: list[dict], root: Path) -> None:
    """Apply manifest delta ``records`` (in order) to a freshly loaded catalog.

    Uses the same extension primitives as in-memory commits: appended
    segments extend the columns (merging the seeded statistics), deletes
    extend the tables' bitmaps.

    Append records are coalesced **per table**: each table's appends buffer
    up and apply as one column extension, flushed only when a delete record
    for *that* table arrives (its positions may reference the buffered
    rows).  Records for different tables commute — an append or delete on
    table B cannot move table A's row positions — so a long interleaved
    multi-table log still costs one concatenation per column per table
    (O(final size), not O(records x size)).
    """
    pending: dict[str, list[dict]] = {}

    def flush_appends(table_name: str) -> None:
        run = pending.pop(table_name, None)
        if not run:
            return
        table = catalog.get(table_name)
        appended_rows = sum(int(r["rows"]) for r in run)
        columns = [
            extend_column(column, _combined_segment(root, table_name, column, run))
            for column in table.columns()
        ]
        mask = table.delete_mask
        if mask is not None:
            mask = np.concatenate([mask, np.zeros(appended_rows, dtype=np.bool_)])
        catalog.apply_mutation({table_name: Table(table_name, columns, delete_mask=mask)})

    for record in records:
        table_name = record["table"]
        if record["op"] == "append":
            pending.setdefault(table_name, []).append(record)
        elif record["op"] == "delete":
            flush_appends(table_name)
            table = catalog.get(table_name)
            positions_path = root / table_name / record["positions"]
            if not positions_path.exists():
                raise CatalogFormatError(f"missing delete record {positions_path}")
            positions = np.load(positions_path, allow_pickle=False).astype(np.int64)
            mask = (
                table.delete_mask.copy()
                if table.delete_mask is not None
                else np.zeros(table.num_rows, dtype=np.bool_)
            )
            if positions.size:
                if positions.min() < 0 or positions.max() >= table.num_rows:
                    raise CatalogFormatError(
                        f"delete record {positions_path.name} is out of range for "
                        f"table {table_name!r}"
                    )
                mask[positions] = True
            catalog.apply_mutation({table_name: table.with_delete_mask(mask)})
        else:
            raise CatalogFormatError(f"unknown mutation op {record.get('op')!r}")
    for table_name in list(pending):
        flush_appends(table_name)


def _combined_segment(root: Path, table_name: str, column, run: list[dict]) -> Column:
    """One column's appended values across a run of append records."""
    values_parts = []
    nulls_parts = []
    for record in run:
        segment_dir = root / table_name / record["segment"]
        values_path = segment_dir / f"{column.name}.values.npy"
        nulls_path = segment_dir / f"{column.name}.nulls.npy"
        if not values_path.exists() or not nulls_path.exists():
            raise CatalogFormatError(
                f"missing segment files for {table_name}.{column.name} "
                f"in {segment_dir.name}"
            )
        values = np.load(values_path, allow_pickle=False)
        if column.ctype is ColumnType.STRING:
            values = values.astype(object)
        if values.shape[0] != int(record["rows"]):
            raise CatalogFormatError(
                f"segment {segment_dir.name} of {table_name} holds "
                f"{values.shape[0]} rows but the record says {record['rows']}"
            )
        values_parts.append(values)
        nulls_parts.append(np.load(nulls_path, allow_pickle=False))
    return Column(
        column.name,
        values_parts[0] if len(values_parts) == 1 else np.concatenate(values_parts),
        ctype=column.ctype,
        null_mask=(
            nulls_parts[0] if len(nulls_parts) == 1 else np.concatenate(nulls_parts)
        ),
        page_size=column.page_size,
    )


# --------------------------------------------------------------------------- #
# Compaction
# --------------------------------------------------------------------------- #
def compact_saved_catalog(root: str | Path) -> dict:
    """Fold a dataset's append log into flat column files.

    Loads the full current state, drops deleted rows (physically), rebuilds
    exact statistics and index/zone-map sidecars, rewrites the manifest
    without delta records, and removes the now-folded segment directories
    and delete files.  Returns a summary dictionary.
    """
    root = Path(root)
    manifest = _read_manifest(root)
    records = manifest.get("mutations", [])
    catalog = load_catalog(root)

    reclaimed = 0
    tables = []
    for table in catalog:
        if table.has_deletes():
            live = ~table.delete_mask
            reclaimed += table.num_deleted
            columns = [
                Column(
                    column.name,
                    column.data[live],
                    ctype=column.ctype,
                    null_mask=column.null_mask[live],
                    page_size=column.page_size,
                )
                for column in table.columns()
            ]
            tables.append(Table(table.name, columns))
        else:
            tables.append(table)
    compacted = Catalog(tables)

    # Re-create index definitions and previously persisted zone maps against
    # the compacted contents (positions and page geometry shifted, so the
    # materializations must be rebuilt exactly); rebuilding them here means
    # save_catalog overwrites their sidecar files in place and future loads
    # keep skipping the lazy-build cost.
    index_entries = manifest.get("indexes", [])
    zone_entries = manifest.get("zone_maps", [])
    if index_entries or zone_entries:
        from repro.access.manager import ensure_access_manager

        manager = ensure_access_manager(compacted)
        for entry in index_entries:
            manager.create_index(entry["table"], entry["column"], kind=entry["kind"])
        for entry in zone_entries:
            if entry["table"] in compacted:
                manager.zone_map(entry["table"], entry["column"])

    save_catalog(compacted, root)

    for record in records:
        if record["op"] == "append":
            segment_dir = root / record["table"] / record["segment"]
            if segment_dir.is_dir():
                for file in segment_dir.iterdir():
                    file.unlink()
                segment_dir.rmdir()
        elif record["op"] == "delete":
            positions_path = root / record["table"] / record["positions"]
            if positions_path.exists():
                positions_path.unlink()

    return {
        "tables": len(compacted),
        "records_folded": len(records),
        "rows_reclaimed": reclaimed,
        "total_rows": compacted.total_rows(),
    }


# --------------------------------------------------------------------------- #
# Row sources for the CLI
# --------------------------------------------------------------------------- #
def rows_from_csv(path: str | Path, types: dict[str, ColumnType]) -> list[dict]:
    """Read append rows from a CSV file with a header (empty cells = NULL)."""
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise MutationError(f"CSV file {path} is empty") from None
        raw_rows = [row for row in reader if row]

    def parse(text: str, ctype: ColumnType | None):
        if text == "":
            return None
        if ctype is ColumnType.INT:
            return int(text)
        if ctype is ColumnType.FLOAT:
            return float(text)
        if ctype is ColumnType.BOOL:
            return text.lower() in ("1", "true", "t", "yes")
        return text

    return [
        {
            name: parse(row[position], types.get(name))
            for position, name in enumerate(header)
            if position < len(row)
        }
        for row in raw_rows
    ]


def rows_from_json(text: str) -> list[dict]:
    """Parse append rows from a JSON array of objects (or one object)."""
    payload = json.loads(text)
    if isinstance(payload, dict):
        payload = [payload]
    if not isinstance(payload, list) or not all(
        isinstance(row, dict) for row in payload
    ):
        raise MutationError("--values expects a JSON object or array of objects")
    return payload


def saved_table_types(root: str | Path, table: str) -> dict[str, ColumnType]:
    """Column name -> type of one saved table (manifest only, no data read)."""
    entry = _table_entry(_read_manifest(Path(root)), table)
    return {column["name"]: ColumnType(column["type"]) for column in entry["columns"]}

"""Mutation batches: the engine's append/delete write path.

A :class:`MutationBatch` (from
:meth:`repro.storage.catalog.Catalog.begin_mutation`) stages any number of
row appends and row deletes across any tables, then applies them atomically
with :meth:`MutationBatch.commit`:

* each mutated table is rebuilt **copy-on-write** — appended columns are new
  arrays (old data shared until the concatenation), deletes extend a
  per-table delete bitmap on a new :class:`~repro.storage.table.Table`
  object sharing the unchanged columns — so catalog snapshots pinned by
  in-flight :class:`~repro.engine.session.PreparedPlan` objects keep reading
  exactly the data they were planned against;
* the catalog version is bumped **exactly once per batch**
  (:meth:`~repro.storage.catalog.Catalog.apply_mutation`), and every mutated
  table adopts that version;
* derived state is maintained **incrementally**: new columns are seeded with
  merged min/max/distinct statistics, the catalog's
  :class:`~repro.access.manager.AccessPathManager` (when present) extends
  its zone maps and secondary indexes for the appended pages instead of
  rebuilding them, and catalog subscribers (the service layer) receive the
  :class:`~repro.mutation.delta.MutationCommit` to update their caches.

Deletes are *logical*: the physical row range never shrinks, scans simply
stop emitting the deleted positions (``repro compact`` reclaims the space).
Appends always land after the pre-commit rows, so the visible row order of a
mutated table equals the row order of a freshly built table holding the same
live rows — the property the mutation differential suite checks.

Batches may overlap: each batch records the version of every table it
touches at first staging, and :meth:`MutationBatch.commit` re-checks those
versions under the catalog write lock — **first committer wins**, the loser
raises :class:`ConflictError` with nothing applied (retry with
:func:`repro.mutation.concurrency.retry_on_conflict`).  When the catalog is
durable (``load_catalog(root, durable=True)``), the winner's batch is
WAL-logged and applied to the saved dataset *before* the in-memory swap, so
a crash at any instant recovers to the last committed batch.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.mutation.delta import ColumnDelta, MutationCommit, TableDelta, column_delta_for_segment
from repro.storage.column import Column
from repro.storage.table import Table


class MutationError(ValueError):
    """Raised for invalid staging or commit requests."""


class ConflictError(MutationError):
    """Raised when a batch loses the first-committer-wins race.

    Some table this batch staged against was replaced (by another committed
    batch, or by an online compaction) after this batch first touched it.
    Nothing was applied; re-stage against the current state and retry —
    :func:`repro.mutation.concurrency.retry_on_conflict` automates this with
    exponential backoff.
    """

    def __init__(self, tables: list[str]) -> None:
        super().__init__(
            f"concurrent commit won on table(s) {sorted(tables)}; "
            "re-stage against the current catalog state and retry"
        )
        self.tables = sorted(tables)


class MutationBatch:
    """Staged appends and deletes against one catalog, applied atomically."""

    def __init__(self, catalog) -> None:
        self.catalog = catalog
        self._appends: dict[str, list[Mapping[str, object]]] = {}
        self._deletes: dict[str, set[int]] = {}
        self._committed: MutationCommit | None = None
        #: Table version observed at first staging touch — the
        #: first-committer-wins conflict check re-reads it at commit.
        self._read_versions: dict[str, int] = {}

    def _touch(self, table: str) -> None:
        if table not in self._read_versions:
            self._read_versions[table] = self.catalog.table_version(table)

    # ------------------------------------------------------------------ #
    # Staging
    # ------------------------------------------------------------------ #
    def insert(self, table: str, rows: Sequence[Mapping[str, object]]) -> "MutationBatch":
        """Stage ``rows`` (dicts of column -> value) for appending to ``table``.

        Missing columns become NULL; unknown columns raise.  Returns the
        batch for chaining.
        """
        self._check_open()
        table_obj = self.catalog.get(table)
        self._touch(table)
        known = set(table_obj.column_names)
        for row in rows:
            unknown = set(row) - known
            if unknown:
                raise MutationError(
                    f"row for table {table!r} names unknown columns: {sorted(unknown)}"
                )
        self._appends.setdefault(table, []).extend(dict(row) for row in rows)
        return self

    def delete(
        self,
        table: str,
        positions: Sequence[int] | np.ndarray | None = None,
        where=None,
    ) -> int:
        """Stage deletes for ``table``; returns how many rows were staged.

        Exactly one of ``positions`` (explicit physical row positions) or
        ``where`` (a predicate — a :class:`~repro.expr.ast.BooleanExpr` or a
        SQL expression string — evaluated against the table's current live
        rows) must be given.  Already-deleted rows and rows staged for append
        in this batch cannot be deleted; duplicate positions collapse.
        """
        self._check_open()
        table_obj = self.catalog.get(table)
        self._touch(table)
        if (positions is None) == (where is None):
            raise MutationError("delete() needs exactly one of positions= or where=")
        if where is not None:
            resolved = _matching_live_positions(table_obj, where)
        else:
            resolved = np.asarray(list(positions), dtype=np.int64)
            if resolved.size:
                if resolved.min() < 0 or resolved.max() >= table_obj.num_rows:
                    raise MutationError(
                        f"delete position out of range for table {table!r} "
                        f"with {table_obj.num_rows} physical rows"
                    )
                mask = table_obj.delete_mask
                if mask is not None and bool(mask[resolved].any()):
                    raise MutationError(
                        f"delete targets already-deleted rows of table {table!r}"
                    )
        staged = self._deletes.setdefault(table, set())
        before = len(staged)
        staged.update(int(position) for position in resolved)
        return len(staged) - before

    # ------------------------------------------------------------------ #
    # Commit
    # ------------------------------------------------------------------ #
    def commit(self) -> MutationCommit:
        """Apply every staged change under one catalog version bump.

        Runs entirely under the catalog write lock: the per-table versions
        recorded at staging are re-checked first — if any touched table was
        replaced since, the batch loses the first-committer-wins race and
        raises :class:`ConflictError` with nothing applied.  On a durable
        catalog the winning batch is then WAL-logged and written to the
        saved dataset *before* the in-memory swap (write-ahead: a crash
        after the WAL fsync recovers the batch, a crash before it rolls the
        batch back).

        Returns the :class:`MutationCommit` (empty — and without a version
        bump — when nothing was staged).  The batch cannot be reused.
        """
        self._check_open()
        names = sorted(set(self._appends) | set(self._deletes))
        if not names:
            self._committed = MutationCommit(version=self.catalog.version)
            return self._committed

        with self.catalog.write_lock:
            conflicted = []
            for name in names:
                try:
                    current = self.catalog.table_version(name)
                except KeyError:
                    conflicted.append(name)  # table dropped underneath us
                    continue
                if current != self._read_versions.get(name, current):
                    conflicted.append(name)
            if conflicted:
                raise ConflictError(conflicted)

            old_tables = {name: self.catalog.get(name) for name in names}
            old_versions = {name: self.catalog.table_version(name) for name in names}
            new_tables: dict[str, Table] = {}
            segments: dict[str, dict[str, Column | None]] = {}
            deleted: dict[str, np.ndarray] = {}
            for name in names:
                old = old_tables[name]
                rows = self._appends.get(name, [])
                positions = np.array(sorted(self._deletes.get(name, ())), dtype=np.int64)
                deleted[name] = positions
                segments[name] = _build_segments(old, rows)
                new_tables[name] = _mutated_table(old, segments[name], positions)

            durability = getattr(self.catalog, "durability", None)
            if durability is not None:
                durability.commit_ops(self._durable_ops(names, deleted))

            try:
                new_version = self.catalog.apply_mutation(new_tables)
            except BaseException:
                # The batch is durably committed on disk but never landed in
                # memory: poison the controller so further commits fail loudly
                # instead of silently diverging from the next load_catalog
                # (whose WAL replay will include this transaction).
                if durability is not None:
                    durability.poison(
                        "the in-memory apply failed after its WAL commit"
                    )
                raise

            deltas: dict[str, TableDelta] = {}
            for name in names:
                old = old_tables[name]
                columns: dict[str, ColumnDelta] = {
                    column.name: column_delta_for_segment(
                        column.name, segments[name][column.name], column, deleted[name]
                    )
                    for column in old.columns()
                }
                deltas[name] = TableDelta(
                    table=name,
                    old_version=old_versions[name],
                    new_version=new_version,
                    old_num_rows=old.num_rows,
                    appended_rows=len(self._appends.get(name, [])),
                    deleted_positions=deleted[name],
                    columns=columns,
                )

            manager = self.catalog.access_manager
            if manager is not None:
                for name in names:
                    manager.extend(name, new_tables[name], deltas[name].old_num_rows)

            commit = MutationCommit(version=new_version, deltas=deltas)
            self._committed = commit
        self.catalog.notify_mutation(commit)
        return commit

    def _durable_ops(self, names: list[str], deleted: Mapping[str, np.ndarray]) -> list[dict]:
        """This batch as WAL op payloads (deletes before appends per table —
        staged delete positions address the pre-append physical layout)."""
        ops: list[dict] = []
        for name in names:
            positions = deleted[name]
            if positions.size:
                ops.append(
                    {
                        "table": name,
                        "op": "delete",
                        "positions": [int(p) for p in positions],
                    }
                )
            rows = self._appends.get(name, [])
            if rows:
                ops.append(
                    {"table": name, "op": "append", "rows": [dict(r) for r in rows]}
                )
        return ops

    def abort(self) -> None:
        """Discard every staged change; the batch cannot be reused."""
        self._check_open()
        self._appends.clear()
        self._deletes.clear()
        self._committed = MutationCommit(version=self.catalog.version)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _check_open(self) -> None:
        if self._committed is not None:
            raise MutationError("mutation batch already committed or aborted")

    def __repr__(self) -> str:
        staged = sorted(set(self._appends) | set(self._deletes))
        return f"MutationBatch(tables={staged}, committed={self._committed is not None})"


# --------------------------------------------------------------------------- #
# Table rebuilding
# --------------------------------------------------------------------------- #
def _build_segments(
    old: Table, rows: Sequence[Mapping[str, object]]
) -> dict[str, Column | None]:
    """The appended values of every column as small segment columns."""
    if not rows:
        return {name: None for name in old.column_names}
    segments: dict[str, Column | None] = {}
    for column in old.columns():
        values = [row.get(column.name) for row in rows]
        segments[column.name] = Column(
            column.name, values, ctype=column.ctype, page_size=column.page_size
        )
    return segments


def extend_column(old: Column, segment: Column) -> Column:
    """``old`` with ``segment`` appended, statistics seeded by merging.

    The shared column-extension primitive of in-memory commits and the disk
    append-log replay (:mod:`repro.mutation.diskops`).
    """
    data = np.concatenate([old.data, segment.data])
    nulls = np.concatenate([old.null_mask, segment.null_mask])
    extended = Column(
        old.name, data, ctype=old.ctype, null_mask=nulls, page_size=old.page_size
    )
    distinct, bounds, bounds_known = old.cached_statistics()
    if distinct is not None:
        # Upper-bound estimate: segment values may repeat existing ones.
        extended.seed_statistics(
            distinct_count=min(distinct + segment.distinct_count(), len(extended))
        )
    if bounds_known:
        extended.seed_statistics(
            min_max=_merge_bounds(bounds, segment.min_max()), min_max_known=True
        )
    return extended


def _merge_bounds(old: tuple | None, new: tuple | None) -> tuple | None:
    if old is None:
        return new
    if new is None:
        return old
    return (min(old[0], new[0]), max(old[1], new[1]))


def _mutated_table(
    old: Table, segments: Mapping[str, Column | None], deleted: np.ndarray
) -> Table:
    """The post-commit table: appended columns + extended delete mask."""
    appended = next(iter(segments.values()), None)
    appended_rows = len(appended) if appended is not None else 0
    if appended_rows:
        columns = [
            extend_column(column, segments[column.name]) for column in old.columns()
        ]
    else:
        columns = old.columns()
    mask = old.delete_mask
    if mask is None and deleted.size == 0:
        new_mask = None
    else:
        new_mask = np.zeros(old.num_rows + appended_rows, dtype=np.bool_)
        if mask is not None:
            new_mask[: old.num_rows] = mask
        if deleted.size:
            if bool(new_mask[deleted].any()):
                raise MutationError(
                    f"delete targets already-deleted rows of table {old.name!r}"
                )
            new_mask[deleted] = True
    return Table(old.name, columns, delete_mask=new_mask)


def _matching_live_positions(table: Table, where) -> np.ndarray:
    """Live positions of ``table`` where the predicate is TRUE."""
    predicate = _parse_predicate(where)
    aliases = predicate.tables()
    if aliases - {table.name}:
        raise MutationError(
            f"delete predicate may only reference table {table.name!r}; "
            f"got aliases {sorted(aliases)}"
        )
    positions = np.arange(table.num_rows, dtype=np.int64)
    positions = table.live_positions_in(positions)
    if positions.size == 0:
        return positions
    from repro.engine.metrics import ExecContext
    from repro.expr.three_valued import is_true
    from repro.physical.expressions import evaluate_predicate

    truth = evaluate_predicate(
        predicate,
        {table.name: table},
        {table.name: positions},
        ExecContext(),
        description="delete",
    )
    return positions[is_true(truth)]


def _parse_predicate(where):
    """Accept a BooleanExpr or a SQL expression string."""
    if isinstance(where, str):
        from repro.sql.parser import parse_expression

        return parse_expression(where)
    return where

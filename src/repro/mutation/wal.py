"""The write-ahead log: durable mutation batches for saved datasets.

Every durable mutation (``repro insert`` / ``repro delete``, or an in-memory
:class:`~repro.mutation.batch.MutationBatch` committed against a catalog
loaded with ``load_catalog(root, durable=True)``) follows the same protocol:

1. the whole batch is appended to ``<root>/wal.log`` as one **transaction**
   — one checksummed, length-prefixed record per table operation followed by
   a ``commit`` marker record — and the file is fsync'd;
2. only then are the segment directories / deleted-position files written
   and the manifest updated (atomically, via temp-file + rename), recording
   the transaction number as applied (``manifest["wal"]["applied"]``).

A crash anywhere in between leaves one of exactly three disk states, all of
which :mod:`repro.mutation.recovery` resolves on the next open:

* a torn or uncommitted WAL tail (crash during step 1) — truncated, the
  batch never happened;
* a committed WAL transaction with partially applied effects (crash during
  step 2) — replayed idempotently from the WAL's own payload;
* a fully applied transaction — nothing to do.

**Record format** (little-endian)::

    record  := magic(4s = b"RWAL") | length(u32) | crc32(u32) | payload
    payload := UTF-8 JSON: {"kind": "header", "format": 1, "base_txn": N}
                         | {"kind": "op", "txn": N, "table": t,
                            "op": "append", "rows": [...]}
                         | {"kind": "op", "txn": N, "table": t,
                            "op": "delete", "positions": [...]}
                         | {"kind": "commit", "txn": N}

Transaction numbers are absolute and monotone for the dataset's lifetime:
after online compaction rewrites the WAL, the header's ``base_txn`` records
how many transactions preceded the file, so ``manifest["wal"]["applied"]``
(also absolute) stays comparable across truncations — this is what makes a
crash *between* the compaction fold and the WAL truncation safe: recovery
sees the folded transactions are ≤ the applied watermark and skips them.

The module also provides the dataset write lock used by every mutating
operation: an in-process re-entrant lock per resolved root path, plus an
advisory ``flock`` on ``<root>/.lock`` (POSIX only) so concurrent *processes*
serialize their writes too.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.instruments import publish_wal_commit
from repro.obs.trace import ambient_span
from repro.testing import faults

#: WAL file name inside a dataset directory.
WAL_NAME = "wal.log"

#: Advisory lock file name inside a dataset directory.
LOCK_NAME = ".lock"

#: Per-record frame: magic, payload length, payload crc32.
_FRAME = struct.Struct("<4sII")

_MAGIC = b"RWAL"

#: WAL format version written into header records.
WAL_FORMAT = 1


class WalError(ValueError):
    """Raised for unusable WAL files (never for torn tails — those recover)."""


# --------------------------------------------------------------------------- #
# Dataset write locks
# --------------------------------------------------------------------------- #
class _DatasetLock:
    """Re-entrant per-dataset write lock: thread lock + advisory flock.

    The thread lock serializes writers inside one process; while the
    outermost level is held, an exclusive ``flock`` on ``<root>/.lock``
    additionally excludes writers in other processes (best effort: skipped
    where ``fcntl`` is unavailable).  Re-entrant so composed operations
    (recovery inside a load inside a delete) take it freely.
    """

    def __init__(self, root: Path) -> None:
        self.root = root
        self._lock = threading.RLock()
        self._depth = 0
        self._fd: int | None = None

    def __enter__(self) -> "_DatasetLock":
        self._lock.acquire()
        self._depth += 1
        if self._depth == 1:
            self._flock()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._depth == 1:
            self._funlock()
        self._depth -= 1
        self._lock.release()

    def _flock(self) -> None:
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX platforms
            return
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(self.root / LOCK_NAME, os.O_RDWR | os.O_CREAT, 0o644)
            fcntl.flock(self._fd, fcntl.LOCK_EX)
        except OSError:  # pragma: no cover - exotic filesystems
            if self._fd is not None:
                os.close(self._fd)
            self._fd = None

    def _funlock(self) -> None:
        if self._fd is None:
            return
        try:
            import fcntl

            fcntl.flock(self._fd, fcntl.LOCK_UN)
        except (ImportError, OSError):  # pragma: no cover
            pass
        os.close(self._fd)
        self._fd = None


_locks: dict[str, _DatasetLock] = {}
_locks_guard = threading.Lock()


def dataset_write_lock(root: str | Path) -> _DatasetLock:
    """The (process-wide) write lock of the dataset at ``root``.

    Use as a context manager; every mutating dataset operation — WAL
    appends, manifest updates, recovery, compaction swaps — runs inside it.
    """
    key = os.path.realpath(root)
    with _locks_guard:
        lock = _locks.get(key)
        if lock is None:
            lock = _locks[key] = _DatasetLock(Path(root))
    return lock


# --------------------------------------------------------------------------- #
# Encoding / decoding
# --------------------------------------------------------------------------- #
def json_safe(value):
    """``value`` as a JSON-storable equivalent (NumPy scalars unwrapped)."""
    if isinstance(value, dict):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if hasattr(value, "item"):
        return value.item()
    return value


def encode_record(payload: dict) -> bytes:
    """One framed WAL record for ``payload``."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _FRAME.pack(_MAGIC, len(body), zlib.crc32(body)) + body


def _decode_record(data: bytes, offset: int) -> tuple[dict, int] | None:
    """``(payload, end_offset)`` of the record at ``offset``, or None when the
    bytes there are not one intact record (short, bad magic, bad checksum)."""
    frame_end = offset + _FRAME.size
    if frame_end > len(data):
        return None
    magic, length, crc = _FRAME.unpack_from(data, offset)
    if magic != _MAGIC:
        return None
    end = frame_end + length
    if end > len(data):
        return None
    body = data[frame_end:end]
    if zlib.crc32(body) != crc:
        return None
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    return payload, end


# --------------------------------------------------------------------------- #
# Reading
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class WalTransaction:
    """One committed WAL transaction: its absolute number and its table ops."""

    txn: int
    ops: list[dict] = field(default_factory=list)


@dataclass(frozen=True)
class WalState:
    """Everything a scan of one WAL file establishes.

    ``valid_length`` is the byte offset just past the last *committed*
    transaction (or past the header when none committed) — everything beyond
    it is a torn record or an uncommitted transaction tail, and recovery
    truncates the file there.
    """

    path: Path
    base_txn: int
    committed: list[WalTransaction]
    valid_length: int
    total_length: int
    records: int

    @property
    def last_txn(self) -> int:
        """Highest committed transaction number (base when none committed)."""
        return self.committed[-1].txn if self.committed else self.base_txn

    @property
    def committed_txns(self) -> int:
        """Total committed transactions across the dataset's lifetime."""
        return self.last_txn

    @property
    def tail_bytes(self) -> int:
        """Bytes past the last committed transaction (0 on a clean WAL)."""
        return self.total_length - self.valid_length


def read_wal(root: str | Path) -> WalState | None:
    """Scan ``<root>/wal.log``; returns its :class:`WalState`, or None when
    the dataset has no WAL.  Never raises on torn or garbage tails — the scan
    simply stops at the first record that fails its frame or checksum."""
    path = Path(root) / WAL_NAME
    if not path.exists():
        return None
    data = path.read_bytes()

    decoded = _decode_record(data, 0)
    if decoded is None:
        # Unreadable header: treat the whole file as a torn tail.
        return WalState(path, 0, [], 0, len(data), 0)
    header, offset = decoded
    if header.get("kind") != "header":
        raise WalError(f"{path} does not start with a WAL header record")
    base_txn = int(header.get("base_txn", 0))

    committed: list[WalTransaction] = []
    pending_ops: list[dict] = []
    pending_txn: int | None = None
    valid_length = offset
    records = 1
    while offset < len(data):
        decoded = _decode_record(data, offset)
        if decoded is None:
            break  # torn record: everything from here on is tail
        payload, offset = decoded
        records += 1
        kind = payload.get("kind")
        if kind == "op":
            txn = int(payload["txn"])
            if pending_txn is not None and txn != pending_txn:
                break  # interleaved transactions never happen; corrupt tail
            pending_txn = txn
            pending_ops.append(
                {key: payload[key] for key in payload if key not in ("kind", "txn")}
            )
        elif kind == "commit":
            txn = int(payload["txn"])
            if pending_txn is not None and txn != pending_txn:
                break
            committed.append(WalTransaction(txn=txn, ops=pending_ops))
            pending_ops, pending_txn = [], None
            valid_length = offset
        else:
            break  # unknown record kind: stop, treat as tail
    return WalState(path, base_txn, committed, valid_length, len(data), records)


# --------------------------------------------------------------------------- #
# Writing
# --------------------------------------------------------------------------- #
class WalWriter:
    """Appends transactions to one dataset's WAL.

    Opening the writer scans the existing file and truncates any torn or
    uncommitted tail (a crashed writer's leftovers must never be extended
    into accidental validity).  ``sync=False`` skips the fsync — the bench
    knob for measuring fsync cost; recovery semantics then only hold against
    process kills, not power loss.
    """

    def __init__(self, root: str | Path, sync: bool = True) -> None:
        self.root = Path(root)
        self.path = self.root / WAL_NAME
        self.sync = sync
        state = read_wal(self.root)
        if state is None or state.records == 0 or state.valid_length == 0:
            # No WAL — or one whose header never became readable (an empty
            # file, or a header torn by a crash during WAL creation).
            # Appending to a headerless file would produce a WAL that
            # read_wal rejects outright, making the dataset unloadable; the
            # file is rewritten from scratch instead.  The fresh header's
            # base_txn resumes from the manifest's applied watermark so
            # transaction numbers stay absolute and monotone.
            base = _applied_watermark(self.root)
            header = encode_record(
                {"kind": "header", "format": WAL_FORMAT, "base_txn": base}
            )
            self._file = open(self.path, "wb", buffering=0)
            self._file.write(header)
            self._next_txn = base + 1
        else:
            if state.tail_bytes:
                with open(self.path, "r+b") as handle:
                    handle.truncate(state.valid_length)
            self._file = open(self.path, "ab", buffering=0)
            self._next_txn = state.last_txn + 1

    def is_current(self) -> bool:
        """True while the open handle still refers to ``<root>/wal.log``.

        Online compaction — possibly in another process — replaces the WAL
        by rename; a writer left bound to the unlinked inode would append
        records no recovery scan will ever see.
        """
        try:
            return os.fstat(self._file.fileno()).st_ino == os.stat(self.path).st_ino
        except OSError:
            return False

    def append_transaction(self, ops: list[dict]) -> int:
        """Durably log one transaction; returns its absolute number.

        Writes every op record, then the commit marker, then fsyncs.  The
        transaction is committed the moment the marker's bytes are durable —
        the caller applies the effects to the dataset only afterwards.
        Publishes commit / fsync / byte counters into the metrics registry
        and, under an ambient tracer, wraps the append in a ``wal.commit``
        span.
        """
        with ambient_span("wal.commit", ops=len(ops)):
            txn = self._next_txn
            bytes_written = 0
            for op in ops:
                record = encode_record({"kind": "op", "txn": txn, **json_safe(op)})
                if faults.is_armed("wal.partial_record"):
                    self._file.write(record[: max(1, len(record) // 2)])
                    faults.fire("wal.partial_record")
                self._file.write(record)
                bytes_written += len(record)
            faults.fire("wal.after_record")
            marker = encode_record({"kind": "commit", "txn": txn})
            self._file.write(marker)
            bytes_written += len(marker)
            faults.fire("wal.before_fsync")
            if self.sync:
                os.fsync(self._file.fileno())
            self._next_txn = txn + 1
            publish_wal_commit(
                ops=len(ops),
                bytes_written=bytes_written,
                fsyncs=1 if self.sync else 0,
            )
            return txn

    def close(self) -> None:
        """Close the underlying file handle (the writer cannot be reused)."""
        self._file.close()

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def rewrite_wal(root: str | Path, base_txn: int, transactions: list[WalTransaction]) -> None:
    """Atomically replace the WAL with ``transactions`` on a new base.

    Online compaction calls this to drop folded transactions: the new file
    (header with the advanced ``base_txn`` plus the surviving transactions)
    is staged at ``wal.log.tmp``, fsync'd, and renamed over the old WAL.
    """
    root = Path(root)
    payload = [encode_record({"kind": "header", "format": WAL_FORMAT, "base_txn": base_txn})]
    for transaction in transactions:
        for op in transaction.ops:
            payload.append(encode_record({"kind": "op", "txn": transaction.txn, **op}))
        payload.append(encode_record({"kind": "commit", "txn": transaction.txn}))
    tmp = root / (WAL_NAME + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(b"".join(payload))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, root / WAL_NAME)
    from repro.storage.disk import fsync_dir

    fsync_dir(root)


# --------------------------------------------------------------------------- #
# Status & durability controller
# --------------------------------------------------------------------------- #
def applied_txn(manifest: dict) -> int:
    """The manifest's applied-transaction watermark (0 for pre-WAL formats)."""
    return int(manifest.get("wal", {}).get("applied", 0))


def _applied_watermark(root: Path) -> int:
    """The dataset's applied watermark (0 when it has no manifest yet)."""
    from repro.storage.disk import MANIFEST_NAME, _read_manifest

    if not (root / MANIFEST_NAME).exists():
        return 0
    return applied_txn(_read_manifest(root))


def wal_status(root: str | Path) -> dict:
    """A summary of one dataset's WAL for ``repro wal status`` and tests.

    Keys: ``exists``, ``size_bytes``, ``records``, ``base_txn``,
    ``committed_txns`` (absolute), ``applied_txns`` (manifest watermark),
    ``pending_txns`` (committed but not yet applied — recovery will replay
    them) and ``tail_bytes`` (torn/uncommitted bytes recovery will drop).
    """
    from repro.storage.disk import MANIFEST_NAME, _read_manifest

    root = Path(root)
    state = read_wal(root)
    applied = 0
    if (root / MANIFEST_NAME).exists():
        applied = applied_txn(_read_manifest(root))
    if state is None:
        return {
            "exists": False,
            "size_bytes": 0,
            "records": 0,
            "base_txn": 0,
            "committed_txns": 0,
            "applied_txns": applied,
            "pending_txns": 0,
            "tail_bytes": 0,
        }
    return {
        "exists": True,
        "size_bytes": state.total_length,
        "records": state.records,
        "base_txn": state.base_txn,
        "committed_txns": state.committed_txns,
        "applied_txns": applied,
        "pending_txns": max(0, state.committed_txns - applied),
        "tail_bytes": state.tail_bytes,
    }


class DurabilityController:
    """Binds an in-memory catalog to its on-disk dataset via the WAL.

    Attached by ``load_catalog(root, durable=True)`` (as
    ``catalog.durability``); :meth:`repro.mutation.batch.MutationBatch.commit`
    calls :meth:`commit_ops` *before* applying a batch in memory, so the
    dataset directory replays to exactly the catalog's committed state after
    any crash.  One controller per root per process — the cached writer
    handle is revalidated against the WAL's inode on every commit (online
    compaction, possibly in another process, replaces the file by rename)
    and reset by an in-process compaction after it rewrites the WAL.

    A commit that fails *after* its WAL append **poisons** the controller:
    the transaction is durable on disk while the in-memory catalog never
    applied it, so letting further commits through would silently diverge
    from what the next ``load_catalog`` (which replays the WAL) observes.
    A poisoned controller raises :class:`WalError` on every subsequent
    commit; the way out is reloading the dataset, which runs recovery.
    """

    def __init__(self, root: str | Path, sync: bool = True) -> None:
        self.root = Path(root)
        self.sync = sync
        self._writer: WalWriter | None = None
        self._poisoned: str | None = None

    @property
    def poisoned(self) -> str | None:
        """Why this controller refuses commits (None while healthy)."""
        return self._poisoned

    def poison(self, reason: str) -> None:
        """Refuse all further commits: disk and memory are known to diverge."""
        self._poisoned = reason

    def commit_ops(self, ops: list[dict]) -> int:
        """WAL-log then apply ``ops`` to the saved dataset; returns the txn."""
        from repro.mutation.diskops import apply_ops_to_saved_catalog

        if self._poisoned is not None:
            raise WalError(
                f"durable catalog for {self.root} is poisoned "
                f"({self._poisoned}); reload it with load_catalog(root, "
                f"durable=True) to recover before committing again"
            )
        ops = [json_safe(op) for op in ops]
        with dataset_write_lock(self.root):
            if self._writer is not None and not self._writer.is_current():
                self.reset_writer()
            if self._writer is None:
                self._writer = WalWriter(self.root, sync=self.sync)
            try:
                txn = self._writer.append_transaction(ops)
                apply_ops_to_saved_catalog(
                    self.root, ops, wal_txn=txn, sync=self.sync
                )
            except BaseException:
                # The WAL may already hold the commit marker (or a torn tail
                # the cached handle would extend into garbage): either way
                # this process can no longer trust that its in-memory state
                # matches what recovery will reconstruct.
                self.poison("a durable commit failed mid-flight")
                raise
            return txn

    def reset_writer(self) -> None:
        """Drop the cached WAL handle (after compaction rewrote the file)."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None


def attach_durability(catalog, root: str | Path, sync: bool = True) -> DurabilityController:
    """Attach a :class:`DurabilityController` for ``root`` to ``catalog``."""
    controller = DurabilityController(root, sync=sync)
    catalog.durability = controller
    return controller

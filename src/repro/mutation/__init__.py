"""The mutation & snapshot subsystem: DML with snapshot-isolated reads.

Public surface:

* :class:`~repro.mutation.batch.MutationBatch` — staged appends/deletes,
  committed atomically under one catalog version bump
  (``catalog.begin_mutation()``);
* :class:`~repro.mutation.snapshot.CatalogSnapshot` — an immutable view of
  one catalog state (``catalog.snapshot()``), pinned by prepared plans;
* :class:`~repro.mutation.delta.MutationCommit` /
  :class:`~repro.mutation.delta.TableDelta` — what a commit did, the input
  of every incremental-maintenance hook;
* :mod:`repro.mutation.diskops` — the append log of on-disk catalogs
  (``repro insert|delete|compact``).
"""

from repro.mutation.batch import MutationBatch, MutationError
from repro.mutation.delta import ColumnDelta, MutationCommit, TableDelta
from repro.mutation.snapshot import CatalogSnapshot

__all__ = [
    "CatalogSnapshot",
    "ColumnDelta",
    "MutationBatch",
    "MutationCommit",
    "MutationError",
    "TableDelta",
]

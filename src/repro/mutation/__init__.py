"""The mutation & snapshot subsystem: durable DML with snapshot-isolated reads.

Public surface:

* :class:`~repro.mutation.batch.MutationBatch` — staged appends/deletes,
  committed atomically under one catalog version bump
  (``catalog.begin_mutation()``); overlapping batches race first-committer-
  wins, losers raise :class:`~repro.mutation.batch.ConflictError`;
* :func:`~repro.mutation.concurrency.retry_on_conflict` — re-stage-and-retry
  with capped exponential backoff for lost commit races;
* :class:`~repro.mutation.snapshot.CatalogSnapshot` — an immutable view of
  one catalog state (``catalog.snapshot()``), pinned by prepared plans;
* :class:`~repro.mutation.delta.MutationCommit` /
  :class:`~repro.mutation.delta.TableDelta` — what a commit did, the input
  of every incremental-maintenance hook;
* :mod:`repro.mutation.wal` — the write-ahead log making saved-dataset
  mutations durable (:class:`~repro.mutation.wal.DurabilityController`,
  ``wal_status``), and :mod:`repro.mutation.recovery` — crash recovery to
  the last committed batch (``recover_saved_catalog``, run automatically by
  ``load_catalog``);
* :class:`~repro.mutation.compact.Compactor` — online compaction: fold the
  append log into a new table generation behind an atomic manifest swap
  while readers and writers keep going;
* :mod:`repro.mutation.diskops` — the append log of on-disk catalogs
  (``repro insert|delete|compact``).
"""

from repro.mutation.batch import ConflictError, MutationBatch, MutationError
from repro.mutation.compact import Compactor
from repro.mutation.concurrency import retry_on_conflict
from repro.mutation.delta import ColumnDelta, MutationCommit, TableDelta
from repro.mutation.recovery import recover_saved_catalog
from repro.mutation.snapshot import CatalogSnapshot
from repro.mutation.wal import DurabilityController, attach_durability, wal_status

__all__ = [
    "CatalogSnapshot",
    "ColumnDelta",
    "Compactor",
    "ConflictError",
    "DurabilityController",
    "MutationBatch",
    "MutationCommit",
    "MutationError",
    "TableDelta",
    "attach_durability",
    "recover_saved_catalog",
    "retry_on_conflict",
    "wal_status",
]

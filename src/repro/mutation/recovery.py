"""Crash recovery: repair a saved dataset from its write-ahead log.

Recovery runs automatically at the top of
:func:`repro.storage.disk.load_catalog` whenever the dataset carries a
``wal.log`` (and explicitly via ``repro recover``).  It resolves the three
disk states a crash can leave behind (see :mod:`repro.mutation.wal`):

1. **Torn tail** — the WAL ends in a half-written record or a transaction
   with no commit marker.  The batch never committed; the tail is truncated
   and the dataset stands at the previous committed batch.
2. **Committed, not applied** — the WAL holds transactions whose number
   exceeds the manifest's ``wal.applied`` watermark.  The crash happened
   after the commit marker was durable but before (or during) the directory
   writes; each such transaction is re-applied from the WAL's own payload
   via :func:`repro.mutation.diskops.apply_ops_to_saved_catalog`, whose
   atomic manifest rename makes the replay idempotent — a half-applied
   attempt left no manifest trace, so the replay overwrites its leftovers
   under the same (``file_seq``-derived) file names.
3. **Clean** — every committed transaction is applied; nothing to do.

Either way, reopening after a kill at *any* instant lands the dataset
byte-identically on the last committed batch — the invariant
``tests/test_crash_recovery.py`` checks against a never-crashed oracle for
every fault point in :data:`repro.testing.faults.FAULT_POINTS`.
"""

from __future__ import annotations

from pathlib import Path

from repro.mutation.diskops import apply_ops_to_saved_catalog
from repro.mutation.wal import applied_txn, dataset_write_lock, read_wal
from repro.obs.history import record_event as record_history_event
from repro.obs.instruments import publish_recovery
from repro.obs.trace import ambient_span
from repro.storage.disk import _read_manifest


def recover_saved_catalog(root: str | Path) -> dict:
    """Bring the dataset at ``root`` to its last committed batch.

    Truncates any torn or uncommitted WAL tail, then replays every
    committed-but-unapplied transaction into the directory.  Idempotent and
    cheap when the dataset is clean (one WAL scan, no writes).  Returns a
    summary: ``{"wal": bool, "truncated_bytes": int, "replayed_txns": int,
    "last_txn": int, "applied_txns": int}``.  Each pass counts into the
    metrics registry and, under an ambient tracer, opens a ``recovery``
    span.
    """
    root = Path(root)
    with dataset_write_lock(root), ambient_span("recovery") as span:
        state = read_wal(root)
        if state is None:
            publish_recovery(replayed_txns=0)
            return {
                "wal": False,
                "truncated_bytes": 0,
                "replayed_txns": 0,
                "last_txn": 0,
                "applied_txns": 0,
            }
        if state.tail_bytes:
            with open(state.path, "r+b") as handle:
                handle.truncate(state.valid_length)
        applied = applied_txn(_read_manifest(root))
        replayed = 0
        for transaction in state.committed:
            if transaction.txn <= applied:
                continue
            apply_ops_to_saved_catalog(root, transaction.ops, wal_txn=transaction.txn)
            replayed += 1
        publish_recovery(replayed_txns=replayed)
        if span is not None:
            span.attrs.update(
                replayed_txns=replayed, truncated_bytes=state.tail_bytes
            )
        summary = {
            "wal": True,
            "truncated_bytes": state.tail_bytes,
            "replayed_txns": replayed,
            "last_txn": state.last_txn,
            "applied_txns": max(applied, state.last_txn),
        }
        if replayed or state.tail_bytes:
            # Journal only recoveries that *did* something — every
            # load_catalog runs a clean no-op pass, which would be noise.
            record_history_event("recovery", root=str(root), **summary)
        return summary

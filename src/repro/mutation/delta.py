"""Commit descriptions: what one mutation batch did to each table.

A committed batch is summarized as one :class:`MutationCommit` holding a
:class:`TableDelta` per mutated table.  Deltas are the currency of
incremental maintenance: they carry exactly the per-column summary numbers
(appended row/NULL/distinct counts, appended min/max bounds, NULLs among the
newly deleted rows) that :meth:`repro.stats.table_stats.TableStats.apply_delta`
needs to produce the new table's statistics without rescanning it, and that
the disk append log (format v3) records so a loaded catalog seeds the same
statistics.

Everything here is a frozen value object — commits are facts, not handles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.storage.column import Column


@dataclass(frozen=True)
class ColumnDelta:
    """Summary of one column's change inside a table delta.

    ``appended_min`` / ``appended_max`` are ``None`` when the appended
    segment holds no non-NULL value.  ``appended_distinct`` counts distinct
    non-NULL values *within the segment* — merged distinct counts are
    therefore upper-bound estimates until the next full statistics
    collection (or ``repro compact``) restores exactness.
    """

    name: str
    appended_rows: int = 0
    appended_nulls: int = 0
    appended_distinct: int = 0
    appended_min: object | None = None
    appended_max: object | None = None
    #: NULL cells among the rows this delta deleted (they were live before).
    deleted_nulls: int = 0


@dataclass(frozen=True)
class TableDelta:
    """One table's mutation inside a committed batch."""

    table: str
    old_version: int
    new_version: int
    #: Physical rows before the commit (appends start at this position).
    old_num_rows: int
    appended_rows: int = 0
    #: Newly deleted positions (global, ascending, all live beforehand).
    deleted_positions: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    columns: dict[str, ColumnDelta] = field(default_factory=dict)

    @property
    def deleted_count(self) -> int:
        """Number of rows this delta deleted."""
        return int(self.deleted_positions.size)

    @property
    def new_num_rows(self) -> int:
        """Physical rows after the commit."""
        return self.old_num_rows + self.appended_rows

    def describe(self) -> str:
        """``table: +a rows, -d rows (vN -> vM)`` for logs and CLI output."""
        return (
            f"{self.table}: +{self.appended_rows} rows, -{self.deleted_count} rows "
            f"(v{self.old_version} -> v{self.new_version})"
        )


@dataclass(frozen=True)
class MutationCommit:
    """The outcome of one committed mutation batch."""

    #: Catalog version after the commit (bumped exactly once per batch).
    version: int
    deltas: dict[str, TableDelta] = field(default_factory=dict)

    @property
    def tables(self) -> list[str]:
        """Names of the mutated tables."""
        return list(self.deltas)

    def describe(self) -> str:
        """Multi-line summary, one line per table delta."""
        if not self.deltas:
            return f"(empty commit at v{self.version})"
        return "\n".join(delta.describe() for delta in self.deltas.values())


def column_delta_for_segment(
    name: str, segment: Column | None, old_column: Column, deleted: np.ndarray
) -> ColumnDelta:
    """Build the :class:`ColumnDelta` of one column for one commit.

    Args:
        name: column name.
        segment: the appended values as a (small) column, or ``None`` for a
            delete-only commit.
        old_column: the pre-commit column (NULLs of deleted rows are counted
            against it).
        deleted: newly deleted global positions.
    """
    deleted_nulls = (
        int(old_column.null_mask[deleted].sum()) if deleted.size else 0
    )
    if segment is None or len(segment) == 0:
        return ColumnDelta(name=name, deleted_nulls=deleted_nulls)
    bounds = segment.min_max()
    seg_min, seg_max = (None, None) if bounds is None else bounds
    return ColumnDelta(
        name=name,
        appended_rows=len(segment),
        appended_nulls=int(segment.null_mask.sum()),
        appended_distinct=segment.distinct_count(),
        appended_min=seg_min,
        appended_max=seg_max,
        deleted_nulls=deleted_nulls,
    )

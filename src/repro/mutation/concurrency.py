"""Concurrent writers: retrying first-committer-wins conflicts.

:meth:`~repro.mutation.batch.MutationBatch.commit` is optimistic — batches
stage freely against a snapshot of the catalog and only validate at commit,
so a loser surfaces as :class:`~repro.mutation.batch.ConflictError` with
nothing applied.  The canonical response is to re-stage against the *new*
current state and try again, which :func:`retry_on_conflict` packages with
capped exponential backoff and jitter:

```python
def stage(batch):
    batch.insert("events", new_rows)
    batch.delete("events", where="events.expired = TRUE")

commit = retry_on_conflict(catalog, stage)
```

The staging callback runs once per attempt with a **fresh** batch, so
predicates and position lookups re-evaluate against whatever the winning
writers (or an online compaction, which also bumps table versions because it
moves physical row positions) left behind — exactly the re-read that makes
the retry sound rather than a blind replay.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable

from repro.mutation.batch import ConflictError
from repro.mutation.delta import MutationCommit
from repro.obs.history import record_event as record_history_event


def retry_on_conflict(
    catalog,
    stage: Callable,
    attempts: int = 8,
    base_delay: float = 0.001,
    max_delay: float = 0.05,
    sleep: Callable[[float], None] = time.sleep,
) -> MutationCommit:
    """Commit ``stage``'s mutations, retrying lost first-committer races.

    ``stage(batch)`` is called with a fresh
    :class:`~repro.mutation.batch.MutationBatch` on every attempt and must
    re-stage its changes from scratch (its return value is ignored); the
    batch is then committed.  On :class:`ConflictError` the helper sleeps
    ``base_delay * 2**attempt`` (capped at ``max_delay``, with ±50% jitter
    so herds of identical writers spread out) and retries, raising the final
    ConflictError after ``attempts`` exhausted tries.  Other staging or
    commit errors propagate immediately — only version races retry.

    Returns the winning :class:`~repro.mutation.delta.MutationCommit`.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    last_error: ConflictError | None = None
    for attempt in range(attempts):
        batch = catalog.begin_mutation()
        try:
            stage(batch)
            return batch.commit()
        except ConflictError as error:
            last_error = error
            record_history_event(
                "conflict",
                attempt=attempt + 1,
                attempts=attempts,
                error=str(error),
                final=attempt + 1 >= attempts,
            )
            if attempt + 1 < attempts:
                delay = min(max_delay, base_delay * (2**attempt))
                sleep(delay * (0.5 + random.random()))
    raise last_error

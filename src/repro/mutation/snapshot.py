"""Catalog snapshots: immutable name → table views for isolated reads.

Snapshot isolation in this engine is almost free, because every layer below
it is already immutable: a :class:`~repro.storage.table.Table` never changes
after construction (a mutation commit registers a *new* table object that
shares the unchanged column arrays — copy-on-write), so pinning a consistent
view of the catalog is just pinning the table objects that were current at
one moment.  :meth:`repro.storage.catalog.Catalog.snapshot` produces such a
pin; :class:`~repro.engine.session.PreparedPlan` stores one, which is what
lets a plan prepared before a commit keep reading its original data while
later queries see the new version.

A snapshot duck-types the small slice of the catalog interface execution
needs (``get`` / ``__contains__`` / ``table_version`` / iteration), so the
physical layer and the morsel driver run against either unchanged.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.storage.table import Table


@dataclass(frozen=True)
class CatalogSnapshot:
    """An immutable view of one catalog state.

    Attributes:
        version: the catalog version the snapshot was taken at.
        tables: name -> table objects current at that version.
        table_versions: name -> per-table version at that moment.
    """

    version: int
    tables: dict[str, Table] = field(default_factory=dict)
    table_versions: dict[str, int] = field(default_factory=dict)

    def get(self, name: str) -> Table:
        """Look up a table by name; raises KeyError with a helpful message."""
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(
                f"unknown table {name!r} in snapshot v{self.version}; "
                f"known tables: {', '.join(sorted(self.tables)) or '(none)'}"
            ) from None

    def table_version(self, name: str) -> int:
        """Per-table version pinned by the snapshot; KeyError when unknown."""
        if name not in self.table_versions:
            raise KeyError(f"unknown table {name!r}")
        return self.table_versions[name]

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self.tables.values())

    def __len__(self) -> int:
        return len(self.tables)

    @property
    def table_names(self) -> list[str]:
        """Table names pinned by the snapshot."""
        return list(self.tables)

    def __repr__(self) -> str:
        return f"CatalogSnapshot(version={self.version}, tables={self.table_names})"

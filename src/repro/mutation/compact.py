"""Online compaction: fold the append log into a new table generation.

The pre-v4 ``repro compact`` rewrote base column files *in place* under a
full load — stop-the-world, and worse, not crash-safe: a process killed
between the fold and the append-log truncation left a stale log readable
against the already-folded base.  The :class:`Compactor` replaces that with
a shadow fold:

1. **Pin** — under the dataset write lock, run crash recovery and note the
   fold point ``K`` (the current length of the manifest's ``mutations``
   list) and the next generation number ``G``.
2. **Fold** — with no locks held (writers keep committing, readers keep
   their pinned :class:`~repro.mutation.snapshot.CatalogSnapshot`\\ s), load
   the ``snapshot=K`` state, physically drop the rows deleted by then, and
   write the folded base files — plus exact statistics and rebuilt
   index/zone-map sidecars — into fresh ``<table>.g<G>/`` directories.
   Everything read here (base files, the first K segment/delete files) is
   immutable, so concurrent commits cannot race the fold.
3. **Swap** — under the catalog write lock (when attached to a live
   catalog) then the dataset lock, re-read the manifest, *rebase* the
   records that landed after ``K`` onto the new generation (segment
   directories are copied over; delete-position files are rewritten with
   their pre-fold positions mapped through the fold's live-row index), and
   publish everything with one atomic manifest rename.  A crash before the
   rename leaves the old generation fully authoritative; after it, the new
   one.
4. **Trim** — rewrite the WAL keeping only transactions past the applied
   watermark (its header's ``base_txn`` advances, so transaction numbers
   stay absolute), and delete the previous generation's directories.

When constructed with a live catalog, the swap also refreshes the in-memory
tables to the new physical layout (folded base + post-fold tail) under one
version bump — pinned snapshots keep reading the old immutable tables, the
plan cache invalidates, and in-flight mutation batches that staged against
the old row positions lose the first-committer race and retry.
"""

from __future__ import annotations

import contextlib
import shutil
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.mutation.wal import (
    WAL_NAME,
    applied_txn,
    dataset_write_lock,
    read_wal,
    rewrite_wal,
)
from repro.obs.history import record_event as record_history_event
from repro.obs.instruments import publish_compaction
from repro.obs.trace import ambient_span
from repro.storage.catalog import Catalog
from repro.storage.column import Column
from repro.storage.disk import (
    FORMAT_VERSION,
    _column_manifest_entry,
    _index_sidecar_name,
    _read_manifest,
    _remove_stale_generation_dirs,
    _save_arrays,
    _write_manifest,
    _zonemap_sidecar_name,
    load_catalog,
    save_table,
)
from repro.storage.table import Table
from repro.testing import faults


@dataclass
class _StagedTable:
    """One table's folded state, staged in its new generation directory."""

    name: str
    dir_name: str
    table: Table  # folded: deleted rows physically dropped, no mask
    live: np.ndarray | None  # old physical positions that survived (None = all)
    old_phys: int  # physical rows (incl. deleted) at the fold point
    reclaimed: int
    column_entries: list[dict] = field(default_factory=list)

    @property
    def new_rows(self) -> int:
        return self.table.num_rows


class Compactor:
    """Folds a saved dataset's append log without blocking readers/writers.

    ``Compactor(root)`` compacts the directory alone (the CLI path);
    ``Compactor(root, catalog=catalog)`` additionally refreshes the given
    live catalog — the one loaded from ``root`` — to the new physical layout
    at swap time, which is how a long-running service compacts underneath
    its own prepared plans.
    """

    def __init__(self, root: str | Path, catalog: Catalog | None = None) -> None:
        self.root = Path(root)
        self.catalog = catalog

    def run(self, online: bool = True) -> dict:
        """Compact; returns a summary dictionary.

        ``online=True`` (the default) holds locks only while pinning the
        fold point and while swapping — writers commit concurrently and
        their transactions are rebased onto the new generation.
        ``online=False`` holds the dataset write lock for the whole fold
        (the conservative stop-the-world mode; the swap is equally atomic).
        Each run counts into the metrics registry and, under an ambient
        tracer, is wrapped in a ``compaction`` span.
        """
        with ambient_span("compaction", online=online):
            if online:
                return self._compact()
            with dataset_write_lock(self.root):
                return self._compact()

    # ------------------------------------------------------------------ #
    def _compact(self) -> dict:
        root = self.root
        from repro.mutation.recovery import recover_saved_catalog

        # Phase 1: pin the fold point.
        with dataset_write_lock(root):
            recover_saved_catalog(root)
            manifest = _read_manifest(root)
            fold_point = len(manifest.get("mutations", []))
            generation = int(manifest.get("generation", 0)) + 1
            old_dirs = {
                entry["name"]: entry.get("dir", entry["name"])
                for entry in manifest.get("tables", [])
            }
            table_order = [entry["name"] for entry in manifest.get("tables", [])]

        # Phase 2: fold into shadow generation directories (no locks).
        folded = load_catalog(root, snapshot=fold_point, recover=False)
        staged: dict[str, _StagedTable] = {
            name: self._stage_table(folded.get(name), generation) for name in table_order
        }
        index_entries, zone_entries = self._stage_access_paths(manifest, staged)
        reclaimed = sum(s.reclaimed for s in staged.values())

        # Phase 3: swap (catalog lock before dataset lock, always).
        outer = (
            self.catalog.write_lock if self.catalog is not None else contextlib.nullcontext()
        )
        with outer:
            with dataset_write_lock(root):
                current = _read_manifest(root)
                tail = current.get("mutations", [])[fold_point:]
                rebased = self._rebase_tail(tail, staged, old_dirs)
                new_manifest = {
                    "format_version": FORMAT_VERSION,
                    "generation": generation,
                    "tables": [
                        {
                            "name": s.name,
                            "dir": s.dir_name,
                            "num_rows": s.new_rows,
                            "columns": s.column_entries,
                        }
                        for s in (staged[name] for name in table_order)
                    ],
                }
                if rebased:
                    new_manifest["mutations"] = rebased
                from repro.mutation.diskops import _next_file_seq

                new_manifest["file_seq"] = _next_file_seq(current)
                if index_entries:
                    new_manifest["indexes"] = index_entries
                if zone_entries:
                    new_manifest["zone_maps"] = zone_entries
                applied = applied_txn(current)
                if applied or (root / WAL_NAME).exists():
                    new_manifest["wal"] = {"applied": applied}
                faults.fire("compact.before_swap")
                _write_manifest(root, new_manifest)

                # The new generation is authoritative from here on.
                faults.fire("compact.before_wal_truncate")
                self._trim_wal(applied)
                if self.catalog is not None:
                    self._refresh_catalog(staged, table_order)
                for name, old_dir in old_dirs.items():
                    if old_dir != staged[name].dir_name:
                        shutil.rmtree(root / old_dir, ignore_errors=True)
                _remove_stale_generation_dirs(root, new_manifest)

        tail_rows = sum(r["rows"] for r in rebased if r["op"] == "append")
        publish_compaction(rows_reclaimed=reclaimed)
        summary = {
            "tables": len(staged),
            "records_folded": fold_point,
            "rows_reclaimed": reclaimed,
            "total_rows": sum(s.new_rows for s in staged.values()) + tail_rows,
            "generation": generation,
            "tail_records": len(rebased),
        }
        record_history_event("compaction", root=str(root), **summary)
        return summary

    # ------------------------------------------------------------------ #
    def _stage_table(self, table: Table, generation: int) -> _StagedTable:
        mask = table.delete_mask
        if mask is not None and mask.any():
            live = np.flatnonzero(~mask)
            columns = [
                Column(
                    column.name,
                    column.data[live],
                    ctype=column.ctype,
                    null_mask=column.null_mask[live],
                    page_size=column.page_size,
                )
                for column in table.columns()
            ]
            folded_table = Table(table.name, columns)
            reclaimed = int(mask.sum())
        else:
            live = None
            folded_table = (
                table if mask is None else Table(table.name, list(table.columns()))
            )
            reclaimed = 0
        dir_name = f"{table.name}.g{generation}"
        target = self.root / dir_name
        if target.exists():
            shutil.rmtree(target)  # a crashed earlier staging at this generation
        save_table(folded_table, target)
        staged = _StagedTable(
            name=table.name,
            dir_name=dir_name,
            table=folded_table,
            live=live,
            old_phys=table.num_rows,
            reclaimed=reclaimed,
        )
        staged.column_entries = [
            _column_manifest_entry(column) for column in folded_table.columns()
        ]
        return staged

    def _stage_access_paths(
        self, manifest: dict, staged: dict[str, _StagedTable]
    ) -> tuple[list, list]:
        """Rebuild index/zone-map sidecars against the folded contents.

        Positions and page geometry shift when deleted rows fold out, so the
        materializations are rebuilt exactly (the same policy the pre-v4
        compact applied); their sidecars land in the new generation
        directories and the returned entries cover the folded row counts —
        post-fold segments extend them incrementally at load time.
        """
        index_entries = manifest.get("indexes", [])
        zone_entries = manifest.get("zone_maps", [])
        if not index_entries and not zone_entries:
            return [], []
        from repro.access.manager import ensure_access_manager

        shadow = Catalog(s.table for s in staged.values())
        manager = ensure_access_manager(shadow)
        new_indexes = []
        for entry in index_entries:
            if entry["table"] not in staged:
                continue
            s = staged[entry["table"]]
            manager.create_index(entry["table"], entry["column"], kind=entry["kind"])
            materialized = manager.index_for(entry["table"], entry["column"])
            file_name = _index_sidecar_name(entry["column"], entry["kind"])
            _save_arrays(self.root / s.dir_name / file_name, materialized.to_arrays())
            new_indexes.append(
                {
                    "table": entry["table"],
                    "column": entry["column"],
                    "kind": entry["kind"],
                    "file": file_name,
                    "rows": s.new_rows,
                }
            )
        new_zones = []
        for entry in zone_entries:
            if entry["table"] not in staged:
                continue
            s = staged[entry["table"]]
            zone_map = manager.zone_map(entry["table"], entry["column"])
            if zone_map is None:
                continue
            file_name = _zonemap_sidecar_name(entry["column"])
            _save_arrays(self.root / s.dir_name / file_name, zone_map.to_arrays())
            new_zones.append(
                {
                    "table": entry["table"],
                    "column": entry["column"],
                    "file": file_name,
                    "rows": s.new_rows,
                }
            )
        return new_indexes, new_zones

    def _rebase_tail(
        self, tail: list[dict], staged: dict[str, _StagedTable], old_dirs: dict[str, str]
    ) -> list[dict]:
        """Carry post-fold-point records onto the new generation.

        Segment directories are copied verbatim (appended rows keep their
        relative positions: new physical layout = folded base + same tail).
        Delete-position files are rewritten: positions at or past the old
        physical base shift by the base-size delta; positions inside the old
        base — necessarily live at the fold point, a delete only ever
        matches live rows — map to their index among the fold's survivors.
        """
        rebased = []
        for record in tail:
            name = record["table"]
            s = staged[name]
            old_dir = self.root / old_dirs[name]
            new_dir = self.root / s.dir_name
            if record["op"] == "append":
                shutil.copytree(
                    old_dir / record["segment"],
                    new_dir / record["segment"],
                    dirs_exist_ok=True,
                )
            elif record["op"] == "delete":
                positions = np.load(
                    old_dir / record["positions"], allow_pickle=False
                ).astype(np.int64)
                pre = positions < s.old_phys
                pre_positions = positions[pre]
                if s.live is not None:
                    pre_positions = np.searchsorted(s.live, pre_positions)
                post_positions = s.new_rows + (positions[~pre] - s.old_phys)
                np.save(
                    new_dir / record["positions"],
                    np.concatenate([pre_positions, post_positions]).astype(np.int64),
                )
            rebased.append(dict(record))
        return rebased

    def _trim_wal(self, applied: int) -> None:
        """Drop folded transactions from the WAL (base_txn advances)."""
        state = read_wal(self.root)
        if state is None:
            return
        base = max(applied, state.base_txn)
        keep = [transaction for transaction in state.committed if transaction.txn > base]
        rewrite_wal(self.root, base, keep)
        if self.catalog is not None and self.catalog.durability is not None:
            self.catalog.durability.reset_writer()

    def _refresh_catalog(
        self, staged: dict[str, _StagedTable], table_order: list[str]
    ) -> None:
        """Mirror the new physical layout into the attached live catalog.

        Only tables whose layout actually changed (rows folded out) are
        replaced — for the rest the old and new physical layouts coincide,
        so pinned structures stay valid and no versions churn.
        """
        replacements: dict[str, Table] = {}
        for name in table_order:
            s = staged[name]
            if s.live is None:
                continue
            current = self.catalog.get(name)
            tail_positions = np.arange(s.old_phys, current.num_rows)
            indices = np.concatenate([s.live, tail_positions])
            columns = [
                Column(
                    column.name,
                    column.data[indices],
                    ctype=column.ctype,
                    null_mask=column.null_mask[indices],
                    page_size=column.page_size,
                )
                for column in current.columns()
            ]
            mask = None
            if current.delete_mask is not None:
                mask = current.delete_mask[indices]
                if not mask.any():
                    mask = None
            replacements[name] = Table(name, columns, delete_mask=mask)
        if replacements:
            self.catalog.apply_mutation(replacements)

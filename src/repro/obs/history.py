"""Workload history: per-fingerprint query statistics plus the event journal.

The ``pg_stat_statements`` analogue for this engine.  A
:class:`QueryStatsStore` accumulates, per plan-cache fingerprint: calls,
errors, rows, total/min/max latency, a bucketed latency distribution (for
p50/p95/p99), pages read/pruned, plan-cache hits, the current plan hash and
the re-plan count.  A :class:`WorkloadHistory` owns one store and optionally

* an :class:`~repro.obs.journal.EventJournal` — every query finish, re-plan,
  slow query, regression, compaction, recovery and write conflict becomes a
  persistent checksummed record (with a sampled trace attachment on query
  events when ``trace_sample_rate`` is set);
* a :class:`~repro.obs.regress.RegressionDetector` — fingerprints whose
  recent latency / pages-read window degrades beyond their baseline emit a
  structured regression event and bump the registry counter.

**Merge safety.**  Morsel worker threads and shard worker processes never
see this module's state: per-execution counters merge through the engine's
``ExecContext`` fork/absorb, and only the *coordinator* — ``QueryService``'s
publish point, or ``Session.execute`` for bare sessions — records the merged
totals here, exactly once per query.  The :func:`service_publishes` context
manager is the seam that keeps it exactly once: the service wraps its
delegations to ``Session.execute`` in it, so a bare session publishes to the
ambient history only when no service is doing it on its behalf.

The ambient seam (:func:`set_history` / :func:`get_history`) is how
lower layers — the compactor, recovery, conflict retry — journal events
without threading a history object through every signature, mirroring
``ambient_span`` from :mod:`repro.obs.trace`.  With no ambient history
installed every hook is a single ``is None`` test.
"""

from __future__ import annotations

import hashlib
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path

from .instruments import publish_journal_event, publish_regression, publish_replan
from .journal import EventJournal, read_journal
from .regress import (
    DEFAULT_BASELINE_CALLS,
    DEFAULT_REGRESSION_THRESHOLD,
    DEFAULT_REGRESSION_WINDOW,
    RegressionDetector,
    RegressionEvent,
)
from .registry import DEFAULT_LATENCY_BUCKETS

#: Orderings accepted by :meth:`QueryStatsStore.top`.
TOP_ORDERINGS = ("total_seconds", "calls", "pages_read", "mean_seconds", "rows")


def plan_hash_of(plan_description: str | None) -> str | None:
    """A short stable hash of a plan's pretty-printed form.

    Two fingerprint-identical executions served by *different* plans (the
    fallout of a feedback re-plan) get different hashes — which is what lets
    the regression detector and ``repro history`` attribute a degradation to
    a plan change rather than to noise.
    """
    if not plan_description:
        return None
    return hashlib.blake2s(
        plan_description.encode("utf-8"), digest_size=8
    ).hexdigest()


def session_fingerprint(query, planner: str) -> str:
    """A lightweight history key for bare-``Session`` executions.

    The service layer keys history by its full plan-cache fingerprint
    (catalog/table versions and knobs included); a bare session has none of
    that machinery on its hot path, so its history key hashes the canonical
    query text plus the planner — stable across runs, cheap to compute.
    """
    canonical = query.canonical_key() if hasattr(query, "canonical_key") else str(query)
    return hashlib.blake2s(
        f"{planner}|{canonical}".encode("utf-8"), digest_size=16
    ).hexdigest()


@dataclass
class FingerprintStats:
    """Accumulated execution statistics for one query fingerprint."""

    fingerprint: str
    planner: str
    calls: int = 0
    errors: int = 0
    rows: int = 0
    total_seconds: float = 0.0
    min_seconds: float = float("inf")
    max_seconds: float = 0.0
    pages_read: int = 0
    pages_pruned: int = 0
    cache_hits: int = 0
    plan_hash: str | None = None
    replans: int = 0
    #: Latency histogram: one count per DEFAULT_LATENCY_BUCKETS bound plus
    #: the overflow bucket; drives the percentile estimates.
    bucket_counts: list[int] = field(
        default_factory=lambda: [0] * (len(DEFAULT_LATENCY_BUCKETS) + 1)
    )

    def observe(
        self,
        seconds: float,
        rows: int,
        pages_read: int,
        pages_pruned: int,
        cache_hit: bool,
        plan_hash: str | None,
    ) -> None:
        """Fold one successful execution in."""
        self.calls += 1
        self.rows += rows
        self.total_seconds += seconds
        self.min_seconds = min(self.min_seconds, seconds)
        self.max_seconds = max(self.max_seconds, seconds)
        self.pages_read += pages_read
        self.pages_pruned += pages_pruned
        if cache_hit:
            self.cache_hits += 1
        if plan_hash is not None:
            self.plan_hash = plan_hash
        index = 0
        for index, bound in enumerate(DEFAULT_LATENCY_BUCKETS):
            if seconds <= bound:
                break
        else:
            index = len(DEFAULT_LATENCY_BUCKETS)
        self.bucket_counts[index] += 1

    @property
    def mean_seconds(self) -> float:
        """Mean end-to-end latency (0.0 before the first call)."""
        return self.total_seconds / self.calls if self.calls else 0.0

    def percentile(self, p: float) -> float:
        """Estimated latency percentile ``p`` (0-100) from the buckets.

        Linear interpolation inside the containing bucket, the standard
        fixed-bucket estimate (what ``histogram_quantile`` computes); the
        overflow bucket reports the observed maximum.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be within [0, 100], got {p}")
        if not self.calls:
            return 0.0
        target = (p / 100.0) * self.calls
        cumulative = 0
        for index, count in enumerate(self.bucket_counts):
            previous = cumulative
            cumulative += count
            if cumulative >= target and count:
                if index >= len(DEFAULT_LATENCY_BUCKETS):
                    return self.max_seconds
                upper = DEFAULT_LATENCY_BUCKETS[index]
                lower = DEFAULT_LATENCY_BUCKETS[index - 1] if index else 0.0
                fraction = (target - previous) / count
                return lower + (upper - lower) * fraction
        return self.max_seconds

    def as_dict(self) -> dict:
        """The statistics as a plain dictionary (reports / JSON)."""
        return {
            "fingerprint": self.fingerprint,
            "planner": self.planner,
            "calls": self.calls,
            "errors": self.errors,
            "rows": self.rows,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "min_seconds": 0.0 if self.calls == 0 else self.min_seconds,
            "max_seconds": self.max_seconds,
            "p50_seconds": self.percentile(50),
            "p95_seconds": self.percentile(95),
            "p99_seconds": self.percentile(99),
            "pages_read": self.pages_read,
            "pages_pruned": self.pages_pruned,
            "cache_hits": self.cache_hits,
            "plan_hash": self.plan_hash,
            "replans": self.replans,
        }


class QueryStatsStore:
    """A thread-safe map of fingerprint -> :class:`FingerprintStats`."""

    def __init__(self) -> None:
        self._entries: dict[str, FingerprintStats] = {}
        # Re-plans seen before the fingerprint's first published execution.
        # The feedback loop invalidates *inside* execute, ahead of the
        # publish step, so the very first drift retirement would otherwise
        # vanish; buffered counts fold in when the entry appears.
        self._pending_replans: dict[str, int] = {}
        self._lock = threading.Lock()

    def _entry(self, fingerprint: str, planner: str) -> FingerprintStats:
        entry = self._entries.get(fingerprint)
        if entry is None:
            entry = FingerprintStats(fingerprint=fingerprint, planner=planner)
            entry.replans = self._pending_replans.pop(fingerprint, 0)
            self._entries[fingerprint] = entry
        return entry

    def observe_query(
        self,
        fingerprint: str,
        planner: str,
        seconds: float,
        rows: int,
        pages_read: int,
        pages_pruned: int,
        cache_hit: bool,
        plan_hash: str | None = None,
    ) -> FingerprintStats:
        """Fold one successful execution into the fingerprint's entry."""
        with self._lock:
            entry = self._entry(fingerprint, planner)
            entry.observe(seconds, rows, pages_read, pages_pruned, cache_hit, plan_hash)
            return entry

    def record_error(self, fingerprint: str, planner: str) -> None:
        """Count one failed execution against the fingerprint."""
        with self._lock:
            self._entry(fingerprint, planner).errors += 1

    def record_replan(self, fingerprint: str) -> None:
        """Count one plan-cache re-plan (drift invalidation) for the key."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                entry.replans += 1
            else:
                self._pending_replans[fingerprint] = (
                    self._pending_replans.get(fingerprint, 0) + 1
                )

    def get(self, fingerprint: str) -> FingerprintStats | None:
        """The entry for ``fingerprint``, or None."""
        with self._lock:
            return self._entries.get(fingerprint)

    def entries(self) -> list[FingerprintStats]:
        """All entries (unordered)."""
        with self._lock:
            return list(self._entries.values())

    def top(self, n: int = 10, by: str = "total_seconds") -> list[FingerprintStats]:
        """The ``n`` heaviest fingerprints ordered by ``by`` (descending)."""
        if by not in TOP_ORDERINGS:
            raise ValueError(f"unknown ordering {by!r}; choose one of {TOP_ORDERINGS}")
        with self._lock:
            ordered = sorted(
                self._entries.values(),
                key=lambda entry: getattr(entry, by),
                reverse=True,
            )
        return ordered[:n]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class WorkloadHistory:
    """Query statistics + event journal + regression detection, composed.

    Args:
        journal_path: append the event journal at this path (``None``
            keeps history purely in-memory).
        trace_sample_rate: fraction of query events carrying a full trace
            attachment in the journal (requires callers to pass traces in).
        detect_regressions: arm the :class:`RegressionDetector`.
        regression_threshold / baseline_calls / regression_window: detector
            tuning (see :mod:`repro.obs.regress`).
        journal_seed: seed for the trace-sampling decisions (deterministic
            runs in tests).
    """

    def __init__(
        self,
        journal_path: str | Path | None = None,
        trace_sample_rate: float = 0.0,
        detect_regressions: bool = True,
        regression_threshold: float = DEFAULT_REGRESSION_THRESHOLD,
        baseline_calls: int = DEFAULT_BASELINE_CALLS,
        regression_window: int = DEFAULT_REGRESSION_WINDOW,
        journal_seed: int = 0,
    ) -> None:
        self.stats = QueryStatsStore()
        self.journal = (
            EventJournal(journal_path, trace_sample_rate=trace_sample_rate, seed=journal_seed)
            if journal_path is not None
            else None
        )
        self.detector = (
            RegressionDetector(
                threshold=regression_threshold,
                baseline_calls=baseline_calls,
                window=regression_window,
            )
            if detect_regressions
            else None
        )
        self.regressions: list[RegressionEvent] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_query(
        self,
        fingerprint: str,
        planner: str,
        seconds: float,
        execution_seconds: float,
        rows: int,
        pages_read: int,
        pages_pruned: int,
        cache_hit: bool,
        plan_hash: str | None = None,
        trace: dict | None = None,
    ) -> list[RegressionEvent]:
        """Record one finished query; returns newly detected regressions."""
        self.stats.observe_query(
            fingerprint,
            planner,
            seconds,
            rows,
            pages_read,
            pages_pruned,
            cache_hit,
            plan_hash,
        )
        if self.journal is not None:
            event = {
                "fingerprint": fingerprint,
                "planner": planner,
                "seconds": seconds,
                "execution_seconds": execution_seconds,
                "rows": rows,
                "pages_read": pages_read,
                "pages_pruned": pages_pruned,
                "cache_hit": cache_hit,
                "plan_hash": plan_hash,
            }
            if trace is not None and self.journal.sample_trace():
                event["trace"] = trace
            self.journal.append("query", **event)
            publish_journal_event()
        events: list[RegressionEvent] = []
        if self.detector is not None:
            with self._lock:
                events = self.detector.observe(
                    fingerprint,
                    execution_seconds=execution_seconds,
                    pages_read=pages_read,
                    plan_hash=plan_hash,
                )
                self.regressions.extend(events)
            for event in events:
                publish_regression()
                if self.journal is not None:
                    self.journal.append("regression", **event.as_dict())
                    publish_journal_event()
        return events

    def record_error(self, fingerprint: str, planner: str, error: str) -> None:
        """Record one failed execution."""
        self.stats.record_error(fingerprint, planner)
        if self.journal is not None:
            self.journal.append(
                "query_error", fingerprint=fingerprint, planner=planner, error=error
            )
            publish_journal_event()

    def record_replan(self, fingerprint: str, reason: str = "drift") -> None:
        """Record one plan-cache re-plan (the drifted entry was retired)."""
        self.stats.record_replan(fingerprint)
        publish_replan()
        if self.journal is not None:
            self.journal.append("replan", fingerprint=fingerprint, reason=reason)
            publish_journal_event()

    def record_slow_query(self, record) -> None:
        """Route one :class:`~repro.obs.slowlog.SlowQueryRecord` to the journal."""
        if self.journal is not None:
            self.journal.append("slow_query", **record.as_dict())
            publish_journal_event()

    def record_event(self, kind: str, **fields) -> None:
        """Journal one engine event (compaction, recovery, conflict, ...)."""
        if self.journal is not None:
            self.journal.append(kind, **fields)
            publish_journal_event()

    def close(self) -> None:
        """Close the journal (idempotent); statistics stay readable."""
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "WorkloadHistory":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Offline replay
    # ------------------------------------------------------------------ #
    @classmethod
    def replay(
        cls,
        journal_path: str | Path,
        regression_threshold: float = DEFAULT_REGRESSION_THRESHOLD,
        baseline_calls: int = DEFAULT_BASELINE_CALLS,
        regression_window: int = DEFAULT_REGRESSION_WINDOW,
    ) -> "WorkloadHistory":
        """Rebuild a history (stats + detected regressions) from a journal.

        Replays the journal's ``query`` events through a fresh store and
        detector — this is what ``repro history`` runs on a dataset's
        journal file, and it is deterministic: the same journal always
        yields the same statistics and the same regression list.
        """
        history = cls(
            journal_path=None,
            regression_threshold=regression_threshold,
            baseline_calls=baseline_calls,
            regression_window=regression_window,
        )
        for event in read_journal(journal_path):
            kind = event.get("kind")
            if kind == "query":
                history.record_query(
                    fingerprint=str(event.get("fingerprint", "?")),
                    planner=str(event.get("planner", "?")),
                    seconds=float(event.get("seconds", 0.0)),
                    execution_seconds=float(event.get("execution_seconds", 0.0)),
                    rows=int(event.get("rows", 0)),
                    pages_read=int(event.get("pages_read", 0)),
                    pages_pruned=int(event.get("pages_pruned", 0)),
                    cache_hit=bool(event.get("cache_hit", False)),
                    plan_hash=event.get("plan_hash"),
                )
            elif kind == "query_error":
                history.stats.record_error(
                    str(event.get("fingerprint", "?")), str(event.get("planner", "?"))
                )
            elif kind == "replan":
                history.stats.record_replan(str(event.get("fingerprint", "?")))
        return history


# --------------------------------------------------------------------------- #
# The ambient seam
# --------------------------------------------------------------------------- #
#: The process-ambient history, or None.  Installed by the CLI / embedders;
#: read by Session.execute and the mutation subsystem's event hooks.
_AMBIENT: WorkloadHistory | None = None

#: True while a QueryService is the publisher for the current execution —
#: Session.execute then skips its own ambient publish (no double counting).
_SERVICE_PUBLISHER: ContextVar[bool] = ContextVar(
    "repro_history_service_publisher", default=False
)


def set_history(history: WorkloadHistory | None) -> WorkloadHistory | None:
    """Install (or clear, with ``None``) the ambient history; returns the old one."""
    global _AMBIENT
    previous = _AMBIENT
    _AMBIENT = history
    return previous


def get_history() -> WorkloadHistory | None:
    """The ambient history, or None."""
    return _AMBIENT


def record_event(kind: str, **fields) -> None:
    """Journal one event on the ambient history (no-op when none installed)."""
    history = _AMBIENT
    if history is not None:
        history.record_event(kind, **fields)


@contextmanager
def service_publishes():
    """Mark the current context: a service publishes history for this query.

    ``QueryService`` wraps its delegations to ``Session.execute`` in this so
    the session's own ambient publish stands down — the service's publish
    point (which knows the real plan-cache fingerprint) records the query
    exactly once.
    """
    token = _SERVICE_PUBLISHER.set(True)
    try:
        yield
    finally:
        _SERVICE_PUBLISHER.reset(token)


def session_should_publish() -> bool:
    """Should a bare ``Session.execute`` publish to the ambient history?"""
    return _AMBIENT is not None and not _SERVICE_PUBLISHER.get()

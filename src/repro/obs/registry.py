"""A process-wide metrics registry with Prometheus text exposition.

The engine's per-query counters (:class:`~repro.engine.metrics.ExecutionMetrics`,
:class:`~repro.storage.iostats.IOStats`) describe *one execution* and are
discarded with the result.  A serving process additionally needs cumulative,
machine-readable process state — how many queries ran, where the latency
distribution sits, how often the page cache hits, how many fsyncs the WAL
paid — which is what a :class:`MetricsRegistry` holds.

Three instrument kinds, mirroring the Prometheus data model:

* :class:`Counter` — monotonically increasing totals (``*_total``);
* :class:`Gauge` — a value that goes up and down (hit rates, sizes);
* :class:`Histogram` — fixed-bucket distributions (latencies, group sizes)
  rendered with cumulative ``_bucket{le="..."}`` samples plus ``_sum`` and
  ``_count``.

``registry.render()`` emits the standard text exposition format (the thing a
``/metrics`` endpoint serves and Prometheus scrapes); ``registry.snapshot()``
returns the same state as a plain JSON-able dictionary (reused by
``repro wal status --format json``).  All instruments are safe to update
from multiple threads; updates are a lock plus an addition, cheap enough for
per-read call sites.

This module deliberately imports nothing from the rest of the package so any
layer — storage, WAL, service — can publish into it without import cycles.
"""

from __future__ import annotations

import bisect
import json
import math
import re
import threading

#: Metric names must match the Prometheus data model.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default latency buckets (seconds) — sub-millisecond to tens of seconds,
#: roughly logarithmic, suiting both cached lookups and heavy scans.
DEFAULT_LATENCY_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _format_value(value: float) -> str:
    """A Prometheus-compatible rendering of one sample value."""
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value.is_integer():
            return str(int(value))
        return repr(value)
    return str(value)


class _Instrument:
    """Shared plumbing: name, help text, and the per-instrument lock."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()

    def render(self) -> list[str]:
        raise NotImplementedError

    def snapshot_value(self):
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError

    def _header(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Instrument):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help_text: str) -> None:
        super().__init__(name, help_text)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def render(self) -> list[str]:
        return self._header() + [f"{self.name} {_format_value(self._value)}"]

    def snapshot_value(self):
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge(_Instrument):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str) -> None:
        super().__init__(name, help_text)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def render(self) -> list[str]:
        return self._header() + [f"{self.name} {_format_value(self._value)}"]

    def snapshot_value(self):
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram(_Instrument):
    """A fixed-bucket distribution (cumulative buckets at render time).

    Buckets are upper bounds; an implicit ``+Inf`` bucket catches the rest.
    Observation is a binary search plus three additions under the lock.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text)
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name} has duplicate bucket bounds")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # per-bucket, last = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_counts(self) -> list[int]:
        """Cumulative per-bucket counts, ending with the total (``+Inf``)."""
        with self._lock:
            counts = list(self._counts)
        total = 0
        cumulative = []
        for count in counts:
            total += count
            cumulative.append(total)
        return cumulative

    def render(self) -> list[str]:
        cumulative = self.cumulative_counts()
        lines = self._header()
        for bound, count in zip(self.buckets, cumulative):
            lines.append(
                f'{self.name}_bucket{{le="{_format_value(float(bound))}"}} {count}'
            )
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {cumulative[-1]}')
        lines.append(f"{self.name}_sum {_format_value(self._sum)}")
        lines.append(f"{self.name}_count {self._count}")
        return lines

    def snapshot_value(self):
        cumulative = self.cumulative_counts()
        return {
            "buckets": {
                _format_value(float(bound)): count
                for bound, count in zip(self.buckets, cumulative)
            },
            "count": cumulative[-1],
            "sum": self._sum,
        }

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0


class MetricsRegistry:
    """A named collection of instruments with get-or-create registration.

    Instruments register under a unique name; asking for an existing name
    with the same kind returns the existing instrument (so independent
    modules can share a metric), while a kind clash raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    def _register(self, cls, name: str, help_text: str, **kwargs):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind}, not a {cls.kind}"
                    )
                return existing
            instrument = cls(name, help_text, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get or create the counter ``name``."""
        return self._register(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        return self._register(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram ``name`` (buckets fixed at creation)."""
        return self._register(Histogram, name, help_text, buckets=buckets)

    def get(self, name: str) -> _Instrument | None:
        """The instrument registered under ``name``, or None."""
        return self._instruments.get(name)

    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        return sorted(self._instruments)

    def render(self) -> str:
        """The registry in Prometheus text exposition format.

        Metric families are emitted in sorted name order; the output ends
        with a newline, as scrapers expect.
        """
        lines: list[str] = []
        for name in self.names():
            lines.extend(self._instruments[name].render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """The registry as a plain JSON-able dictionary.

        Counters and gauges map to their value; histograms map to
        ``{"buckets": {le: cumulative}, "count": n, "sum": s}``.  This is the
        serialization ``repro wal status --format json`` (and anything else
        that wants machine-readable metrics without a Prometheus parser)
        reuses.
        """
        return {
            name: self._instruments[name].snapshot_value() for name in self.names()
        }

    def snapshot_json(self, indent: int | None = 2) -> str:
        """:meth:`snapshot` rendered as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Zero every instrument (tests and benchmark isolation)."""
        for instrument in self._instruments.values():
            instrument.reset()


#: The process-wide registry every subsystem publishes into by default.
GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return GLOBAL_REGISTRY

"""The slow-query log: structured records for queries over a threshold.

``QueryService(slow_query_seconds=0.5)`` arms the log; every execution whose
end-to-end latency (planning + execution) meets the threshold emits one
:class:`SlowQueryRecord` carrying enough context to reproduce and triage the
query — fingerprint, planner, latency split, rows, pages read/pruned, plan
cache hit, kernel tier, shard count — without the operator having to re-run
it with tracing on.

Records land in a bounded in-memory ring (newest kept) and, when a ``sink``
callable is given, are also pushed there — a sink is how an embedder routes
records to logging, a file, or an alerting pipeline.  A failing sink never
fails the query; the record still lands in the ring.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass

from .instruments import publish_slow_query


@dataclass(frozen=True)
class SlowQueryRecord:
    """One over-threshold query, as reported by :class:`SlowQueryLog`."""

    fingerprint: str
    planner: str
    elapsed_seconds: float
    planning_seconds: float
    execution_seconds: float
    rows: int
    pages_read: int
    pages_pruned: int
    cache_hit: bool
    kernel_tier: str | None
    shards: int | None

    def as_dict(self) -> dict:
        """The record as a plain dictionary."""
        return asdict(self)

    def as_json(self) -> str:
        """The record as a single-line JSON document (log-friendly)."""
        return json.dumps(self.as_dict(), sort_keys=True)


class SlowQueryLog:
    """A bounded ring of :class:`SlowQueryRecord` with a pluggable sink."""

    def __init__(
        self,
        threshold_seconds: float,
        sink=None,
        capacity: int = 256,
    ) -> None:
        if threshold_seconds < 0:
            raise ValueError("slow-query threshold must be >= 0")
        self.threshold_seconds = float(threshold_seconds)
        self.sink = sink
        self._records: deque[SlowQueryRecord] = deque(maxlen=capacity)

    def observe(self, record: SlowQueryRecord) -> bool:
        """Consider one finished query; returns True if it was logged."""
        if record.elapsed_seconds < self.threshold_seconds:
            return False
        self._records.append(record)
        publish_slow_query()
        if self.sink is not None:
            try:
                self.sink(record)
            except Exception:
                # A broken sink must never fail the query that tripped it.
                pass
        return True

    @property
    def records(self) -> list[SlowQueryRecord]:
        """The retained records, oldest first."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        self._records.clear()

"""The slow-query log: structured records for queries over a threshold.

``QueryService(slow_query_seconds=0.5)`` arms the log; every execution whose
end-to-end latency (planning + execution) meets the threshold emits one
:class:`SlowQueryRecord` carrying enough context to reproduce and triage the
query — fingerprint, planner, latency split, rows, pages read/pruned, plan
cache hit, kernel tier, shard count — without the operator having to re-run
it with tracing on.

Records land in a bounded in-memory ring (newest kept) and, when a ``sink``
callable is given, are also pushed there — a sink is how an embedder routes
records to logging, a file, or an alerting pipeline.  A failing sink never
fails the query; the record still lands in the ring.

:class:`RotatingFileSink` is the batteries-included file sink
(``QueryService(slow_query_log_path=...)`` / CLI ``--slow-query-log``): one
JSON line per record, rotated by size with a bounded set of ``.1 .. .N``
rotated files, so a misbehaving workload cannot fill the disk with its own
diagnostics.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from dataclasses import asdict, dataclass
from pathlib import Path

from .instruments import publish_slow_query

#: Default size at which a :class:`RotatingFileSink` rotates its file.
DEFAULT_SLOW_LOG_MAX_BYTES = 1_000_000

#: Default number of rotated files a :class:`RotatingFileSink` keeps.
DEFAULT_SLOW_LOG_KEEP = 3


@dataclass(frozen=True)
class SlowQueryRecord:
    """One over-threshold query, as reported by :class:`SlowQueryLog`."""

    fingerprint: str
    planner: str
    elapsed_seconds: float
    planning_seconds: float
    execution_seconds: float
    rows: int
    pages_read: int
    pages_pruned: int
    cache_hit: bool
    kernel_tier: str | None
    shards: int | None

    def as_dict(self) -> dict:
        """The record as a plain dictionary."""
        return asdict(self)

    def as_json(self) -> str:
        """The record as a single-line JSON document (log-friendly)."""
        return json.dumps(self.as_dict(), sort_keys=True)


class RotatingFileSink:
    """A slow-query sink writing one JSON line per record, rotated by size.

    When the live file reaches ``max_bytes`` it is renamed to ``<path>.1``
    (existing rotated files shuffle up: ``.1`` -> ``.2`` and so on) and a
    fresh file is started; at most ``keep`` rotated files are retained, the
    oldest dropped.  Writes are serialized by a lock so a service's batch
    worker threads never interleave partial lines.
    """

    def __init__(
        self,
        path: str | Path,
        max_bytes: int = DEFAULT_SLOW_LOG_MAX_BYTES,
        keep: int = DEFAULT_SLOW_LOG_KEEP,
    ) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        if keep < 0:
            raise ValueError("keep must be >= 0")
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self.keep = int(keep)
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def __call__(self, record: SlowQueryRecord) -> None:
        line = record.as_json() + "\n"
        with self._lock:
            if (
                self.path.exists()
                and self.path.stat().st_size + len(line) > self.max_bytes
            ):
                self._rotate()
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)

    def _rotate(self) -> None:
        """Shuffle ``path`` -> ``.1`` -> ``.2`` ... dropping past ``keep``."""
        if self.keep == 0:
            self.path.unlink(missing_ok=True)
            return
        oldest = self.rotated_path(self.keep)
        oldest.unlink(missing_ok=True)
        for index in range(self.keep - 1, 0, -1):
            source = self.rotated_path(index)
            if source.exists():
                os.replace(source, self.rotated_path(index + 1))
        os.replace(self.path, self.rotated_path(1))

    def rotated_path(self, index: int) -> Path:
        """The path of the ``index``-th rotated file (1 = most recent)."""
        return self.path.with_name(f"{self.path.name}.{index}")

    def existing_files(self) -> list[Path]:
        """The live file plus rotated files that exist, newest first."""
        candidates = [self.path] + [
            self.rotated_path(index) for index in range(1, self.keep + 1)
        ]
        return [path for path in candidates if path.exists()]


class SlowQueryLog:
    """A bounded ring of :class:`SlowQueryRecord` with a pluggable sink."""

    def __init__(
        self,
        threshold_seconds: float,
        sink=None,
        capacity: int = 256,
    ) -> None:
        if threshold_seconds < 0:
            raise ValueError("slow-query threshold must be >= 0")
        self.threshold_seconds = float(threshold_seconds)
        self.sink = sink
        self._records: deque[SlowQueryRecord] = deque(maxlen=capacity)

    def observe(self, record: SlowQueryRecord) -> bool:
        """Consider one finished query; returns True if it was logged."""
        if record.elapsed_seconds < self.threshold_seconds:
            return False
        self._records.append(record)
        publish_slow_query()
        if self.sink is not None:
            try:
                self.sink(record)
            except Exception:
                # A broken sink must never fail the query that tripped it.
                pass
        return True

    @property
    def records(self) -> list[SlowQueryRecord]:
        """The retained records, oldest first."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        self._records.clear()

"""Structured query tracing: hierarchical span trees with operator timing.

A :class:`Tracer` rides on :class:`~repro.engine.metrics.ExecContext` exactly
like ``ExecutionMetrics`` does: opt-in, forked per morsel worker, shipped
across shard-process boundaries as plain data, and merged back through the
same ``fork``/``absorb`` path — so a traced query yields one span tree no
matter how many threads or processes executed it.

Two kinds of timing live here:

* **Spans** — named intervals (``query`` → ``plan`` / ``execute`` →
  ``morsel`` / ``shard.scatter_gather`` → ``postprocess``, plus ambient
  ``wal.commit`` / ``recovery`` / ``compaction`` spans) forming a tree.
  Spans carry attributes (the existing counters hitch a ride here).
* **Operator timings** — per-``PhysicalOperator`` accumulators fed by
  :meth:`Tracer.op_enter` / :meth:`Tracer.op_exit` around ``next_batch``.
  A span per batch would drown the tree, so operators accumulate
  ``(inclusive, self, calls)`` triples instead; ``self`` subtracts child
  operators' time via a shadow stack, so self-times are additive and their
  sum is bounded by the execution span on a serial run.

Export formats: :meth:`Tracer.to_dict` / :meth:`Tracer.to_json` (plain tree)
and :meth:`Tracer.to_chrome_trace` (Chrome ``chrome://tracing`` /  Perfetto
trace-event JSON).

Mutation-side code (WAL, recovery, compaction) is not reached by an
``ExecContext``, so it publishes through an *ambient* tracer instead: wrap a
region in ``with tracer.activate():`` and nested code can open spans via the
module-level :func:`ambient_span` helper, which is a no-op when no tracer is
active — keeping the untraced hot path free of any bookkeeping.

All timestamps are ``time.perf_counter()`` values: meaningful within one
process only, which is why cross-process payloads are re-anchored on absorb
(durations stay exact; only the offset between processes is approximate).
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import time
from dataclasses import dataclass, field


@dataclass
class Span:
    """One named interval in the trace tree."""

    name: str
    start: float
    end: float | None = None
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


def _span_to_payload(span: Span) -> dict:
    return {
        "name": span.name,
        "start": span.start,
        "end": span.end if span.end is not None else span.start,
        "attrs": dict(span.attrs),
        "children": [_span_to_payload(child) for child in span.children],
    }


def _span_from_payload(payload: dict, shift: float) -> Span:
    return Span(
        name=payload["name"],
        start=payload["start"] + shift,
        end=payload["end"] + shift,
        attrs=dict(payload["attrs"]),
        children=[
            _span_from_payload(child, shift) for child in payload["children"]
        ],
    )


class Tracer:
    """Collects one query's span tree and operator timings.

    Not thread-safe by design: every morsel worker gets its own tracer via
    :meth:`fork` and the parent merges them after the workers join, mirroring
    how ``ExecutionMetrics`` avoids locks.
    """

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        # (node_id, label) -> [inclusive_seconds, self_seconds, calls]
        self.op_totals: dict[tuple[int, str], list] = {}
        self._op_stack: list[float] = []

    # ------------------------------------------------------------------ spans

    def begin(self, name: str, **attrs) -> Span:
        """Open a span as a child of the innermost open span."""
        span = Span(name=name, start=time.perf_counter(), attrs=attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end(self, **attrs) -> Span:
        """Close the innermost open span, merging ``attrs`` into it."""
        if not self._stack:
            raise RuntimeError("Tracer.end() with no open span")
        span = self._stack.pop()
        span.end = time.perf_counter()
        if attrs:
            span.attrs.update(attrs)
        return span

    @contextlib.contextmanager
    def span(self, name: str, **attrs):
        """``with tracer.span("execute"):`` — begin/end around a block."""
        span = self.begin(name, **attrs)
        try:
            yield span
        finally:
            # The block may have leaked child spans on error; close them so
            # the tree stays well-formed.
            while self._stack and self._stack[-1] is not span:
                self.end()
            if self._stack and self._stack[-1] is span:
                self.end()

    def annotate(self, **attrs) -> None:
        """Attach attributes to the innermost open span (no-op at top level)."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    def add_synthetic(self, name: str, seconds: float, **attrs) -> Span:
        """Record a span for work that happened before tracing could start.

        Used to backfill e.g. planning time measured by the caller (a plan
        may come from the cache, planned long before this execution).  The
        span is pinned to the start of the innermost open span so the tree
        reads in causal order; ``synthetic: true`` marks the approximation.
        """
        if self._stack:
            parent = self._stack[-1]
            start = parent.start
            children = parent.children
        else:
            start = time.perf_counter() - seconds
            children = self.roots
        span = Span(
            name=name,
            start=start,
            end=start + seconds,
            attrs={"synthetic": True, **attrs},
        )
        children.append(span)
        return span

    # -------------------------------------------------------- operator timing

    def op_enter(self) -> float:
        """Start timing one ``next_batch`` call; returns the start stamp."""
        self._op_stack.append(0.0)
        return time.perf_counter()

    def op_exit(self, node_id: int, label: str, started: float) -> None:
        """Finish timing one ``next_batch`` call.

        ``self`` time subtracts the time spent inside child operators'
        ``next_batch`` calls, which the shadow stack accumulated while this
        frame was open.
        """
        elapsed = time.perf_counter() - started
        child_seconds = self._op_stack.pop()
        if self._op_stack:
            self._op_stack[-1] += elapsed
        totals = self.op_totals.get((node_id, label))
        if totals is None:
            totals = [0.0, 0.0, 0]
            self.op_totals[(node_id, label)] = totals
        totals[0] += elapsed
        totals[1] += elapsed - child_seconds
        totals[2] += 1

    def operator_timings(self) -> dict[int, dict]:
        """Per-node timing summary keyed by plan node id.

        ``{node_id: {"label", "seconds", "self_seconds", "calls"}}`` —
        ``seconds`` is inclusive of child operators (what EXPLAIN ANALYZE
        shows), ``self_seconds`` is exclusive (additive across operators).
        """
        out: dict[int, dict] = {}
        for (node_id, label), (incl, self_s, calls) in self.op_totals.items():
            entry = out.get(node_id)
            if entry is None:
                out[node_id] = {
                    "label": label,
                    "seconds": incl,
                    "self_seconds": self_s,
                    "calls": calls,
                }
            else:
                entry["seconds"] += incl
                entry["self_seconds"] += self_s
                entry["calls"] += calls
        return out

    # ---------------------------------------------------------- fork / absorb

    def fork(self) -> "Tracer":
        """A fresh tracer for a worker; merge it back with :meth:`absorb`."""
        return Tracer()

    def absorb(self, child: "Tracer") -> None:
        """Merge a forked tracer: re-parent its spans, sum its op timings."""
        if child is None or child is self:
            return
        if self._stack:
            self._stack[-1].children.extend(child.roots)
        else:
            self.roots.extend(child.roots)
        self._merge_op_totals(child.op_totals)

    def _merge_op_totals(self, other: dict) -> None:
        for key, (incl, self_s, calls) in other.items():
            totals = self.op_totals.get(key)
            if totals is None:
                self.op_totals[key] = [incl, self_s, calls]
            else:
                totals[0] += incl
                totals[1] += self_s
                totals[2] += calls

    # ------------------------------------------------- cross-process shipping

    def to_payload(self) -> dict:
        """Plain-data form for shipping across a process boundary."""
        return {
            "roots": [_span_to_payload(span) for span in self.roots],
            "op_totals": [
                [node_id, label, incl, self_s, calls]
                for (node_id, label), (incl, self_s, calls) in self.op_totals.items()
            ],
        }

    def absorb_payload(self, payload: dict) -> None:
        """Merge a worker-process payload, re-anchoring its clock.

        ``perf_counter`` origins differ between processes, so remote spans
        are shifted to start at the innermost open span here (durations are
        exact; the offset between processes is approximate by nature).
        """
        if not payload:
            return
        roots = payload.get("roots", ())
        if roots:
            starts = [span["start"] for span in roots]
            anchor = (
                self._stack[-1].start if self._stack else time.perf_counter()
            )
            shift = anchor - min(starts)
            shifted = [_span_from_payload(span, shift) for span in roots]
            if self._stack:
                self._stack[-1].children.extend(shifted)
            else:
                self.roots.extend(shifted)
        self._merge_op_totals(
            {
                (node_id, label): [incl, self_s, calls]
                for node_id, label, incl, self_s, calls in payload.get(
                    "op_totals", ()
                )
            }
        )

    # ----------------------------------------------------------------- export

    def _origin(self) -> float:
        if self.roots:
            return min(span.start for span in self.roots)
        return 0.0

    def to_dict(self) -> dict:
        """The trace as a plain dictionary (times relative to trace start)."""
        origin = self._origin()

        def convert(span: Span) -> dict:
            return {
                "name": span.name,
                "start_s": round(span.start - origin, 9),
                "duration_s": round(span.duration, 9),
                "attrs": dict(span.attrs),
                "children": [convert(child) for child in span.children],
            }

        return {
            "spans": [convert(span) for span in self.roots],
            "operators": {
                str(node_id): timing
                for node_id, timing in sorted(self.operator_timings().items())
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        """:meth:`to_dict` rendered as JSON."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_chrome_trace(self) -> dict:
        """The trace in Chrome trace-event format (load in ``chrome://tracing``
        or Perfetto).  Spans become complete events (``ph: "X"``) with
        microsecond timestamps; operator totals become one event each at the
        trace origin so their relative weight is visible on the timeline.
        """
        origin = self._origin()
        events: list[dict] = []

        def emit(span: Span) -> None:
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": (span.start - origin) * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": 0,
                    "tid": 0,
                    "args": dict(span.attrs),
                }
            )
            for child in span.children:
                emit(child)

        for span in self.roots:
            emit(span)
        for node_id, timing in sorted(self.operator_timings().items()):
            events.append(
                {
                    "name": f"op:{timing['label']}#{node_id}",
                    "ph": "X",
                    "ts": 0.0,
                    "dur": timing["seconds"] * 1e6,
                    "pid": 0,
                    "tid": 1,
                    "args": {
                        "calls": timing["calls"],
                        "self_seconds": timing["self_seconds"],
                    },
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    # ---------------------------------------------------------------- ambient

    def activate(self):
        """Install this tracer as the ambient one for the enclosed block.

        Code without an ``ExecContext`` in reach (WAL commit, recovery,
        compaction) opens spans through :func:`ambient_span`, which finds
        the tracer installed here.
        """
        return _activation(self)


_AMBIENT: contextvars.ContextVar[Tracer | None] = contextvars.ContextVar(
    "repro_ambient_tracer", default=None
)


@contextlib.contextmanager
def _activation(tracer: Tracer):
    token = _AMBIENT.set(tracer)
    try:
        yield tracer
    finally:
        _AMBIENT.reset(token)


def current_tracer() -> Tracer | None:
    """The ambient tracer installed by :meth:`Tracer.activate`, if any."""
    return _AMBIENT.get()


@contextlib.contextmanager
def ambient_span(name: str, **attrs):
    """Open ``name`` on the ambient tracer; a no-op when tracing is off.

    This is the single line mutation-side call sites pay:
    ``with ambient_span("wal.commit", ops=len(ops)):`` — when no tracer is
    active the cost is one context-variable read.
    """
    tracer = _AMBIENT.get()
    if tracer is None:
        yield None
        return
    with tracer.span(name, **attrs) as span:
        yield span

"""The standard instrument catalog plus publish helpers for each subsystem.

Every metric the engine exports lives here under one naming scheme so the
exposition stays coherent:

    repro_<subsystem>_<what>[_total]     counters (monotonic)
    repro_<subsystem>_<what>             gauges (point-in-time)
    repro_<subsystem>_<what>_seconds     histograms of durations
    repro_<subsystem>_<what>_<unit>      histograms of sizes/counts

Subsystems: ``query`` (service/session), ``plan_cache``, ``feedback``,
``page_cache``, ``scan``, ``exec`` (morsel/shard pools), ``wal``,
``recovery``, ``compaction``.

Call sites go through the ``publish_*`` helpers below, which check the
module-level :data:`ENABLED` flag first — `set_enabled(False)` turns every
helper into a single boolean test, which is how the overhead benchmark
measures a truly bare baseline and how embedders opt out entirely.

Instruments are created eagerly at import so ``repro metrics`` renders the
full catalog (with zeros) even before any traffic — scrapers prefer a stable
set of series over ones that pop into existence.
"""

from __future__ import annotations

from .registry import get_registry

#: Master switch for all publish helpers in this module.
ENABLED = True


def set_enabled(flag: bool) -> None:
    """Turn metric publication on or off process-wide."""
    global ENABLED
    ENABLED = bool(flag)


_REG = get_registry()

# --- query lifecycle (published by Session.execute_prepared / QueryService)
QUERIES = _REG.counter("repro_queries_total", "Queries executed.")
QUERY_SECONDS = _REG.histogram(
    "repro_query_seconds", "End-to-end query latency (plan + execute)."
)
QUERY_ROWS = _REG.counter("repro_query_rows_total", "Rows returned to clients.")
SLOW_QUERIES = _REG.counter(
    "repro_slow_queries_total",
    "Queries slower than the service slow_query_seconds threshold.",
)

# --- plan cache / feedback (published by QueryService)
PLAN_CACHE_HITS = _REG.counter(
    "repro_plan_cache_hits_total", "Plan cache hits in QueryService."
)
PLAN_CACHE_MISSES = _REG.counter(
    "repro_plan_cache_misses_total", "Plan cache misses in QueryService."
)
PLAN_CACHE_HIT_RATE = _REG.gauge(
    "repro_plan_cache_hit_rate", "Plan cache hit rate since process start."
)
FEEDBACK_OBSERVATIONS = _REG.gauge(
    "repro_feedback_observations",
    "Cardinality observations accumulated by the feedback store.",
)
FEEDBACK_REPLANS = _REG.gauge(
    "repro_feedback_replans", "Plans invalidated by cardinality drift."
)

# --- storage (published by the page cache and per-query IO accounting)
PAGE_CACHE_HITS = _REG.counter(
    "repro_page_cache_hits_total", "Page cache hits."
)
PAGE_CACHE_MISSES = _REG.counter(
    "repro_page_cache_misses_total", "Page cache misses."
)
PAGES_READ = _REG.counter(
    "repro_scan_pages_read_total", "Column pages decoded by scans."
)
PAGES_PRUNED = _REG.counter(
    "repro_scan_pages_pruned_total",
    "Column pages skipped via zone maps / indexes.",
)

# --- execution pools (published by the morsel and shard schedulers)
MORSELS = _REG.counter(
    "repro_exec_morsels_total", "Morsels dispatched to the thread pool."
)
SHARD_TASKS = _REG.counter(
    "repro_exec_shard_tasks_total", "Shard tasks dispatched to worker processes."
)

# --- durability (published by the WAL, recovery, and the compactor)
WAL_COMMITS = _REG.counter("repro_wal_commits_total", "WAL transactions committed.")
WAL_FSYNCS = _REG.counter("repro_wal_fsyncs_total", "WAL fsync calls issued.")
WAL_BYTES = _REG.counter("repro_wal_bytes_total", "Bytes appended to the WAL.")
WAL_COMMIT_OPS = _REG.histogram(
    "repro_wal_commit_ops",
    "Operations per committed WAL transaction (group size).",
    buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
)
RECOVERIES = _REG.counter(
    "repro_recovery_runs_total", "WAL replay passes performed at open."
)
RECOVERY_TXNS = _REG.counter(
    "repro_recovery_replayed_txns_total", "Transactions replayed from the WAL."
)
COMPACTIONS = _REG.counter("repro_compaction_runs_total", "Compactions completed.")
COMPACTION_ROWS_RECLAIMED = _REG.counter(
    "repro_compaction_rows_reclaimed_total",
    "Deleted rows physically reclaimed by compaction.",
)

# --- workload history (published by repro.obs.history)
HISTORY_REGRESSIONS = _REG.counter(
    "repro_history_regressions_total",
    "Plan regressions flagged by the workload-history detector.",
)
HISTORY_REPLANS = _REG.counter(
    "repro_history_replans_total",
    "Plan-cache entries retired for re-planning, as seen by history.",
)
HISTORY_JOURNAL_EVENTS = _REG.counter(
    "repro_history_journal_events_total",
    "Events appended to the workload-history event journal.",
)


def publish_query(
    seconds: float,
    rows: int,
    pages_read: int,
    pages_pruned: int,
    morsels: int,
    shard_tasks: int,
) -> None:
    """Record one finished query execution."""
    if not ENABLED:
        return
    QUERIES.inc()
    QUERY_SECONDS.observe(seconds)
    QUERY_ROWS.inc(rows)
    if pages_read:
        PAGES_READ.inc(pages_read)
    if pages_pruned:
        PAGES_PRUNED.inc(pages_pruned)
    if morsels:
        MORSELS.inc(morsels)
    if shard_tasks:
        SHARD_TASKS.inc(shard_tasks)


def publish_plan_cache(hit: bool) -> None:
    """Record one plan-cache lookup and refresh the hit-rate gauge."""
    if not ENABLED:
        return
    if hit:
        PLAN_CACHE_HITS.inc()
    else:
        PLAN_CACHE_MISSES.inc()
    total = PLAN_CACHE_HITS.value + PLAN_CACHE_MISSES.value
    if total:
        PLAN_CACHE_HIT_RATE.set(PLAN_CACHE_HITS.value / total)


def publish_feedback(observations: int, replans: int) -> None:
    """Refresh the feedback-store gauges."""
    if not ENABLED:
        return
    FEEDBACK_OBSERVATIONS.set(observations)
    FEEDBACK_REPLANS.set(replans)


def publish_page_cache(hits: int, misses: int) -> None:
    """Record a batch of page-cache accesses."""
    if not ENABLED:
        return
    if hits:
        PAGE_CACHE_HITS.inc(hits)
    if misses:
        PAGE_CACHE_MISSES.inc(misses)


def publish_slow_query() -> None:
    """Count one query over the slow-query threshold."""
    if ENABLED:
        SLOW_QUERIES.inc()


def publish_wal_commit(ops: int, bytes_written: int, fsyncs: int) -> None:
    """Record one committed WAL transaction."""
    if not ENABLED:
        return
    WAL_COMMITS.inc()
    WAL_COMMIT_OPS.observe(ops)
    if bytes_written:
        WAL_BYTES.inc(bytes_written)
    if fsyncs:
        WAL_FSYNCS.inc(fsyncs)


def publish_recovery(replayed_txns: int) -> None:
    """Record one WAL replay pass."""
    if not ENABLED:
        return
    RECOVERIES.inc()
    if replayed_txns:
        RECOVERY_TXNS.inc(replayed_txns)


def publish_compaction(rows_reclaimed: int) -> None:
    """Record one completed compaction."""
    if not ENABLED:
        return
    COMPACTIONS.inc()
    if rows_reclaimed:
        COMPACTION_ROWS_RECLAIMED.inc(rows_reclaimed)


def publish_regression() -> None:
    """Count one plan regression flagged by the history detector."""
    if ENABLED:
        HISTORY_REGRESSIONS.inc()


def publish_replan() -> None:
    """Count one drift re-plan recorded by the workload history."""
    if ENABLED:
        HISTORY_REPLANS.inc()


def publish_journal_event() -> None:
    """Count one event appended to the history journal."""
    if ENABLED:
        HISTORY_JOURNAL_EVENTS.inc()


def publish_wal_status(registry, status: dict, prefix: str = "repro_wal") -> None:
    """Publish a ``wal_status()`` dictionary as gauges on ``registry``.

    Used by ``repro metrics`` (global registry) and by
    ``repro wal status --format json`` (a private registry whose
    ``snapshot()`` becomes the JSON document), so both speak the same
    serialization.
    """
    for key, value in status.items():
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, (int, float)):
            continue
        registry.gauge(f"{prefix}_{key}", f"WAL status field {key!r}.").set(value)

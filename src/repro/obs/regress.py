"""Plan-regression detection over per-fingerprint execution history.

A query fingerprint that suddenly gets slower — because cardinality-drift
re-planning picked a worse plan, a compaction changed the physical layout,
or an index was dropped — shows up here before an operator goes digging.
The :class:`RegressionDetector` keeps, per fingerprint and per metric
(execution seconds and pages read), a **baseline** — the median of the first
``baseline_calls`` observations — and a sliding **recent window**; when the
recent median degrades beyond ``threshold`` × baseline it emits one
structured :class:`RegressionEvent`.

Pages read is the metric that makes detection deterministic in tests and CI:
a worse plan reads more pages on every run, while wall-clock latency is
noisy.  Each (fingerprint, metric, plan hash) flags at most once — a
regression is an edge, not a level, and re-planning to yet another plan
re-arms the alarm for the new plan hash.
"""

from __future__ import annotations

import statistics
from collections import deque
from dataclasses import asdict, dataclass, field

#: Degradation factor (recent median / baseline median) that flags.
DEFAULT_REGRESSION_THRESHOLD = 2.0

#: Observations that form a fingerprint's baseline before detection arms.
DEFAULT_BASELINE_CALLS = 8

#: Size of the sliding recent window compared against the baseline.
DEFAULT_REGRESSION_WINDOW = 4


@dataclass(frozen=True)
class RegressionEvent:
    """One detected degradation of a fingerprint on one metric."""

    fingerprint: str
    metric: str
    baseline: float
    recent: float
    ratio: float
    threshold: float
    plan_hash: str | None
    calls: int

    def as_dict(self) -> dict:
        """The event as a plain dictionary (journal / JSON friendly)."""
        return asdict(self)


@dataclass
class _FingerprintWindow:
    """Per-fingerprint detector state: baseline samples + recent windows."""

    baseline: dict[str, list[float]] = field(default_factory=dict)
    recent: dict[str, deque] = field(default_factory=dict)
    flagged: set[tuple[str, str | None]] = field(default_factory=set)
    calls: int = 0


class RegressionDetector:
    """Flags fingerprints whose recent window degrades beyond the baseline.

    Not thread-safe on its own — :class:`~repro.obs.history.WorkloadHistory`
    calls it from the coordinator-side publish point, which is already
    serialized per service.
    """

    METRICS = ("execution_seconds", "pages_read")

    def __init__(
        self,
        threshold: float = DEFAULT_REGRESSION_THRESHOLD,
        baseline_calls: int = DEFAULT_BASELINE_CALLS,
        window: int = DEFAULT_REGRESSION_WINDOW,
    ) -> None:
        if threshold <= 1.0:
            raise ValueError(f"threshold must exceed 1.0, got {threshold}")
        if baseline_calls < 1 or window < 1:
            raise ValueError("baseline_calls and window must be >= 1")
        self.threshold = float(threshold)
        self.baseline_calls = int(baseline_calls)
        self.window = int(window)
        self._state: dict[str, _FingerprintWindow] = {}

    def observe(
        self,
        fingerprint: str,
        execution_seconds: float,
        pages_read: int,
        plan_hash: str | None = None,
    ) -> list[RegressionEvent]:
        """Fold one execution in; returns newly flagged regressions (if any)."""
        state = self._state.setdefault(fingerprint, _FingerprintWindow())
        state.calls += 1
        events: list[RegressionEvent] = []
        samples = {
            "execution_seconds": float(execution_seconds),
            "pages_read": float(pages_read),
        }
        for metric, value in samples.items():
            baseline = state.baseline.setdefault(metric, [])
            if len(baseline) < self.baseline_calls:
                baseline.append(value)
                continue
            recent = state.recent.setdefault(metric, deque(maxlen=self.window))
            recent.append(value)
            if len(recent) < self.window:
                continue
            baseline_median = statistics.median(baseline)
            if baseline_median <= 0.0:
                continue  # a zero baseline has no meaningful ratio
            recent_median = statistics.median(recent)
            ratio = recent_median / baseline_median
            key = (metric, plan_hash)
            if ratio >= self.threshold and key not in state.flagged:
                state.flagged.add(key)
                events.append(
                    RegressionEvent(
                        fingerprint=fingerprint,
                        metric=metric,
                        baseline=baseline_median,
                        recent=recent_median,
                        ratio=ratio,
                        threshold=self.threshold,
                        plan_hash=plan_hash,
                        calls=state.calls,
                    )
                )
        return events

    def reset(self, fingerprint: str | None = None) -> None:
        """Forget one fingerprint's state (or everything with ``None``)."""
        if fingerprint is None:
            self._state.clear()
        else:
            self._state.pop(fingerprint, None)

    def __len__(self) -> int:
        return len(self._state)

"""Observability: tracing, metrics, slow-query log, and workload history.

Cooperating pieces, all opt-in on the execution hot path:

* :mod:`repro.obs.trace` — a hierarchical :class:`~repro.obs.trace.Tracer`
  riding on ``ExecContext`` (span tree per query, per-operator timing,
  merged across morsel threads and shard processes, exported as JSON or
  Chrome trace events);
* :mod:`repro.obs.registry` — a process-wide
  :class:`~repro.obs.registry.MetricsRegistry` of counters / gauges /
  histograms with Prometheus text exposition, fed by the standard
  instrument catalog in :mod:`repro.obs.instruments`;
* :mod:`repro.obs.slowlog` — a structured
  :class:`~repro.obs.slowlog.SlowQueryLog` armed by
  ``QueryService(slow_query_seconds=...)``, with a size-rotated
  :class:`~repro.obs.slowlog.RotatingFileSink`;
* :mod:`repro.obs.history` — the longitudinal layer: a per-fingerprint
  :class:`~repro.obs.history.QueryStatsStore`, the persistent checksummed
  :class:`~repro.obs.journal.EventJournal`, and the
  :class:`~repro.obs.regress.RegressionDetector`, composed by
  :class:`~repro.obs.history.WorkloadHistory` (CLI: ``repro history``,
  ``repro top``).
"""

from .history import (
    FingerprintStats,
    QueryStatsStore,
    WorkloadHistory,
    get_history,
    set_history,
)
from .journal import EventJournal, JournalScan, read_journal, scan_journal
from .regress import RegressionDetector, RegressionEvent
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from .slowlog import RotatingFileSink, SlowQueryLog, SlowQueryRecord
from .trace import Span, Tracer, ambient_span, current_tracer

__all__ = [
    "Counter",
    "EventJournal",
    "FingerprintStats",
    "Gauge",
    "Histogram",
    "JournalScan",
    "MetricsRegistry",
    "QueryStatsStore",
    "RegressionDetector",
    "RegressionEvent",
    "RotatingFileSink",
    "SlowQueryLog",
    "SlowQueryRecord",
    "Span",
    "Tracer",
    "WorkloadHistory",
    "ambient_span",
    "current_tracer",
    "get_history",
    "get_registry",
    "read_journal",
    "scan_journal",
    "set_history",
]

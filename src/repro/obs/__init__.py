"""Observability: query tracing, process metrics, and the slow-query log.

Three cooperating pieces, all opt-in on the execution hot path:

* :mod:`repro.obs.trace` — a hierarchical :class:`~repro.obs.trace.Tracer`
  riding on ``ExecContext`` (span tree per query, per-operator timing,
  merged across morsel threads and shard processes, exported as JSON or
  Chrome trace events);
* :mod:`repro.obs.registry` — a process-wide
  :class:`~repro.obs.registry.MetricsRegistry` of counters / gauges /
  histograms with Prometheus text exposition, fed by the standard
  instrument catalog in :mod:`repro.obs.instruments`;
* :mod:`repro.obs.slowlog` — a structured
  :class:`~repro.obs.slowlog.SlowQueryLog` armed by
  ``QueryService(slow_query_seconds=...)``.
"""

from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from .slowlog import SlowQueryLog, SlowQueryRecord
from .trace import Span, Tracer, ambient_span, current_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "SlowQueryLog",
    "SlowQueryRecord",
    "Span",
    "Tracer",
    "ambient_span",
    "current_tracer",
]

"""The event journal: a persistent, checksummed record of engine events.

The metrics registry and the stats store answer "what is happening *now*";
the journal answers "what happened" — across restarts.  It is an append-only
file of length-prefixed, crc32-checksummed JSON records (the exact framing
discipline of the WAL, see :mod:`repro.mutation.wal`, under its own magic)
recording query finishes, plan-cache re-plans, slow queries, compactions,
recoveries, write conflicts and detected plan regressions.

Crash semantics differ from the WAL deliberately:

* a **torn tail** (crash mid-append) is truncated when a writer reopens the
  file, exactly like the WAL — the half-written event never happened;
* a **corrupt record in the middle** (bit rot, concurrent scribbling) is
  *skipped*: the reader resynchronizes on the next magic marker and keeps
  going.  The WAL must stop — replaying past a gap could corrupt data — but
  the journal is observational, and one damaged event must not blind an
  operator to everything recorded after it.

Record format (little-endian)::

    record  := magic(4s = b"REVJ") | length(u32) | crc32(u32) | payload
    payload := UTF-8 JSON: {"kind": ..., "seq": N, "ts": unix_seconds, ...}

``seq`` is monotone across reopens (a writer resumes from the last intact
record), so gaps in the sequence reveal skipped/corrupt records.  Writers
may attach a sampled trace (``trace_sample_rate=``) to query events — a full
span tree on a fraction of traffic, without paying for tracing everywhere.
"""

from __future__ import annotations

import json
import random
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

#: Per-record frame: magic, payload length, payload crc32 (same as the WAL).
_FRAME = struct.Struct("<4sII")

#: The journal's own magic — a WAL file is never mistaken for a journal.
JOURNAL_MAGIC = b"REVJ"

#: Default journal file name inside a dataset directory.
JOURNAL_NAME = "history.journal"


def encode_event(payload: dict) -> bytes:
    """One framed journal record for ``payload``."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return _FRAME.pack(JOURNAL_MAGIC, len(body), zlib.crc32(body)) + body


def _decode_event(data: bytes, offset: int) -> tuple[dict, int] | None:
    """``(payload, end_offset)`` of the record at ``offset``, or None when the
    bytes there are not one intact record (short, bad magic, bad checksum)."""
    frame_end = offset + _FRAME.size
    if frame_end > len(data):
        return None
    magic, length, crc = _FRAME.unpack_from(data, offset)
    if magic != JOURNAL_MAGIC:
        return None
    end = frame_end + length
    if end > len(data):
        return None
    body = data[frame_end:end]
    if zlib.crc32(body) != crc:
        return None
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    return payload, end


@dataclass(frozen=True)
class JournalScan:
    """Everything one pass over a journal file establishes.

    ``valid_length`` is the byte offset just past the last intact record —
    a writer reopening the file truncates there, dropping the torn tail.
    ``skipped`` counts corrupt stretches the reader resynchronized past
    (each stretch of garbage between two intact records counts once).
    """

    path: Path
    events: list[dict] = field(default_factory=list)
    valid_length: int = 0
    total_length: int = 0
    skipped: int = 0

    @property
    def last_seq(self) -> int:
        """Highest ``seq`` among intact records (-1 on an empty journal)."""
        seqs = [int(event.get("seq", -1)) for event in self.events]
        return max(seqs) if seqs else -1


def scan_journal(path: str | Path) -> JournalScan:
    """Scan a journal file, skipping corrupt records.

    Never raises on damage: an unreadable record advances the scan to the
    next magic marker (``skipped`` increments once per damaged stretch); a
    torn tail simply ends the scan.  A missing file scans as empty.
    """
    path = Path(path)
    if not path.exists():
        return JournalScan(path=path)
    data = path.read_bytes()
    events: list[dict] = []
    offset = 0
    valid_length = 0
    skipped = 0
    in_gap = False
    while offset < len(data):
        decoded = _decode_event(data, offset)
        if decoded is None:
            # Resynchronize on the next magic marker; count each contiguous
            # damaged stretch once.  No further marker = torn tail, stop.
            if not in_gap:
                skipped += 1
                in_gap = True
            next_magic = data.find(JOURNAL_MAGIC, offset + 1)
            if next_magic < 0:
                break
            offset = next_magic
            continue
        in_gap = False
        payload, offset = decoded
        events.append(payload)
        valid_length = offset
    if in_gap:
        # The trailing stretch is a torn tail, not a skipped-over record.
        skipped -= 1
    return JournalScan(
        path=path,
        events=events,
        valid_length=valid_length,
        total_length=len(data),
        skipped=skipped,
    )


def read_journal(path: str | Path) -> list[dict]:
    """All intact events in the journal at ``path`` (corrupt records skipped)."""
    return scan_journal(path).events


class EventJournal:
    """An append-only writer for one journal file.

    Opening scans the existing file, truncates any torn tail (half-written
    final record) and resumes the event sequence from the last intact
    record, so ``seq`` stays monotone across process restarts.  Appends are
    serialized by a lock and flushed to the OS on every event (no fsync —
    the journal is observational; losing the last events in a power cut is
    acceptable, a *misleading* journal is not, hence the checksums).

    ``trace_sample_rate`` is the fraction of query events that should carry
    a full trace attachment; :meth:`sample_trace` makes the (seeded,
    deterministic) per-event decision for callers that can trace on demand.
    """

    def __init__(
        self,
        path: str | Path,
        trace_sample_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= trace_sample_rate <= 1.0:
            raise ValueError(
                f"trace_sample_rate must be within [0, 1], got {trace_sample_rate}"
            )
        self.path = Path(path)
        self.trace_sample_rate = float(trace_sample_rate)
        self._random = random.Random(seed)
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        scan = scan_journal(self.path)
        if scan.total_length > scan.valid_length:
            with open(self.path, "r+b") as handle:
                handle.truncate(scan.valid_length)
        self._seq = scan.last_seq + 1
        self._handle = open(self.path, "ab")

    def append(self, kind: str, **fields) -> dict:
        """Append one event; returns the payload as written (with seq/ts)."""
        with self._lock:
            payload = {"kind": kind, "seq": self._seq, "ts": time.time(), **fields}
            self._seq += 1
            self._handle.write(encode_event(payload))
            self._handle.flush()
            return payload

    def sample_trace(self) -> bool:
        """Should the next query event carry a trace attachment?"""
        if self.trace_sample_rate <= 0.0:
            return False
        if self.trace_sample_rate >= 1.0:
            return True
        with self._lock:
            return self._random.random() < self.trace_sample_rate

    @property
    def next_seq(self) -> int:
        """The sequence number the next appended event will get."""
        return self._seq

    def close(self) -> None:
        """Close the file handle (idempotent)."""
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

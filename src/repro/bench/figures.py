"""Command-line entry point for regenerating the paper's figures.

Examples::

    python -m repro.bench.figures fig3a --scale 0.05 --repetitions 3
    python -m repro.bench.figures fig4b --sizes 1000 5000 10000
    python -m repro.bench.figures all --quick

``--quick`` shrinks every experiment (fewer groups, smaller tables, one
repetition) so a full pass completes in a few minutes on a laptop; drop it
for measurements closer to the defaults described in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.job_bench import run_job_figure
from repro.bench.synthetic_bench import (
    run_outer_factor_sweep,
    run_root_clause_sweep,
    run_selectivity_sweep,
    run_table_size_sweep,
)

JOB_FIGURES = ("fig3a", "fig3b", "fig3c", "fig3d")
SYNTHETIC_FIGURES = ("fig4a", "fig4b", "fig4c", "fig4d")
ALL_FIGURES = JOB_FIGURES + SYNTHETIC_FIGURES


def _run_job(figure: str, args: argparse.Namespace) -> str:
    groups = args.groups or (list(range(1, 13)) if args.quick else None)
    result = run_job_figure(
        figure,
        scale=args.scale,
        repetitions=1 if args.quick else args.repetitions,
        groups=groups,
    )
    return result.to_table()


def _run_synthetic(figure: str, args: argparse.Namespace) -> str:
    repetitions = 1 if args.quick else args.repetitions
    if figure == "fig4a":
        result = run_selectivity_sweep(
            table_size=2_000 if args.quick else args.table_size, repetitions=repetitions
        )
    elif figure == "fig4b":
        sizes = args.sizes or ((1_000, 2_000, 5_000) if args.quick else None)
        kwargs = {"repetitions": repetitions}
        if sizes:
            kwargs["table_sizes"] = tuple(sizes)
        result = run_table_size_sweep(**kwargs)
    elif figure == "fig4c":
        result = run_root_clause_sweep(
            table_size=2_000 if args.quick else args.table_size,
            root_clauses=(2, 3, 4) if args.quick else (2, 3, 4, 5, 6, 7),
            repetitions=repetitions,
        )
    else:
        result = run_outer_factor_sweep(
            table_size=2_000 if args.quick else args.table_size, repetitions=repetitions
        )
    return result.to_table()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("figure", choices=ALL_FIGURES + ("all",), help="figure to regenerate")
    parser.add_argument("--scale", type=float, default=0.05, help="IMDB dataset scale factor")
    parser.add_argument("--repetitions", type=int, default=3, help="runs per measurement")
    parser.add_argument("--table-size", type=int, default=10_000, help="synthetic table size")
    parser.add_argument("--sizes", type=int, nargs="*", help="table sizes for fig4b")
    parser.add_argument("--groups", type=int, nargs="*", help="JOB group subset for fig3*")
    parser.add_argument("--quick", action="store_true", help="small, fast configuration")
    args = parser.parse_args(argv)

    figures = ALL_FIGURES if args.figure == "all" else (args.figure,)
    for figure in figures:
        if figure in JOB_FIGURES:
            print(_run_job(figure, args))
        else:
            print(_run_synthetic(figure, args))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())

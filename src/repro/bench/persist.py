"""Persisting benchmark results to ``BENCH_*.json`` files.

The repository tracks its performance trajectory in versioned
``BENCH_<tag>.json`` files at the repo root: each benchmark that wants its
numbers on the record calls :func:`record_bench_result`, which merge-updates
the JSON document so independent benchmarks (and repeated runs) compose into
one file.  ``make bench`` additionally passes ``--benchmark-json`` to
pytest-benchmark, so full timing runs always leave a ``BENCH_*.json``
artifact behind.

Every recorded entry is stamped with the repository's current git SHA
(``git_sha``, with a ``-dirty`` suffix for an unclean tree), a UTC
timestamp (``recorded_at``) and the producing host's context (``host``:
CPU count, platform, Python version), so numbers in a ``BENCH_*.json``
remain traceable to the exact revision that produced them across PRs —
and multi-core shard speedups stay interpretable next to 1-CPU CI runs.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path

#: Environment variable overriding where results are recorded.
RESULTS_PATH_ENV = "BENCH_RESULTS_PATH"

#: Default results file (relative to the working directory, i.e. the repo
#: root under ``make bench``).  Bumped per PR so each PR's benchmark
#: campaign leaves its own artifact; earlier ``BENCH_*.json`` files stay on
#: the record.
DEFAULT_RESULTS_FILE = "BENCH_PR10.json"


def host_context() -> dict:
    """The producing host's context, stamped into every recorded entry.

    Wall-clock numbers are only comparable between hosts with similar
    hardware; in particular the shard/parallelism speedup benchmarks are
    meaningless on single-core CI runners.  Recording ``cpu_count`` (plus
    platform and Python version) next to every entry makes that visible in
    the artifact itself.
    """
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def results_path(path: str | os.PathLike | None = None) -> Path:
    """Resolve the results file: explicit arg > env var > default."""
    if path is not None:
        return Path(path)
    return Path(os.environ.get(RESULTS_PATH_ENV, DEFAULT_RESULTS_FILE))


def current_git_sha() -> str | None:
    """The repository's HEAD SHA (``-dirty`` suffixed), or None outside git."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return None
    if not sha:
        return None
    return f"{sha}-dirty" if status else sha


def record_bench_result(
    name: str,
    payload: dict,
    path: str | os.PathLike | None = None,
) -> Path:
    """Merge ``payload`` into the results file under ``name``; returns the path.

    The file maps benchmark names to payload dictionaries.  Existing entries
    for other benchmarks are preserved; re-recording the same benchmark
    updates its keys in place.  The entry is stamped with the producing git
    SHA, a UTC timestamp and the host context (:func:`host_context`) for
    cross-PR and cross-host traceability.
    """
    target = results_path(path)
    if target.exists():
        try:
            data = json.loads(target.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            data = {}
        if not isinstance(data, dict):
            data = {}
    else:
        data = {}
    entry = data.setdefault(name, {})
    if not isinstance(entry, dict):
        entry = data[name] = {}
    entry.update(payload)
    sha = current_git_sha()
    if sha is not None:
        entry["git_sha"] = sha
    entry["recorded_at"] = datetime.now(timezone.utc).isoformat(timespec="seconds")
    entry["host"] = host_context()
    target.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target

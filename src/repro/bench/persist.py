"""Persisting benchmark results to ``BENCH_*.json`` files.

The repository tracks its performance trajectory in versioned
``BENCH_<tag>.json`` files at the repo root: each benchmark that wants its
numbers on the record calls :func:`record_bench_result`, which merge-updates
the JSON document so independent benchmarks (and repeated runs) compose into
one file.  ``make bench`` additionally passes ``--benchmark-json`` to
pytest-benchmark, so full timing runs always leave a ``BENCH_*.json``
artifact behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

#: Environment variable overriding where results are recorded.
RESULTS_PATH_ENV = "BENCH_RESULTS_PATH"

#: Default results file (relative to the working directory, i.e. the repo
#: root under ``make bench``).  Bumped per PR so each PR's benchmark
#: campaign leaves its own artifact; earlier ``BENCH_*.json`` files stay on
#: the record.
DEFAULT_RESULTS_FILE = "BENCH_PR4.json"


def results_path(path: str | os.PathLike | None = None) -> Path:
    """Resolve the results file: explicit arg > env var > default."""
    if path is not None:
        return Path(path)
    return Path(os.environ.get(RESULTS_PATH_ENV, DEFAULT_RESULTS_FILE))


def record_bench_result(
    name: str,
    payload: dict,
    path: str | os.PathLike | None = None,
) -> Path:
    """Merge ``payload`` into the results file under ``name``; returns the path.

    The file maps benchmark names to payload dictionaries.  Existing entries
    for other benchmarks are preserved; re-recording the same benchmark
    updates its keys in place.
    """
    target = results_path(path)
    if target.exists():
        try:
            data = json.loads(target.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            data = {}
        if not isinstance(data, dict):
            data = {}
    else:
        data = {}
    entry = data.setdefault(name, {})
    if not isinstance(entry, dict):
        entry = data[name] = {}
    entry.update(payload)
    target.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target

"""Figures 3a-3d: the JOB-style workload comparisons.

* Figure 3a — BDisj vs. TCombined on the 33 combined disjunctive queries.
* Figure 3b — BPushConj vs. TCombined after factoring the common
  subexpressions out of every query (so the baseline has an AND root to push).
* Figure 3c — BPushConj vs. TMin (the fastest of all tagged planners), which
  bounds what a better cost model could achieve.
* Figure 3d — BPushConj vs. TPushConj on the factored queries: both produce
  the same plans, so the ratio measures the overhead of the tag machinery.

Each figure is reported as one row per query group with both runtimes and
the speedup (baseline / tagged), matching the bars of the paper's Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.report import arithmetic_mean, format_table
from repro.bench.runner import BenchmarkMeasurement, time_query
from repro.core.factor import factor_common_subexpressions
from repro.engine.session import Session
from repro.plan.query import Query
from repro.workloads.imdb import generate_imdb_catalog
from repro.workloads.job import job_query_groups

#: Which (baseline, tagged) planner pair each figure compares, and whether
#: the query's common subexpressions are factored out first.
FIGURE_CONFIG = {
    "3a": {"baseline": "bdisj", "tagged": "tcombined", "factored": False},
    "3b": {"baseline": "bpushconj", "tagged": "tcombined", "factored": True},
    "3c": {"baseline": "bpushconj", "tagged": "tmin", "factored": True},
    "3d": {"baseline": "bpushconj", "tagged": "tpushconj", "factored": True},
}


@dataclass
class JobFigureRow:
    """One query group's measurements."""

    group: int
    query_name: str
    baseline: BenchmarkMeasurement
    tagged: BenchmarkMeasurement

    @property
    def speedup(self) -> float:
        """Baseline runtime divided by tagged runtime (>1 = tagged wins)."""
        return self.tagged.speedup_over(self.baseline)

    @property
    def exec_speedup(self) -> float:
        """Speedup on execution time only (excluding planning).

        The paper's server-scale runs make planning negligible (<0.1% of the
        total); at the small dataset scales this Python reproduction uses, the
        planner's constant factors are visible, so both ratios are reported.
        """
        if self.tagged.execution_seconds <= 0:
            return float("inf")
        return self.baseline.execution_seconds / self.tagged.execution_seconds


@dataclass
class JobFigureResult:
    """All rows of one figure plus summary statistics."""

    figure: str
    baseline_planner: str
    tagged_planner: str
    rows: list[JobFigureRow] = field(default_factory=list)

    @property
    def speedups(self) -> list[float]:
        return [row.speedup for row in self.rows]

    @property
    def exec_speedups(self) -> list[float]:
        return [row.exec_speedup for row in self.rows]

    @property
    def average_speedup(self) -> float:
        """Arithmetic mean of per-query total-time speedups."""
        return arithmetic_mean(self.speedups)

    @property
    def average_exec_speedup(self) -> float:
        """Arithmetic mean of per-query execution-only speedups (the paper's
        headline statistic, since its planning times are negligible)."""
        return arithmetic_mean(self.exec_speedups)

    @property
    def max_speedup(self) -> float:
        return max(self.speedups) if self.speedups else 0.0

    @property
    def max_exec_speedup(self) -> float:
        return max(self.exec_speedups) if self.exec_speedups else 0.0

    def to_table(self) -> str:
        """Render the figure as a text table."""
        headers = [
            "group",
            f"{self.baseline_planner} (s)",
            f"{self.tagged_planner} total (s)",
            f"{self.tagged_planner} exec (s)",
            "speedup",
            "exec speedup",
            "rows",
        ]
        rows = [
            [
                row.group,
                row.baseline.total_seconds,
                row.tagged.total_seconds,
                row.tagged.execution_seconds,
                row.speedup,
                row.exec_speedup,
                row.tagged.row_count,
            ]
            for row in self.rows
        ]
        title = (
            f"Figure {self.figure}: {self.baseline_planner}/{self.tagged_planner} speedups "
            f"(avg {self.average_speedup:.2f}x total / {self.average_exec_speedup:.2f}x exec, "
            f"max {self.max_speedup:.2f}x / {self.max_exec_speedup:.2f}x)"
        )
        return format_table(headers, rows, title=title)


def factor_query(query: Query) -> Query:
    """Rewrite a query so common root-clause subexpressions form an AND root."""
    if query.predicate is None:
        return query
    return Query(
        tables=dict(query.tables),
        join_conditions=list(query.join_conditions),
        predicate=factor_common_subexpressions(query.predicate),
        select=list(query.select),
        name=query.name,
    )


def run_job_figure(
    figure: str,
    scale: float = 0.05,
    seed: int = 7,
    repetitions: int = 3,
    groups: list[int] | None = None,
    session: Session | None = None,
) -> JobFigureResult:
    """Run one of Figures 3a-3d and return the per-group measurements.

    Args:
        figure: one of ``"3a"``, ``"3b"``, ``"3c"``, ``"3d"``.
        scale: IMDB-like dataset scale factor.
        seed: dataset generation seed.
        repetitions: runs per (query, planner) pair; the average is reported.
        groups: optional subset of group indices (1-based) to run.
        session: reuse an existing session (and its catalog) instead of
            generating a fresh dataset.
    """
    figure = figure.lower().removeprefix("fig")
    if figure not in FIGURE_CONFIG:
        raise ValueError(f"unknown figure {figure!r}; choose one of {sorted(FIGURE_CONFIG)}")
    config = FIGURE_CONFIG[figure]

    if session is None:
        catalog = generate_imdb_catalog(scale=scale, seed=seed)
        session = Session(catalog, stats_sample_size=10_000)

    queries = job_query_groups()
    selected = groups or list(range(1, len(queries) + 1))

    result = JobFigureResult(
        figure=figure,
        baseline_planner=config["baseline"],
        tagged_planner=config["tagged"],
    )
    for group in selected:
        query = queries[group - 1]
        if config["factored"]:
            query = factor_query(query)
        baseline = time_query(session, query, config["baseline"], repetitions)
        tagged = time_query(session, query, config["tagged"], repetitions)
        if baseline.row_count != tagged.row_count:
            raise AssertionError(
                f"result mismatch on {query.name}: {config['baseline']}={baseline.row_count} rows, "
                f"{config['tagged']}={tagged.row_count} rows"
            )
        result.rows.append(
            JobFigureRow(group=group, query_name=query.name, baseline=baseline, tagged=tagged)
        )
    return result

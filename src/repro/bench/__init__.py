"""Benchmark harness: regenerates every figure of the paper's evaluation.

* :mod:`repro.bench.runner` — timing helpers (run a query N times under a
  planner and average).
* :mod:`repro.bench.job_bench` — Figures 3a-3d over the JOB-style workload.
* :mod:`repro.bench.synthetic_bench` — Figures 4a-4d over the synthetic
  workload.
* :mod:`repro.bench.report` — plain-text tables for the results.
* :mod:`repro.bench.figures` — command-line entry point
  (``python -m repro.bench.figures fig3a``).
"""

from repro.bench.job_bench import JobFigureResult, run_job_figure
from repro.bench.runner import BenchmarkMeasurement, time_query
from repro.bench.synthetic_bench import SyntheticSweepResult, run_synthetic_figure
from repro.bench.report import format_table

__all__ = [
    "BenchmarkMeasurement",
    "JobFigureResult",
    "SyntheticSweepResult",
    "format_table",
    "run_job_figure",
    "run_synthetic_figure",
    "time_query",
]

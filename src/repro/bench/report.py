"""Plain-text report formatting."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render a simple fixed-width text table."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(format_row(list(headers)))
    lines.append(format_row(["-" * width for width in widths]))
    lines.extend(format_row(row) for row in rendered_rows)
    return "\n".join(lines)


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty sequence)."""
    positive = [value for value in values if value > 0]
    if not positive:
        return 0.0
    product = 1.0
    for value in positive:
        product *= value
    return product ** (1.0 / len(positive))


def arithmetic_mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    if not values:
        return 0.0
    return sum(values) / len(values)

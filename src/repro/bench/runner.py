"""Timing helpers shared by the figure benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.result import QueryResult
from repro.engine.session import Session
from repro.plan.query import Query


@dataclass
class BenchmarkMeasurement:
    """Averaged timings of one (query, planner) pair."""

    planner: str
    query_name: str
    repetitions: int
    total_seconds: float
    execution_seconds: float
    planning_seconds: float
    row_count: int
    metrics: dict[str, int] = field(default_factory=dict)

    def speedup_over(self, other: "BenchmarkMeasurement") -> float:
        """How much faster this measurement is than ``other`` (>1 = faster)."""
        if self.total_seconds <= 0:
            return float("inf")
        return other.total_seconds / self.total_seconds


def time_query(
    session: Session,
    query: Query,
    planner: str,
    repetitions: int = 3,
    naive_tags: bool = False,
) -> BenchmarkMeasurement:
    """Execute ``query`` under ``planner`` ``repetitions`` times and average.

    The paper reports the average of 5 runs per query; benchmarks here
    default to 3 to keep wall-clock time reasonable for a Python engine.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be at least 1")
    total = 0.0
    execution = 0.0
    planning = 0.0
    last: QueryResult | None = None
    for _ in range(repetitions):
        result = session.execute(query, planner=planner, naive_tags=naive_tags)
        total += result.total_seconds
        execution += result.execution_seconds
        planning += result.planning_seconds
        last = result
    assert last is not None
    return BenchmarkMeasurement(
        planner=planner,
        query_name=query.name or "query",
        repetitions=repetitions,
        total_seconds=total / repetitions,
        execution_seconds=execution / repetitions,
        planning_seconds=planning / repetitions,
        row_count=last.row_count,
        metrics=last.metrics.as_dict(),
    )

"""Figures 4a-4d: the synthetic parameter sweeps.

* Figure 4a — DNF query, predicate selectivity swept 0.1 .. 0.9
  (BDisj vs. TCombined).
* Figure 4b — CNF query, table size swept 1k .. 50k
  (BPushConj vs. TCombined).
* Figure 4c — DNF query, number of root clauses swept 2 .. 7; TCombined is
  reported both as total time and as execution-only time, since planning
  time becomes visible here (BDisj vs. TCombined).
* Figure 4d — CNF query, outer conjunctive factor swept 0.1 .. 1.0
  (BPushConj vs. TCombined).

Each sweep returns one row per parameter value with the averaged runtimes,
mirroring the line plots of the paper's Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.report import format_table
from repro.bench.runner import BenchmarkMeasurement, time_query
from repro.engine.session import Session
from repro.workloads.synthetic import (
    SyntheticConfig,
    generate_synthetic_catalog,
    make_cnf_query,
    make_dnf_query,
)

#: Default sweep values; benchmarks may override with smaller grids.
DEFAULT_SELECTIVITIES = (0.1, 0.3, 0.5, 0.7, 0.9)
DEFAULT_TABLE_SIZES = (1_000, 5_000, 10_000, 25_000, 50_000)
DEFAULT_ROOT_CLAUSES = (2, 3, 4, 5, 6, 7)
DEFAULT_OUTER_FACTORS = (0.2, 0.4, 0.6, 0.8, 1.0)


@dataclass
class SyntheticSweepRow:
    """Measurements for one parameter value."""

    parameter: float
    baseline: BenchmarkMeasurement
    tagged: BenchmarkMeasurement

    @property
    def speedup(self) -> float:
        """Baseline runtime divided by tagged runtime (>1 = tagged wins)."""
        return self.tagged.speedup_over(self.baseline)


@dataclass
class SyntheticSweepResult:
    """A full sweep for one figure."""

    figure: str
    parameter_name: str
    baseline_planner: str
    tagged_planner: str
    rows: list[SyntheticSweepRow] = field(default_factory=list)

    def to_table(self) -> str:
        """Render the sweep as a text table."""
        headers = [
            self.parameter_name,
            f"{self.baseline_planner} (s)",
            f"{self.tagged_planner} total (s)",
            f"{self.tagged_planner} exec (s)",
            "speedup",
            "rows",
        ]
        rows = [
            [
                row.parameter,
                row.baseline.total_seconds,
                row.tagged.total_seconds,
                row.tagged.execution_seconds,
                row.speedup,
                row.tagged.row_count,
            ]
            for row in self.rows
        ]
        return format_table(headers, rows, title=f"Figure {self.figure} ({self.parameter_name})")


def _session_for(table_size: int, seed: int) -> Session:
    catalog = generate_synthetic_catalog(SyntheticConfig(table_size=table_size, seed=seed))
    return Session(catalog, stats_sample_size=min(table_size, 10_000))


def run_selectivity_sweep(
    selectivities=DEFAULT_SELECTIVITIES,
    table_size: int = 10_000,
    repetitions: int = 3,
    seed: int = 42,
) -> SyntheticSweepResult:
    """Figure 4a: DNF query, selectivity sweep."""
    session = _session_for(table_size, seed)
    result = SyntheticSweepResult("4a", "selectivity", "bdisj", "tcombined")
    for selectivity in selectivities:
        query = make_dnf_query(num_root_clauses=2, selectivity=selectivity)
        baseline = time_query(session, query, "bdisj", repetitions)
        tagged = time_query(session, query, "tcombined", repetitions)
        result.rows.append(SyntheticSweepRow(selectivity, baseline, tagged))
    return result


def run_table_size_sweep(
    table_sizes=DEFAULT_TABLE_SIZES,
    selectivity: float = 0.2,
    repetitions: int = 3,
    seed: int = 42,
) -> SyntheticSweepResult:
    """Figure 4b: CNF query, table size sweep."""
    result = SyntheticSweepResult("4b", "table_size", "bpushconj", "tcombined")
    for table_size in table_sizes:
        session = _session_for(table_size, seed)
        query = make_cnf_query(num_root_clauses=2, selectivity=selectivity)
        baseline = time_query(session, query, "bpushconj", repetitions)
        tagged = time_query(session, query, "tcombined", repetitions)
        result.rows.append(SyntheticSweepRow(float(table_size), baseline, tagged))
    return result


def run_root_clause_sweep(
    root_clauses=DEFAULT_ROOT_CLAUSES,
    table_size: int = 10_000,
    selectivity: float = 0.2,
    repetitions: int = 3,
    seed: int = 42,
) -> SyntheticSweepResult:
    """Figure 4c: DNF query, number-of-root-clauses sweep."""
    session = _session_for(table_size, seed)
    result = SyntheticSweepResult("4c", "root_clauses", "bdisj", "tcombined")
    for clauses in root_clauses:
        query = make_dnf_query(num_root_clauses=clauses, selectivity=selectivity)
        baseline = time_query(session, query, "bdisj", repetitions)
        tagged = time_query(session, query, "tcombined", repetitions)
        result.rows.append(SyntheticSweepRow(float(clauses), baseline, tagged))
    return result


def run_outer_factor_sweep(
    outer_factors=DEFAULT_OUTER_FACTORS,
    table_size: int = 10_000,
    selectivity: float = 0.2,
    repetitions: int = 3,
    seed: int = 42,
) -> SyntheticSweepResult:
    """Figure 4d: CNF query, outer conjunctive factor sweep."""
    session = _session_for(table_size, seed)
    result = SyntheticSweepResult("4d", "outer_factor", "bpushconj", "tcombined")
    for factor in outer_factors:
        query = make_cnf_query(
            num_root_clauses=2, selectivity=selectivity, outer_factor=factor
        )
        baseline = time_query(session, query, "bpushconj", repetitions)
        tagged = time_query(session, query, "tcombined", repetitions)
        result.rows.append(SyntheticSweepRow(factor, baseline, tagged))
    return result


_FIGURE_RUNNERS = {
    "4a": run_selectivity_sweep,
    "4b": run_table_size_sweep,
    "4c": run_root_clause_sweep,
    "4d": run_outer_factor_sweep,
}


def run_synthetic_figure(figure: str, **kwargs) -> SyntheticSweepResult:
    """Run one of Figures 4a-4d by name."""
    figure = figure.lower().removeprefix("fig")
    if figure not in _FIGURE_RUNNERS:
        raise ValueError(f"unknown figure {figure!r}; choose one of {sorted(_FIGURE_RUNNERS)}")
    return _FIGURE_RUNNERS[figure](**kwargs)

"""Choosing an access path per plan leaf: index, zone-pruned, or full scan.

The :class:`AccessPathChooser` turns "what structures exist" plus "how
selective is the scan's implied predicate" into one
:class:`AccessPathChoice` per query alias.  Planners never talk to this
module directly — the chooser is consumed through
:meth:`repro.optimizer.estimates.EstimateProvider.access_plan`, which keeps
``repro.core.planner`` free of any access-path imports while still letting
every planner cost index-scan vs zone-pruned-scan vs full-scan per leaf.

Page estimates use the classic uniform-placement expectation (Cardenas):
``pages * (1 - (1 - selectivity) ** page_size)`` distinct pages are expected
to contain at least one of the qualifying rows.  Zone-map pruning works at
page granularity (a page with one candidate row is kept whole), so its
estimate carries a granularity penalty over the index estimate.  When the
implied predicate keeps more than
:data:`~repro.storage.column.SEQUENTIAL_SCAN_THRESHOLD` of the table, the
storage layer would fall back to a sequential read anyway, so the chooser
picks a full scan and the executor skips the pruning machinery entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.access.manager import AccessPathManager, base_predicate_column
from repro.access.pruning import implied_alias_predicate
from repro.access.zonemap import zone_map_supported
from repro.expr.ast import AndExpr, BooleanExpr, Comparison, NotExpr, OrExpr
from repro.plan.query import Query
from repro.storage.bitmap import Bitmap
from repro.storage.column import SEQUENTIAL_SCAN_THRESHOLD

#: Multiplier applied to the page estimate of zone-map pruning: keeping
#: whole pages is coarser than keeping exact rows.
ZONE_GRANULARITY_PENALTY = 2.0


@dataclass(frozen=True)
class AccessPathChoice:
    """The chosen access path of one scan leaf.

    ``kind`` is ``"full"``, ``"zonemap"`` or ``"index"``;  ``predicate`` is
    the implied single-alias predicate the scan may prune on (``None`` for a
    full scan — nothing is implied, or pruning is not worthwhile).
    """

    alias: str
    table_name: str
    kind: str
    predicate: BooleanExpr | None = None
    selectivity: float = 1.0
    total_pages: int = 0
    est_pages: float = 0.0

    def describe(self) -> str:
        """Short label for EXPLAIN output, e.g. ``index est_pages=3/40``."""
        if self.kind == "full":
            return "full"
        return f"{self.kind} est_pages={self.est_pages:.1f}/{self.total_pages}"


@dataclass
class QueryAccessPlan:
    """Per-alias access-path choices for one prepared query.

    Stored on :class:`~repro.engine.session.PreparedPlan`; at execution time
    :meth:`resolve_all` materializes the candidate bitmaps (memoized in the
    manager, keyed by table version) that scans prune with.
    """

    manager: AccessPathManager
    choices: dict[str, AccessPathChoice] = field(default_factory=dict)
    #: Per-alias table versions pinned when the plan was built.  Resolution
    #: refuses to prune an alias whose table has since mutated: the manager
    #: only knows the *current* contents, while the prepared plan executes
    #: against its own catalog snapshot — the scan still filters deletes
    #: itself, so skipping pruning is the sound (and cheap) fallback.
    table_versions: dict[str, int] = field(default_factory=dict)

    def choice(self, alias: str) -> AccessPathChoice | None:
        """The choice for ``alias`` (None when the alias is unknown)."""
        return self.choices.get(alias)

    def resolve_all(self) -> dict[str, Bitmap]:
        """Candidate bitmaps for every pruned alias (full scans are absent)."""
        resolved: dict[str, Bitmap] = {}
        for alias, choice in self.choices.items():
            if choice.kind == "full" or choice.predicate is None:
                continue
            pinned = self.table_versions.get(alias)
            try:
                current = self.manager.catalog.table_version(choice.table_name)
            except KeyError:
                continue
            if pinned is not None and current != pinned:
                continue
            bitmap = self.manager.candidates(choice.table_name, choice.predicate)
            if bitmap is not None:
                resolved[alias] = bitmap
        return resolved


class AccessPathChooser:
    """Builds the :class:`QueryAccessPlan` of one query."""

    def __init__(self, query: Query, manager: AccessPathManager) -> None:
        self.query = query
        self.manager = manager

    def build_plan(self, estimates) -> QueryAccessPlan:
        """Choose an access path per alias, costing with ``estimates``.

        ``estimates`` is the query's
        :class:`~repro.optimizer.estimates.EstimateProvider` (duck-typed:
        only ``selectivity`` and ``base_rows`` are used).
        """
        plan = QueryAccessPlan(manager=self.manager)
        for alias, table_name in self.query.tables.items():
            plan.choices[alias] = self._choose(alias, table_name, estimates)
            try:
                plan.table_versions[alias] = self.manager.catalog.table_version(table_name)
            except KeyError:
                pass
        return plan

    def _choose(self, alias: str, table_name: str, estimates) -> AccessPathChoice:
        try:
            table = self.manager.catalog.get(table_name)
        except KeyError:
            return AccessPathChoice(alias, table_name, "full")
        total_pages = table.num_pages
        full = AccessPathChoice(alias, table_name, "full", total_pages=total_pages)
        implied = implied_alias_predicate(self.query.predicate, alias)
        if implied is None or total_pages == 0:
            return full
        evidence = self._classify(table_name, implied)
        if evidence is None:
            return full
        selectivity = min(max(float(estimates.selectivity(implied)), 0.0), 1.0)
        if selectivity >= SEQUENTIAL_SCAN_THRESHOLD:
            # The storage layer reads this selectivity sequentially anyway.
            return full
        page_size = table.page_size
        expected_pages = total_pages * (1.0 - (1.0 - selectivity) ** page_size)
        if evidence == "zone":
            expected_pages = min(
                float(total_pages), ZONE_GRANULARITY_PENALTY * expected_pages
            )
        kind = "index" if evidence == "index" else "zonemap"
        return AccessPathChoice(
            alias,
            table_name,
            kind,
            predicate=implied,
            selectivity=selectivity,
            total_pages=total_pages,
            est_pages=expected_pages,
        )

    # ------------------------------------------------------------------ #
    # Support classification (mirrors repro.access.pruning.candidate_mask)
    # ------------------------------------------------------------------ #
    def _classify(self, table_name: str, predicate: BooleanExpr) -> str | None:
        """``'index'`` / ``'zone'`` / None: the best evidence available."""
        if isinstance(predicate, NotExpr):
            return None
        if isinstance(predicate, AndExpr):
            parts = [
                part
                for part in (
                    self._classify(table_name, child) for child in predicate.children()
                )
                if part is not None
            ]
            if not parts:
                return None
            return "index" if "index" in parts else "zone"
        if isinstance(predicate, OrExpr):
            parts = []
            for child in predicate.children():
                part = self._classify(table_name, child)
                if part is None:
                    return None
                parts.append(part)
            return "zone" if "zone" in parts else "index"
        column = base_predicate_column(predicate)
        if column is None:
            return None
        if self.manager.has_index(table_name, column) and _index_answerable(predicate):
            return "index"
        if zone_map_supported(predicate, column):
            return "zone"
        return None


def _index_answerable(predicate: BooleanExpr) -> bool:
    """Whether an index lookup can answer this base predicate exactly.

    Conservative static check mirroring ``_IndexBase._lookup``; literal-type
    mismatches still degrade gracefully at resolution time.
    """
    if isinstance(predicate, Comparison):
        return True
    # IN / BETWEEN / IS NULL are all answerable; LIKE is not.
    from repro.expr.ast import BetweenPredicate, InPredicate, IsNullPredicate

    return isinstance(predicate, (BetweenPredicate, InPredicate, IsNullPredicate))

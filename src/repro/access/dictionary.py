"""Dictionary encoding of low-cardinality columns.

A :class:`DictionaryEncoding` replaces a column's values with small integer
codes into a sorted dictionary of its distinct non-NULL values.  It is the
substrate of the bitmap index (:mod:`repro.access.indexes`): grouping row
positions by code is a single stable argsort over the codes, and range
predicates reduce to a binary search over the (sorted) dictionary.  (Note
that :attr:`DictionaryEncoding.num_values` excludes float NaN cells, so it
can undercount :meth:`~repro.storage.column.Column.distinct_count` — the
two are deliberately not shared.)
"""

from __future__ import annotations

import numpy as np

from repro.storage.column import Column, ColumnType

#: Code stored for NULL cells (no dictionary entry).
NULL_CODE = -1


class DictionaryEncoding:
    """Sorted-dictionary encoding of one column.

    Attributes:
        values: the sorted distinct non-NULL values (the dictionary).
        codes: int32 array mapping each row to its dictionary slot, with
            :data:`NULL_CODE` for NULL cells.
    """

    __slots__ = ("values", "codes")

    def __init__(self, values: np.ndarray, codes: np.ndarray) -> None:
        self.values = values
        self.codes = codes

    @classmethod
    def encode(cls, column: Column) -> "DictionaryEncoding":
        """Encode ``column`` (NaN float cells are treated like NULLs)."""
        data = column.data
        excluded = column.null_mask.copy()
        if column.ctype is ColumnType.FLOAT:
            excluded |= np.isnan(data.astype(np.float64))
        codes = np.full(len(column), NULL_CODE, dtype=np.int32)
        valid = ~excluded
        if valid.any():
            uniques, inverse = np.unique(data[valid], return_inverse=True)
            codes[valid] = inverse.astype(np.int32)
        else:
            uniques = np.empty(0, dtype=data.dtype)
        return cls(uniques, codes)

    @property
    def num_values(self) -> int:
        """Number of dictionary entries (distinct non-NULL values)."""
        return int(self.values.shape[0])

    @property
    def num_rows(self) -> int:
        """Number of encoded rows."""
        return int(self.codes.shape[0])

    def code_of(self, value) -> int:
        """Dictionary code of ``value``, or :data:`NULL_CODE` when absent."""
        position = int(np.searchsorted(self.values, value))
        if position < self.num_values and self.values[position] == value:
            return position
        return NULL_CODE

    def grouped_positions(self) -> tuple[np.ndarray, np.ndarray]:
        """``(order, boundaries)`` grouping row positions by code.

        ``order`` lists row positions sorted by code (NULL rows first);
        ``boundaries[c] : boundaries[c + 1]`` slices the positions of code
        ``c`` out of ``order``.
        """
        order = np.argsort(self.codes, kind="stable").astype(np.int64)
        boundaries = np.searchsorted(
            self.codes[order], np.arange(self.num_values + 1, dtype=np.int32)
        )
        return order, boundaries

    def __repr__(self) -> str:
        return f"DictionaryEncoding(values={self.num_values}, rows={self.num_rows})"


#: A string column only gets a predicate/join dictionary when its distinct
#: count is at most this fraction of its row count — near-unique columns
#: (titles, names at scale) would pay the encode cost without ever reusing
#: a code, so they stay on the decoded-value path.
DICTIONARY_MAX_DISTINCT_FRACTION = 0.5


def table_dictionary(table, column_name: str) -> DictionaryEncoding | None:
    """Cached dictionary encoding of a table's string column.

    Returns ``None`` (also cached) when the column does not exist, is not a
    string column, is empty, or is too close to unique for encoding to pay
    off.  The cache lives on the table instance; tables are immutable —
    mutation replaces the whole :class:`~repro.storage.table.Table` — so the
    cache never needs invalidating.
    """
    cache = table.__dict__.get("_dictionary_cache")
    if cache is None:
        cache = {}
        table._dictionary_cache = cache
    if column_name in cache:
        return cache[column_name]
    encoding = None
    try:
        column = table.column(column_name)
    except KeyError:
        column = None
    if (
        column is not None
        and column.ctype is ColumnType.STRING
        and len(column)
        and column.distinct_count()
        <= max(1, int(len(column) * DICTIONARY_MAX_DISTINCT_FRACTION))
    ):
        encoding = DictionaryEncoding.encode(column)
    cache[column_name] = encoding
    return encoding

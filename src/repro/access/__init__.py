"""Access paths: zone maps, secondary indexes and scan pruning.

This package is the layer between the storage substrate and the planners
that decides *how much of a table a scan has to touch*.  Basilisk's
bitmap-driven evaluation only pays off when scans touch few pages; before
this package existed every query read every page of every referenced
column.  The pieces:

* :mod:`repro.access.zonemap` — per-page min/max/null-count sketches, built
  lazily per column, that let a scan skip whole pages a predicate cannot
  match;
* :mod:`repro.access.dictionary` — dictionary encoding of low-cardinality
  columns (the substrate of the bitmap index);
* :mod:`repro.access.indexes` — secondary indexes: a :class:`BitmapIndex`
  for low-distinct columns and a :class:`SortedIndex` for range predicates,
  both materializing row selections as
  :class:`~repro.storage.bitmap.Bitmap` so they compose with the
  tagged/bypass pipelines unchanged;
* :mod:`repro.access.pruning` — derivation of the per-alias predicate a
  scan may prune on (sound under SQL three-valued logic) and the bitmap
  composition rules;
* :mod:`repro.access.manager` — the :class:`AccessPathManager` registered
  on a :class:`~repro.storage.catalog.Catalog`, caching sketches and
  indexes per table version;
* :mod:`repro.access.chooser` — the :class:`AccessPathChooser` that costs
  index-scan vs zone-pruned-scan vs full-scan per plan leaf.  Planners
  consume its choices exclusively through
  :class:`~repro.optimizer.estimates.EstimateProvider` — nothing in
  ``repro.core.planner`` imports this package.
"""

from repro.access.chooser import AccessPathChoice, AccessPathChooser, QueryAccessPlan
from repro.access.dictionary import DictionaryEncoding
from repro.access.indexes import BitmapIndex, IndexDef, SortedIndex, build_index
from repro.access.manager import AccessPathManager, ensure_access_manager
from repro.access.pruning import candidate_mask, implied_alias_predicate
from repro.access.zonemap import ColumnZoneMap, build_zone_map

__all__ = [
    "AccessPathChoice",
    "AccessPathChooser",
    "AccessPathManager",
    "BitmapIndex",
    "ColumnZoneMap",
    "DictionaryEncoding",
    "IndexDef",
    "QueryAccessPlan",
    "SortedIndex",
    "build_index",
    "build_zone_map",
    "candidate_mask",
    "ensure_access_manager",
    "implied_alias_predicate",
]

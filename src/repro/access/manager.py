"""The access-path manager: one registry of sketches and indexes per catalog.

An :class:`AccessPathManager` is registered on a
:class:`~repro.storage.catalog.Catalog` (``catalog.access_manager``) and owns
every derived access structure for its tables:

* **zone maps** — built lazily, the first time a scan could prune on a
  column, and cached;
* **secondary indexes** — created explicitly (:meth:`create_index`, or the
  ``repro index`` CLI) as durable :class:`~repro.access.indexes.IndexDef`
  definitions whose materializations are built lazily;
* **candidate bitmaps** — the per-(table, predicate) row supersets scans
  prune with, composed from the two structures above and memoized.

Every cache entry is keyed by the owning table's
:meth:`~repro.storage.catalog.Catalog.table_version`, so replacing or
dropping a table transparently invalidates exactly that table's structures:
index *definitions* survive a replace and re-materialize against the new
contents on next use.  All methods are thread-safe — the query service
resolves access paths from many worker threads at once.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.access.indexes import IndexDef, build_index
from repro.access.pruning import candidate_mask
from repro.access.zonemap import ColumnZoneMap, build_zone_map, extend_zone_map
from repro.expr.ast import BooleanExpr, ColumnRef
from repro.storage.bitmap import Bitmap
from repro.storage.catalog import Catalog

#: Memoized candidate bitmaps kept per table (a bitmap costs one byte per
#: row, so diverse ad-hoc workloads would otherwise grow without bound —
#: the plan cache is LRU-bounded for the same reason).  Eviction is
#: insertion-ordered; cached plans simply recompute on a miss.
CANDIDATE_CACHE_SIZE = 128


@dataclass
class AccessStats:
    """Counters describing the manager's work (for reports and tests)."""

    zone_maps_built: int = 0
    indexes_built: int = 0
    zone_maps_extended: int = 0
    indexes_extended: int = 0
    candidate_lookups: int = 0
    candidate_hits: int = 0
    invalidations: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dictionary."""
        return {
            "zone_maps_built": self.zone_maps_built,
            "indexes_built": self.indexes_built,
            "zone_maps_extended": self.zone_maps_extended,
            "indexes_extended": self.indexes_extended,
            "candidate_lookups": self.candidate_lookups,
            "candidate_hits": self.candidate_hits,
            "invalidations": self.invalidations,
        }


@dataclass
class _TableEntry:
    """Per-(table, version) cache bucket."""

    version: int
    zone_maps: dict[str, ColumnZoneMap | None] = field(default_factory=dict)
    indexes: dict[tuple[str, str], object] = field(default_factory=dict)
    candidates: dict[str, Bitmap | None] = field(default_factory=dict)


def base_predicate_column(predicate: BooleanExpr) -> str | None:
    """The single column a base predicate constrains, or None.

    Pruning evidence only exists for predicates over exactly one column
    (comparisons against literals, IN/BETWEEN/LIKE/IS NULL); a predicate
    comparing two columns of the same table yields None.
    """
    columns = {
        ref.column
        for ref in _walk_refs(predicate)
    }
    if len(columns) == 1:
        return next(iter(columns))
    return None


def _walk_refs(predicate: BooleanExpr):
    for attribute in ("left", "right", "operand", "low", "high"):
        value = getattr(predicate, attribute, None)
        if isinstance(value, ColumnRef):
            yield value


class AccessPathManager:
    """Registry of zone maps, indexes and candidate bitmaps for one catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self.stats = AccessStats()
        self._lock = threading.RLock()
        self._defs: dict[tuple[str, str], IndexDef] = {}
        self._tables: dict[str, _TableEntry] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Bumped on every index create/drop; plan fingerprints include it."""
        return self._version

    # ------------------------------------------------------------------ #
    # Index DDL
    # ------------------------------------------------------------------ #
    def create_index(self, table: str, column: str, kind: str = "auto") -> IndexDef:
        """Register (and materialize) an index on ``table.column``.

        ``kind`` is ``"bitmap"``, ``"sorted"`` or ``"auto"`` (pick by
        distinct count).  Raises KeyError for unknown tables/columns and
        ValueError when the column is already indexed.
        """
        table_obj = self.catalog.get(table)
        column_obj = table_obj.column(column)  # raises for unknown columns
        with self._lock:
            if (table, column) in self._defs:
                raise ValueError(f"index on {table}.{column} already exists")
            materialized = build_index(column_obj, kind=kind)
            definition = IndexDef(table, column, materialized.kind)
            self._defs[(table, column)] = definition
            entry = self._entry_locked(table)
            entry.indexes[(column, definition.kind)] = materialized
            entry.candidates.clear()
            self.stats.indexes_built += 1
            self._version += 1
            return definition

    def drop_index(self, table: str, column: str) -> IndexDef:
        """Remove the index on ``table.column``; raises KeyError when absent."""
        with self._lock:
            definition = self._defs.pop((table, column), None)
            if definition is None:
                raise KeyError(f"no index on {table}.{column}")
            entry = self._tables.get(table)
            if entry is not None:
                entry.indexes.pop((column, definition.kind), None)
                entry.candidates.clear()
            self._version += 1
            return definition

    def list_indexes(self) -> list[IndexDef]:
        """Registered index definitions, sorted by (table, column)."""
        with self._lock:
            return sorted(
                self._defs.values(), key=lambda definition: (definition.table, definition.column)
            )

    def has_index(self, table: str, column: str) -> bool:
        """Whether an index is registered on ``table.column``."""
        with self._lock:
            return (table, column) in self._defs

    def register_loaded_index(self, definition: IndexDef, materialized) -> None:
        """Adopt an index loaded from a sidecar file (see repro.storage.disk)."""
        with self._lock:
            self._defs[(definition.table, definition.column)] = definition
            entry = self._entry_locked(definition.table)
            entry.indexes[(definition.column, definition.kind)] = materialized
            self._version += 1

    def register_loaded_zone_map(self, table: str, zone_map: ColumnZoneMap) -> None:
        """Adopt a zone map loaded from a sidecar file."""
        with self._lock:
            self._entry_locked(table).zone_maps[zone_map.column_name] = zone_map

    # ------------------------------------------------------------------ #
    # Incremental maintenance (the mutation subsystem's commit hook)
    # ------------------------------------------------------------------ #
    def extend(self, table: str, new_table, old_num_rows: int) -> None:
        """Carry ``table``'s structures forward to its new version.

        Called by :meth:`repro.mutation.batch.MutationBatch.commit` right
        after the catalog adopted the mutated table.  Zone maps and
        materialized indexes are *extended* for the appended rows (see
        :func:`repro.access.zonemap.extend_zone_map` and the index
        ``extended`` methods) instead of being dropped and lazily rebuilt;
        delete-only commits carry them over unchanged (deleted rows are
        filtered at candidate resolution and at the scan).  Candidate
        bitmaps are never carried — they fold the delete bitmap, so the new
        version starts with an empty memo.  Old structures are not mutated:
        snapshots pinned at the previous version keep reading theirs.
        """
        with self._lock:
            old_entry = self._tables.get(table)
            current = self.catalog.table_version(table)
            entry = _TableEntry(version=current)
            appended = new_table.num_rows > old_num_rows
            if old_entry is not None and old_entry.version != current:
                for column_name, zone_map in old_entry.zone_maps.items():
                    if zone_map is None or not appended:
                        entry.zone_maps[column_name] = zone_map
                    else:
                        entry.zone_maps[column_name] = extend_zone_map(
                            zone_map, new_table.column(column_name), old_num_rows
                        )
                        self.stats.zone_maps_extended += 1
                for (column_name, kind), materialized in old_entry.indexes.items():
                    if not appended:
                        entry.indexes[(column_name, kind)] = materialized
                    else:
                        entry.indexes[(column_name, kind)] = materialized.extended(
                            new_table.column(column_name), old_num_rows
                        )
                        self.stats.indexes_extended += 1
            self._tables[table] = entry

    # ------------------------------------------------------------------ #
    # Structure access (lazy, version-checked)
    # ------------------------------------------------------------------ #
    def _entry_locked(self, table: str) -> _TableEntry:
        """The cache bucket for ``table`` at its current version (lock held)."""
        current = self.catalog.table_version(table)
        entry = self._tables.get(table)
        if entry is None or entry.version != current:
            if entry is not None:
                self.stats.invalidations += 1
            entry = _TableEntry(version=current)
            self._tables[table] = entry
        return entry

    def zone_map(self, table: str, column: str) -> ColumnZoneMap | None:
        """The zone map of ``table.column`` (built lazily, cached per version)."""
        with self._lock:
            entry = self._entry_locked(table)
            if column not in entry.zone_maps:
                table_obj = self.catalog.get(table)
                if column not in table_obj:
                    entry.zone_maps[column] = None
                else:
                    entry.zone_maps[column] = build_zone_map(table_obj.column(column))
                    self.stats.zone_maps_built += 1
            return entry.zone_maps[column]

    def index_for(self, table: str, column: str):
        """The materialized index on ``table.column`` (None when undefined)."""
        with self._lock:
            definition = self._defs.get((table, column))
            if definition is None:
                return None
            entry = self._entry_locked(table)
            key = (column, definition.kind)
            materialized = entry.indexes.get(key)
            if materialized is None:
                column_obj = self.catalog.get(table).column(column)
                materialized = build_index(column_obj, kind=definition.kind)
                entry.indexes[key] = materialized
                self.stats.indexes_built += 1
            return materialized

    def zone_maps_built(self) -> list[tuple[str, ColumnZoneMap]]:
        """Every (table, zone map) currently materialized (for persistence)."""
        with self._lock:
            return [
                (table, zone_map)
                for table, entry in self._tables.items()
                if table in self.catalog
                and entry.version == self.catalog.table_version(table)
                for zone_map in entry.zone_maps.values()
                if zone_map is not None
            ]

    # ------------------------------------------------------------------ #
    # Candidate resolution
    # ------------------------------------------------------------------ #
    def candidates(self, table: str, predicate: BooleanExpr) -> Bitmap | None:
        """A sound superset of ``table``'s rows that may satisfy ``predicate``.

        Composes index lookups (exact) and zone-map page masks (page
        granular) over the predicate tree; returns ``None`` when no pruning
        evidence exists or the evidence keeps every row.  Results are
        memoized per (table version, predicate key).
        """
        key = predicate.key()
        with self._lock:
            entry = self._entry_locked(table)
            version = entry.version
            self.stats.candidate_lookups += 1
            if key in entry.candidates:
                self.stats.candidate_hits += 1
                return entry.candidates[key]
        bitmap = self._compute_candidates(table, predicate)
        with self._lock:
            entry = self._entry_locked(table)
            # Cache only if the table was not replaced while computing: a
            # concurrent replace would otherwise pin a bitmap of the old
            # contents (and possibly the wrong size) under the new version.
            if entry.version == version:
                while len(entry.candidates) >= CANDIDATE_CACHE_SIZE:
                    entry.candidates.pop(next(iter(entry.candidates)))
                entry.candidates[key] = bitmap
            return bitmap

    def _compute_candidates(self, table: str, predicate: BooleanExpr) -> Bitmap | None:
        table_obj = self.catalog.get(table)
        num_rows = table_obj.num_rows

        def evidence(base: BooleanExpr):
            column = base_predicate_column(base)
            if column is None or column not in table_obj:
                return None
            index = self.index_for(table, column)
            if index is not None:
                bitmap = index.lookup(base)
                if bitmap is not None:
                    return bitmap.mask
            zone_map = self.zone_map(table, column)
            if zone_map is None:
                return None
            return zone_map.row_mask(base, num_rows)

        mask = candidate_mask(predicate, evidence)
        # Fold the table's delete bitmap in (see repro.mutation): a deleted
        # row is never a candidate, so page pruning and morsel skipping stay
        # sound — and get *stronger* — as rows are deleted.  The scan layer
        # filters deletes independently, so this fold is an optimization for
        # accounting, not the correctness barrier.
        if table_obj.has_deletes():
            live = ~table_obj.delete_mask
            mask = live if mask is None else (mask & live)
        if mask is None or bool(mask.all()):
            return None
        return Bitmap.from_mask(mask)


_ENSURE_LOCK = threading.Lock()


def ensure_access_manager(catalog: Catalog) -> AccessPathManager:
    """The catalog's access manager, creating and registering one if needed.

    Safe to call from concurrent service workers: exactly one manager is
    ever registered per catalog.
    """
    manager = catalog.access_manager
    if manager is None:
        with _ENSURE_LOCK:
            manager = catalog.access_manager
            if manager is None:
                manager = AccessPathManager(catalog)
                catalog.access_manager = manager
    return manager

"""Secondary indexes: bitmap indexes and sorted (value → positions) indexes.

Both index kinds answer a base predicate on their column with the *exact*
set of rows where the predicate evaluates to TRUE, materialized as a
:class:`~repro.storage.bitmap.Bitmap` — the same structure the tagged and
bypass pipelines move around — so index results compose with every execution
model unchanged.

* :class:`BitmapIndex` — for low-distinct columns.  Backed by a
  :class:`~repro.access.dictionary.DictionaryEncoding`; equality, IN, ``!=``
  and (via the sorted dictionary) range predicates are unions of per-value
  position lists.
* :class:`SortedIndex` — one argsort of the column.  Range and equality
  predicates become ``searchsorted`` slices of the position array.

NULL cells (and float NaN) are excluded from both structures and tracked
separately, which is what makes ``IS [NOT] NULL`` and ``!=`` answers exact
under three-valued logic: a NULL row never satisfies a comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.access.dictionary import DictionaryEncoding
from repro.expr.ast import (
    BetweenPredicate,
    BooleanExpr,
    ColumnRef,
    Comparison,
    InPredicate,
    IsNullPredicate,
    Literal,
)
from repro.storage.bitmap import Bitmap
from repro.storage.column import Column, ColumnType

#: ``auto`` index creation picks a bitmap index when the column's distinct
#: count does not exceed ``max(BITMAP_MIN_DISTINCT, sqrt(num_rows))``.
BITMAP_MIN_DISTINCT = 64

#: Index kinds accepted by :func:`build_index`.
INDEX_KINDS = ("bitmap", "sorted")


@dataclass(frozen=True)
class IndexDef:
    """The durable identity of one secondary index."""

    table: str
    column: str
    kind: str

    def describe(self) -> str:
        """``table.column (kind)`` — used by CLI listings."""
        return f"{self.table}.{self.column} ({self.kind})"


def choose_index_kind(column: Column) -> str:
    """The ``auto`` policy: bitmap for low-distinct columns, sorted otherwise."""
    threshold = max(BITMAP_MIN_DISTINCT, int(len(column) ** 0.5))
    return "bitmap" if column.distinct_count() <= threshold else "sorted"


def build_index(column: Column, kind: str = "auto"):
    """Materialize an index over ``column``; returns the index object."""
    if kind == "auto":
        kind = choose_index_kind(column)
    if kind == "bitmap":
        return BitmapIndex.build(column)
    if kind == "sorted":
        return SortedIndex.build(column)
    raise ValueError(f"unknown index kind {kind!r}; choose one of {INDEX_KINDS} or 'auto'")


def _comparable_literal(predicate: Comparison) -> tuple[str, object] | None:
    """``(op, literal)`` oriented so the column is on the left, else None."""
    left, right = predicate.left, predicate.right
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        return (predicate.op, right.value) if right.value is not None else None
    if isinstance(right, ColumnRef) and isinstance(left, Literal):
        if left.value is None:
            return None
        return flipped[predicate.op], left.value
    return None


class _IndexBase:
    """Shared lookup plumbing of the two index kinds."""

    kind = ""

    def __init__(self, size: int, null_positions: np.ndarray) -> None:
        self.size = size
        self.null_positions = null_positions

    # -- subclass contract -------------------------------------------------- #
    def _eq_positions(self, value) -> np.ndarray:
        raise NotImplementedError

    def _range_positions(self, op: str, value) -> np.ndarray | None:
        raise NotImplementedError

    # -- shared ------------------------------------------------------------- #
    def _bitmap(self, positions: np.ndarray) -> Bitmap:
        bits = np.zeros(self.size, dtype=np.bool_)
        if positions.size:
            bits[positions] = True
        return Bitmap(bits)

    def lookup(self, predicate: BooleanExpr) -> Bitmap | None:
        """Rows where ``predicate`` is TRUE, or None when unsupported.

        The result is exact (not a superset): callers may both prune with it
        and, in principle, answer the predicate from it.
        """
        try:
            return self._lookup(predicate)
        except TypeError:
            return None  # incomparable literal type

    def _lookup(self, predicate: BooleanExpr) -> Bitmap | None:
        if isinstance(predicate, Comparison):
            oriented = _comparable_literal(predicate)
            if oriented is None:
                return None
            op, value = oriented
            if op == "=":
                return self._bitmap(self._eq_positions(value))
            if op == "!=":
                matched = self._bitmap(self._eq_positions(value))
                non_null = self._bitmap(self.null_positions).complement()
                return non_null.difference(matched)
            positions = self._range_positions(op, value)
            return None if positions is None else self._bitmap(positions)
        if isinstance(predicate, InPredicate):
            operand = predicate.operand
            if not isinstance(operand, ColumnRef):
                return None
            hits = [
                self._eq_positions(value)
                for value in predicate.values
                if value is not None
            ]
            if not hits:
                return Bitmap.empty(self.size)
            return self._bitmap(np.concatenate(hits))
        if isinstance(predicate, BetweenPredicate):
            if not isinstance(predicate.operand, ColumnRef):
                return None
            low = predicate.low.value if isinstance(predicate.low, Literal) else None
            high = predicate.high.value if isinstance(predicate.high, Literal) else None
            if low is None or high is None:
                return None
            lower = self._range_positions(">=", low)
            upper = self._range_positions("<=", high)
            if lower is None or upper is None:
                return None
            return self._bitmap(lower).intersection(self._bitmap(upper))
        if isinstance(predicate, IsNullPredicate):
            if not isinstance(predicate.operand, ColumnRef):
                return None
            nulls = self._bitmap(self.null_positions)
            return nulls.complement() if predicate.negated else nulls
        return None


class BitmapIndex(_IndexBase):
    """Value → row-position index over a dictionary-encoded column."""

    kind = "bitmap"

    def __init__(
        self,
        dictionary: DictionaryEncoding,
        order: np.ndarray,
        boundaries: np.ndarray,
        null_positions: np.ndarray,
    ) -> None:
        super().__init__(dictionary.num_rows, null_positions)
        self.dictionary = dictionary
        self._order = order
        self._boundaries = boundaries

    @classmethod
    def build(cls, column: Column) -> "BitmapIndex":
        dictionary = DictionaryEncoding.encode(column)
        order, boundaries = dictionary.grouped_positions()
        # Only true NULLs: float NaN cells are excluded from the dictionary
        # (they never satisfy =/range predicates) but are NOT null — the
        # ``!=`` and ``IS NOT NULL`` answers must keep them.
        null_positions = np.flatnonzero(column.null_mask)
        return cls(dictionary, order, boundaries, null_positions)

    @property
    def num_values(self) -> int:
        """Distinct indexed values."""
        return self.dictionary.num_values

    def positions_for_code(self, code: int) -> np.ndarray:
        """Row positions of one dictionary code."""
        start, stop = self._boundaries[code], self._boundaries[code + 1]
        return self._order[start:stop]

    def extended(self, column: Column, old_num_rows: int) -> "BitmapIndex":
        """The index of ``column`` after rows were appended at ``old_num_rows``.

        The dictionary is merged incrementally: only the appended segment is
        uniqued, existing codes are remapped through a vectorized gather when
        the segment introduced new distinct values, and the position grouping
        is re-derived from the (cheap, int32) code array — the expensive
        full-column value sort of :meth:`build` never runs.  ``self`` is not
        mutated.
        """
        segment = column.data[old_num_rows:]
        excluded = column.null_mask[old_num_rows:].copy()
        if column.ctype is ColumnType.FLOAT:
            excluded |= np.isnan(segment.astype(np.float64))
        old_values = self.dictionary.values
        old_codes = self.dictionary.codes
        seg_codes = np.full(segment.shape[0], -1, dtype=np.int32)
        valid = ~excluded
        merged_values = old_values
        merged_old_codes = old_codes
        if valid.any():
            seg_uniques, seg_inverse = np.unique(segment[valid], return_inverse=True)
            exists = np.zeros(seg_uniques.shape[0], dtype=np.bool_)
            if old_values.size:
                slots = np.searchsorted(old_values, seg_uniques)
                in_bounds = slots < old_values.size
                exists[in_bounds] = old_values[slots[in_bounds]] == seg_uniques[in_bounds]
            new_uniques = seg_uniques[~exists]
            if new_uniques.size:
                merged_values = np.insert(
                    old_values, np.searchsorted(old_values, new_uniques), new_uniques
                )
                if old_values.size:
                    remap = np.searchsorted(merged_values, old_values).astype(np.int32)
                    merged_old_codes = np.where(
                        old_codes >= 0, remap[np.maximum(old_codes, 0)], old_codes
                    ).astype(np.int32)
                # An empty old dictionary (all-NULL/NaN column) has nothing
                # to remap: every old code is already NULL_CODE.
            seg_code_of_unique = np.searchsorted(merged_values, seg_uniques).astype(np.int32)
            seg_codes[valid] = seg_code_of_unique[seg_inverse]
        dictionary = DictionaryEncoding(
            merged_values, np.concatenate([merged_old_codes, seg_codes])
        )
        order, boundaries = dictionary.grouped_positions()
        null_positions = np.concatenate(
            [
                self.null_positions,
                np.flatnonzero(column.null_mask[old_num_rows:]) + old_num_rows,
            ]
        )
        return BitmapIndex(dictionary, order, boundaries, null_positions)

    def _eq_positions(self, value) -> np.ndarray:
        code = self.dictionary.code_of(value)
        if code < 0:
            return np.empty(0, dtype=np.int64)
        return self.positions_for_code(code)

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flatten into named arrays for sidecar persistence."""
        return {
            "values": self.dictionary.values,
            "codes": self.dictionary.codes,
            "null_positions": self.null_positions,
        }

    @classmethod
    def from_arrays(cls, arrays) -> "BitmapIndex":
        """Rebuild an index persisted by :meth:`to_arrays`."""
        dictionary = DictionaryEncoding(
            np.asarray(arrays["values"]), np.asarray(arrays["codes"], dtype=np.int32)
        )
        order, boundaries = dictionary.grouped_positions()
        return cls(
            dictionary,
            order,
            boundaries,
            np.asarray(arrays["null_positions"], dtype=np.int64),
        )

    def _range_positions(self, op: str, value) -> np.ndarray | None:
        values = self.dictionary.values
        if op == "<":
            stop_code = int(np.searchsorted(values, value, side="left"))
            start_code = 0
        elif op == "<=":
            stop_code = int(np.searchsorted(values, value, side="right"))
            start_code = 0
        elif op == ">":
            start_code = int(np.searchsorted(values, value, side="right"))
            stop_code = self.num_values
        elif op == ">=":
            start_code = int(np.searchsorted(values, value, side="left"))
            stop_code = self.num_values
        else:
            return None
        start, stop = self._boundaries[start_code], self._boundaries[stop_code]
        return self._order[start:stop]


class SortedIndex(_IndexBase):
    """Sorted (value, row-position) pairs answering range predicates."""

    kind = "sorted"

    def __init__(
        self,
        sorted_values: np.ndarray,
        sorted_positions: np.ndarray,
        null_positions: np.ndarray,
        size: int,
    ) -> None:
        super().__init__(size, null_positions)
        self.sorted_values = sorted_values
        self.sorted_positions = sorted_positions

    @classmethod
    def build(cls, column: Column) -> "SortedIndex":
        data = column.data
        excluded = column.null_mask.copy()
        if column.ctype is ColumnType.FLOAT:
            excluded |= np.isnan(data.astype(np.float64))
        # Only true NULLs (see BitmapIndex.build): NaN cells are excluded
        # from the sorted structure but still satisfy != / IS NOT NULL.
        null_positions = np.flatnonzero(column.null_mask)
        valid_positions = np.flatnonzero(~excluded)
        values = data[valid_positions]
        order = np.argsort(values, kind="stable")
        return cls(values[order], valid_positions[order], null_positions, len(column))

    def extended(self, column: Column, old_num_rows: int) -> "SortedIndex":
        """The index of ``column`` after rows were appended at ``old_num_rows``.

        Sorts only the appended segment (O(d log d)) and merges it into the
        existing sorted arrays with one ``searchsorted`` + ``insert`` pass
        (O(n + d)) — the full-column argsort of :meth:`build` never runs.
        Appended positions are inserted *after* equal existing values, which
        is exactly where the stable full rebuild would place them, so an
        extended index is position-for-position identical to a rebuilt one.
        ``self`` is not mutated.
        """
        segment = column.data[old_num_rows:]
        seg_nulls = column.null_mask[old_num_rows:]
        excluded = seg_nulls.copy()
        if column.ctype is ColumnType.FLOAT:
            excluded |= np.isnan(segment.astype(np.float64))
        seg_positions = np.flatnonzero(~excluded).astype(np.int64) + old_num_rows
        seg_values = segment[~excluded]
        order = np.argsort(seg_values, kind="stable")
        seg_values = seg_values[order]
        seg_positions = seg_positions[order]
        insert_at = np.searchsorted(self.sorted_values, seg_values, side="right")
        return SortedIndex(
            np.insert(self.sorted_values, insert_at, seg_values),
            np.insert(self.sorted_positions, insert_at, seg_positions),
            np.concatenate(
                [self.null_positions, np.flatnonzero(seg_nulls) + old_num_rows]
            ),
            len(column),
        )

    def _slice(self, start: int, stop: int) -> np.ndarray:
        return self.sorted_positions[start:stop]

    def _eq_positions(self, value) -> np.ndarray:
        start = int(np.searchsorted(self.sorted_values, value, side="left"))
        stop = int(np.searchsorted(self.sorted_values, value, side="right"))
        return self._slice(start, stop)

    def _range_positions(self, op: str, value) -> np.ndarray | None:
        total = self.sorted_values.shape[0]
        if op == "<":
            return self._slice(0, int(np.searchsorted(self.sorted_values, value, "left")))
        if op == "<=":
            return self._slice(0, int(np.searchsorted(self.sorted_values, value, "right")))
        if op == ">":
            return self._slice(int(np.searchsorted(self.sorted_values, value, "right")), total)
        if op == ">=":
            return self._slice(int(np.searchsorted(self.sorted_values, value, "left")), total)
        return None

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flatten into named arrays for sidecar persistence."""
        return {
            "sorted_values": self.sorted_values,
            "sorted_positions": self.sorted_positions,
            "null_positions": self.null_positions,
            "size": np.array([self.size], dtype=np.int64),
        }

    @classmethod
    def from_arrays(cls, arrays) -> "SortedIndex":
        """Rebuild an index persisted by :meth:`to_arrays`."""
        return cls(
            np.asarray(arrays["sorted_values"]),
            np.asarray(arrays["sorted_positions"], dtype=np.int64),
            np.asarray(arrays["null_positions"], dtype=np.int64),
            int(arrays["size"][0]),
        )

"""Deriving what a scan may prune on, and composing candidate row sets.

**Which rows may a base-table scan drop?**  A query's final rows are those
where the whole WHERE predicate evaluates to TRUE, so a scan of alias ``a``
may drop any row that provably cannot appear in such a result — any row
where some predicate *implied by* the WHERE clause and referencing only
``a`` is not TRUE (FALSE and UNKNOWN are equally safe to drop; implication
under three-valued logic means "WHERE TRUE ⇒ implied TRUE").
:func:`implied_alias_predicate` extracts the strongest such predicate by
recursion:

* a base predicate referencing only ``a`` implies itself;
* a conjunction implies the conjunction of whatever its conjuncts imply
  (conjuncts implying nothing are simply skipped);
* a disjunction implies the disjunction of its branches' implications —
  but only when *every* branch implies something;
* anything under a NOT is conservatively skipped.

**How is the candidate set built?**  :func:`candidate_mask` mirrors that
recursion over the implied predicate, asking per base predicate for either
an exact TRUE-row set (a secondary index) or a superset (zone-map page
mask).  Supersets stay supersets under the composition rules: AND
intersects whatever evidence exists, OR unions only when every branch has
evidence.  The result is therefore always a sound superset of the rows the
scan must produce.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.expr.ast import AndExpr, BooleanExpr, NotExpr, OrExpr, flatten


def implied_alias_predicate(predicate: BooleanExpr | None, alias: str) -> BooleanExpr | None:
    """The strongest single-alias predicate implied by ``predicate``.

    Returns ``None`` when nothing about ``alias`` is implied (cross-table
    comparisons, negations, or branches mentioning other tables only).
    """
    if predicate is None:
        return None
    implied = _implied(flatten(predicate), alias)
    return flatten(implied) if implied is not None else None


def _implied(predicate: BooleanExpr, alias: str) -> BooleanExpr | None:
    if isinstance(predicate, NotExpr):
        return None
    if isinstance(predicate, AndExpr):
        parts = [
            part
            for part in (_implied(child, alias) for child in predicate.children())
            if part is not None
        ]
        if not parts:
            return None
        return parts[0] if len(parts) == 1 else AndExpr(parts)
    if isinstance(predicate, OrExpr):
        parts = []
        for child in predicate.children():
            part = _implied(child, alias)
            if part is None:
                return None
            parts.append(part)
        return parts[0] if len(parts) == 1 else OrExpr(parts)
    if predicate.tables() == frozenset({alias}):
        return predicate
    return None


#: Signature of the per-base-predicate evidence callbacks: return a boolean
#: candidate row mask (True = the row may satisfy the predicate) or None
#: when no evidence exists for that predicate.
EvidenceFn = Callable[[BooleanExpr], "np.ndarray | None"]


def candidate_mask(predicate: BooleanExpr, evidence: EvidenceFn) -> np.ndarray | None:
    """Compose per-base-predicate evidence into one candidate row mask.

    ``evidence`` is consulted for every base predicate; AND intersects the
    masks that exist, OR unions them only when every branch produced one.
    Returns ``None`` when no pruning evidence exists anywhere.
    """
    if isinstance(predicate, NotExpr):
        return None
    if isinstance(predicate, AndExpr):
        combined: np.ndarray | None = None
        for child in predicate.children():
            mask = candidate_mask(child, evidence)
            if mask is None:
                continue
            combined = mask if combined is None else (combined & mask)
        return combined
    if isinstance(predicate, OrExpr):
        combined = None
        for child in predicate.children():
            mask = candidate_mask(child, evidence)
            if mask is None:
                return None
            combined = mask if combined is None else (combined | mask)
        return combined
    return evidence(predicate)

"""Per-page zone maps: min/max + null-count sketches over a column.

A zone map summarizes each simulated disk page of a column (see
:data:`repro.storage.column.DEFAULT_PAGE_SIZE`) with the minimum and maximum
non-NULL value it holds plus the number of NULL cells.  A base predicate that
compares the column against literals can then rule out entire pages before a
single value is read: if ``max(page) < 10``, no row of that page satisfies
``col > 10``.

Pruning is *sound under three-valued logic*: a page is skipped only when the
predicate cannot evaluate to TRUE for any of its rows — FALSE and UNKNOWN
rows are both safe to drop for a predicate the scan's WHERE clause implies
(see :mod:`repro.access.pruning`).  Genuine float NaN values are excluded
from the min/max bounds; a NaN cell can never make a supported predicate
TRUE, so the bounds stay valid.
"""

from __future__ import annotations

import numpy as np

from repro.expr.ast import (
    BetweenPredicate,
    BooleanExpr,
    ColumnRef,
    Comparison,
    InPredicate,
    IsNullPredicate,
    LikePredicate,
    Literal,
)
from repro.storage.column import Column, ColumnType


class ColumnZoneMap:
    """Min/max/null-count summaries for every page of one column.

    Attributes:
        column_name: name of the summarized column.
        page_size: rows per page (copied from the column).
        num_pages: number of pages summarized.
        mins / maxs: per-page min/max of the non-NULL, non-NaN values
            (``None`` for a page with no such values).
        null_counts: per-page NULL-cell counts.
        row_counts: per-page row counts (the last page may be short).
    """

    __slots__ = (
        "column_name",
        "page_size",
        "num_pages",
        "mins",
        "maxs",
        "null_counts",
        "row_counts",
    )

    def __init__(
        self,
        column_name: str,
        page_size: int,
        mins: list,
        maxs: list,
        null_counts: np.ndarray,
        row_counts: np.ndarray,
    ) -> None:
        self.column_name = column_name
        self.page_size = page_size
        self.num_pages = len(mins)
        self.mins = mins
        self.maxs = maxs
        self.null_counts = null_counts
        self.row_counts = row_counts

    # ------------------------------------------------------------------ #
    # Pruning
    # ------------------------------------------------------------------ #
    def page_mask(self, predicate: BooleanExpr) -> np.ndarray | None:
        """Pages that *may* contain a row where ``predicate`` is TRUE.

        Returns a boolean array of length :attr:`num_pages` (True = keep the
        page), or ``None`` when the predicate shape is not answerable from
        min/max/null sketches — callers must then treat every page as a
        candidate.
        """
        parts = _normalize(predicate, self.column_name)
        if parts is None:
            return None
        op, payload = parts
        try:
            return self._evaluate(op, payload)
        except TypeError:
            # Incomparable literal type (e.g. string literal against an int
            # column): no sound pruning decision can be made.
            return None

    def _evaluate(self, op: str, payload) -> np.ndarray | None:
        keep = np.zeros(self.num_pages, dtype=np.bool_)
        if op == "is_null":
            return self.null_counts > 0
        if op == "is_not_null":
            return self.null_counts < self.row_counts
        for page in range(self.num_pages):
            low, high = self.mins[page], self.maxs[page]
            if low is None:
                continue  # no comparable value on the page -> never TRUE
            if op == "=":
                keep[page] = low <= payload <= high
            elif op == "<":
                keep[page] = low < payload
            elif op == "<=":
                keep[page] = low <= payload
            elif op == ">":
                keep[page] = high > payload
            elif op == ">=":
                keep[page] = high >= payload
            elif op == "between":
                keep[page] = payload[0] <= high and payload[1] >= low
            elif op == "in":
                keep[page] = any(low <= value <= high for value in payload)
            elif op == "prefix":
                # The prefix range is lexicographic; numeric min/max do not
                # bound the str() images of a page's values (str(99) >
                # str(112)), so LIKE pruning is only sound on string bounds.
                if not isinstance(low, str):
                    return None
                keep[page] = payload[0] <= high and (
                    payload[1] is None or payload[1] > low
                )
            else:  # pragma: no cover - _normalize only emits the ops above
                return None
        return keep

    def row_mask(self, predicate: BooleanExpr, num_rows: int) -> np.ndarray | None:
        """The page mask expanded to row granularity (True = candidate row)."""
        pages = self.page_mask(predicate)
        if pages is None:
            return None
        return np.repeat(pages, self.page_size)[:num_rows]

    def __repr__(self) -> str:
        return (
            f"ColumnZoneMap({self.column_name!r}, pages={self.num_pages}, "
            f"page_size={self.page_size})"
        )

    # ------------------------------------------------------------------ #
    # Serialization (sidecar files, see repro.storage.disk)
    # ------------------------------------------------------------------ #
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flatten into named arrays for ``np.savez``-style persistence."""
        has_bounds = np.array([value is not None for value in self.mins], dtype=np.bool_)
        filler = next((value for value in self.mins if value is not None), 0)
        mins = np.array([filler if value is None else value for value in self.mins])
        maxs = np.array([filler if value is None else value for value in self.maxs])
        return {
            "mins": mins,
            "maxs": maxs,
            "has_bounds": has_bounds,
            "null_counts": self.null_counts,
            "row_counts": self.row_counts,
            "page_size": np.array([self.page_size], dtype=np.int64),
        }

    @classmethod
    def from_arrays(cls, column_name: str, arrays) -> "ColumnZoneMap":
        """Rebuild a zone map persisted by :meth:`to_arrays`."""
        has_bounds = arrays["has_bounds"]
        mins = [
            value if flag else None
            for value, flag in zip(arrays["mins"].tolist(), has_bounds)
        ]
        maxs = [
            value if flag else None
            for value, flag in zip(arrays["maxs"].tolist(), has_bounds)
        ]
        return cls(
            column_name,
            int(arrays["page_size"][0]),
            mins,
            maxs,
            np.asarray(arrays["null_counts"], dtype=np.int64),
            np.asarray(arrays["row_counts"], dtype=np.int64),
        )


def build_zone_map(column: Column) -> ColumnZoneMap:
    """Build the zone map of one column (one pass over its pages)."""
    return _summarize_pages(column, 0, column.num_pages)


def extend_zone_map(
    zone_map: ColumnZoneMap, column: Column, old_num_rows: int
) -> ColumnZoneMap:
    """The zone map of ``column`` after rows were appended at ``old_num_rows``.

    Only the *dirty tail* is recomputed: the page containing the first
    appended row (which may have been partially filled before) and every
    page after it.  Pages before that are carried over unchanged, so the
    cost is O(appended rows), not O(table).  ``zone_map`` is not mutated —
    snapshots of the old version keep their structures.
    """
    if zone_map.page_size != column.page_size:
        return build_zone_map(column)  # geometry changed: no reusable pages
    first_dirty = old_num_rows // zone_map.page_size
    tail = _summarize_pages(column, first_dirty, column.num_pages)
    return ColumnZoneMap(
        column.name,
        zone_map.page_size,
        list(zone_map.mins[:first_dirty]) + tail.mins,
        list(zone_map.maxs[:first_dirty]) + tail.maxs,
        np.concatenate([zone_map.null_counts[:first_dirty], tail.null_counts]),
        np.concatenate([zone_map.row_counts[:first_dirty], tail.row_counts]),
    )


def _summarize_pages(column: Column, first_page: int, end_page: int) -> ColumnZoneMap:
    """Summarize pages ``[first_page, end_page)`` of a column."""
    num_rows = len(column)
    page_size = column.page_size
    data = column.data
    nulls = column.null_mask
    is_float = column.ctype is ColumnType.FLOAT

    count = max(end_page - first_page, 0)
    mins: list = []
    maxs: list = []
    null_counts = np.zeros(count, dtype=np.int64)
    row_counts = np.zeros(count, dtype=np.int64)
    for slot, page in enumerate(range(first_page, end_page)):
        start = page * page_size
        stop = min(num_rows, start + page_size)
        page_nulls = nulls[start:stop]
        null_count = int(page_nulls.sum())
        null_counts[slot] = null_count
        row_counts[slot] = stop - start
        values = data[start:stop]
        if null_count:
            values = values[~page_nulls]
        if is_float and values.size:
            values = values[~np.isnan(values.astype(np.float64))]
        if values.size == 0:
            mins.append(None)
            maxs.append(None)
        else:
            mins.append(values.min())
            maxs.append(values.max())
    return ColumnZoneMap(column.name, page_size, mins, maxs, null_counts, row_counts)


# --------------------------------------------------------------------------- #
# Predicate normalization
# --------------------------------------------------------------------------- #
_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


def _literal(value_expr) -> object | None:
    if isinstance(value_expr, Literal) and value_expr.value is not None:
        return value_expr.value
    return None


def _like_prefix_bounds(pattern: str) -> tuple[str, str | None] | None:
    """``(low, high)`` bounds of the strings matching a prefix-only pattern.

    Only patterns of the form ``prefix%`` (or ``prefix%more...`` — the prefix
    before the first wildcard is what bounds the match) yield a range; a
    leading wildcard matches anywhere, so no bound exists.  ``high`` is the
    exclusive upper bound (prefix with its last character incremented), or
    ``None`` when the increment would overflow.
    """
    cut = len(pattern)
    for position, char in enumerate(pattern):
        if char in ("%", "_"):
            cut = position
            break
    prefix = pattern[:cut]
    if not prefix:
        return None
    if cut == len(pattern):
        # No wildcard at all: LIKE degenerates to equality on the pattern.
        return prefix, prefix + "\x00"
    last = prefix[-1]
    if ord(last) >= 0x10FFFF:
        return prefix, None
    return prefix, prefix[:-1] + chr(ord(last) + 1)


def zone_map_supported(predicate: BooleanExpr, column_name: str) -> bool:
    """Whether :meth:`ColumnZoneMap.page_mask` can answer ``predicate``."""
    return _normalize(predicate, column_name) is not None


def _normalize(predicate: BooleanExpr, column_name: str):
    """Reduce a base predicate to ``(op, payload)`` against ``column_name``.

    Returns ``None`` when the predicate is not a supported single-column
    comparison against literals.
    """
    if isinstance(predicate, Comparison):
        if predicate.op == "!=":
            # NaN != literal is TRUE under NumPy semantics, so min/max bounds
            # (which exclude NaN) cannot soundly prune inequality.
            return None
        left, right = predicate.left, predicate.right
        if isinstance(left, ColumnRef) and left.column == column_name:
            value = _literal(right)
            return None if value is None else (predicate.op, value)
        if isinstance(right, ColumnRef) and right.column == column_name:
            value = _literal(left)
            flipped = _FLIPPED.get(predicate.op)
            return None if value is None or flipped is None else (flipped, value)
        return None
    if isinstance(predicate, BetweenPredicate):
        operand = predicate.operand
        if not (isinstance(operand, ColumnRef) and operand.column == column_name):
            return None
        low, high = _literal(predicate.low), _literal(predicate.high)
        if low is None or high is None:
            return None
        return "between", (low, high)
    if isinstance(predicate, InPredicate):
        operand = predicate.operand
        if not (isinstance(operand, ColumnRef) and operand.column == column_name):
            return None
        values = [value for value in predicate.values if value is not None]
        if not values:
            return None
        return "in", tuple(values)
    if isinstance(predicate, IsNullPredicate):
        operand = predicate.operand
        if not (isinstance(operand, ColumnRef) and operand.column == column_name):
            return None
        return ("is_not_null" if predicate.negated else "is_null"), None
    if isinstance(predicate, LikePredicate):
        operand = predicate.operand
        if (
            not isinstance(operand, ColumnRef)
            or operand.column != column_name
            or predicate.case_insensitive
        ):
            return None
        bounds = _like_prefix_bounds(predicate.pattern)
        return None if bounds is None else ("prefix", bounds)
    return None

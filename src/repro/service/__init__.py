"""Query-service layer: plan caching, stats caching, batch execution.

This package turns the one-shot :class:`~repro.engine.session.Session` into
something that can serve sustained, repetitive traffic:

* :mod:`repro.service.fingerprint` — normalized query fingerprints;
* :mod:`repro.service.plan_cache` — an LRU cache of prepared plans;
* :mod:`repro.service.stats_cache` — per-table statistics/sample cache,
  invalidated by the catalog version counter;
* :mod:`repro.service.service` — :class:`QueryService`, the batch front end.

See ``docs/architecture.md`` for how the pieces fit together.
"""

from repro.service.fingerprint import canonical_query_text, query_fingerprint
from repro.service.plan_cache import DEFAULT_PLAN_CACHE_SIZE, CacheStats, PlanCache
from repro.service.service import (
    DEFAULT_MAX_WORKERS,
    BatchItem,
    BatchReport,
    QueryService,
)
from repro.service.stats_cache import StatsCache

__all__ = [
    "BatchItem",
    "BatchReport",
    "CacheStats",
    "DEFAULT_MAX_WORKERS",
    "DEFAULT_PLAN_CACHE_SIZE",
    "PlanCache",
    "QueryService",
    "StatsCache",
    "canonical_query_text",
    "query_fingerprint",
]

"""The query service: cached planning and concurrent batch execution.

:class:`QueryService` is the front end a long-running deployment talks to.
It wraps a :class:`~repro.engine.session.Session` and adds the three things
``Session.execute`` deliberately does not have:

1. a **plan cache** — repeated queries skip parsing, statistics collection
   and planning entirely (see :mod:`repro.service.plan_cache`);
2. a **stats cache** — even novel queries reuse per-table statistics and
   selectivity samples (see :mod:`repro.service.stats_cache`);
3. a **batch executor** — a thread pool runs many queries concurrently with
   a per-query timeout, returning structured per-query outcomes;
4. optionally, a **feedback loop** (``feedback=True``) — executions record
   observed per-clause selectivities and output cardinality, and when a
   cached plan's q-error exceeds ``qerror_threshold`` the service retires
   that one cache entry and re-plans with the observed selectivities
   injected through the estimate provider (see :mod:`repro.optimizer`).

Results are identical to serial ``Session.execute`` calls: planning and
statistics are deterministic, prepared plans are immutable during execution,
and every execution gets its own private metrics/IO context.  The feedback
loop never changes the rows a query returns — only which (equivalent) plan
serves it.

Example::

    from repro import QueryService, Session
    from repro.workloads.imdb import generate_imdb_catalog

    service = QueryService(Session(generate_imdb_catalog(scale=0.05, seed=7)))
    batch = service.execute_batch([SQL_1, SQL_2, SQL_1], planner="tcombined")
    for item in batch:
        print(item.index, item.ok, item.result.row_count if item.ok else item.error)
    print(service.plan_cache.stats.as_dict())
"""

from __future__ import annotations

import threading
import weakref
from concurrent.futures import Future, ThreadPoolExecutor, TimeoutError as FutureTimeout
from dataclasses import dataclass, field

from repro.engine.metrics import ExecutionMetrics, Stopwatch, aggregate_metrics
from repro.engine.result import QueryResult
from repro.engine.session import PreparedPlan, Session
from repro.obs import history as obs_history
from repro.obs import instruments
from repro.obs.history import WorkloadHistory, plan_hash_of
from repro.obs.slowlog import (
    DEFAULT_SLOW_LOG_KEEP,
    DEFAULT_SLOW_LOG_MAX_BYTES,
    RotatingFileSink,
    SlowQueryLog,
    SlowQueryRecord,
)
from repro.optimizer.feedback import DEFAULT_QERROR_THRESHOLD, FeedbackStore
from repro.plan.query import Query
from repro.kernels.config import resolve_tier, validate_tier
from repro.service.fingerprint import query_fingerprint
from repro.service.plan_cache import DEFAULT_PLAN_CACHE_SIZE, PlanCache
from repro.service.stats_cache import StatsCache
from repro.storage.catalog import Catalog

#: Default number of worker threads used by batch execution.
DEFAULT_MAX_WORKERS = 4


@dataclass
class BatchItem:
    """The structured outcome of one query inside a batch.

    Exactly one of three shapes:

    * success — ``result`` holds the :class:`QueryResult`;
    * failure — ``error`` holds the exception text;
    * timeout — ``timed_out`` is True (the worker thread finishes in the
      background, but its outcome is discarded; the engine is pure Python
      and cannot interrupt an in-flight query).
    """

    index: int
    query: Query | str
    planner: str
    result: QueryResult | None = None
    error: str | None = None
    timed_out: bool = False
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the query produced a result."""
        return self.result is not None and not self.timed_out


@dataclass
class BatchReport:
    """All outcomes of one batch, plus aggregates for reporting."""

    items: list[BatchItem] = field(default_factory=list)
    wall_seconds: float = 0.0

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> BatchItem:
        return self.items[index]

    @property
    def succeeded(self) -> list[BatchItem]:
        """Items that produced a result."""
        return [item for item in self.items if item.ok]

    @property
    def failed(self) -> list[BatchItem]:
        """Items that raised (excluding timeouts)."""
        return [item for item in self.items if item.error is not None]

    @property
    def timed_out(self) -> list[BatchItem]:
        """Items whose wait exceeded the per-query timeout."""
        return [item for item in self.items if item.timed_out]

    @property
    def queries_per_second(self) -> float:
        """Completed queries divided by batch wall-clock time."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return len(self.succeeded) / self.wall_seconds

    def total_metrics(self) -> ExecutionMetrics:
        """Engine work counters summed across all successful queries."""
        return aggregate_metrics(item.result.metrics for item in self.succeeded)


class QueryService:
    """Serves queries with plan/stats caching and concurrent batch execution.

    Args:
        session: the session to serve from; a bare :class:`Catalog` is also
            accepted and wrapped in a default session.  When the session has
            no ``stats_provider`` yet, the service installs its own
            :class:`StatsCache` (shared by cached and uncached paths alike).
        plan_cache_size: LRU capacity of the plan cache.
        max_workers: worker threads used by :meth:`execute_batch`.
        default_timeout: per-query timeout in seconds applied when a batch
            does not specify one (``None`` waits indefinitely).
        parallelism: intra-query morsel parallelism applied to queries served
            *through this service* (``None`` keeps the session's setting; the
            wrapped session itself is never mutated).  Inter-query
            concurrency (``max_workers``) and intra-query parallelism
            compose; the returned rows are the same either way.
        partitions: table partitions per query served through this service
            (``None`` keeps the session's setting).
        shards: shared-nothing worker processes per query served through
            this service (``None`` keeps the session's setting; see
            :mod:`repro.engine.shard`).  The knob never changes plans or
            results — it is not part of plan-cache fingerprints — and the
            shard pool serializes scatter–gathers, so concurrent batch
            queries at the same shard count queue on it.
        feedback: enable the runtime feedback loop — executions record
            observed per-clause selectivities (into :attr:`feedback_store`),
            and cached plans whose estimated-vs-actual output cardinality
            drifts beyond ``qerror_threshold`` are invalidated and re-planned
            with the observed selectivities.  Off by default (observation
            adds counting passes to the execution hot path).
        qerror_threshold: q-error (``max(est/act, act/est)`` of output rows)
            above which a cached plan is considered drifted.
        kernels: expression-kernel tier for queries served through this
            service (``None`` keeps the session's setting).  The *resolved*
            tier is hashed into plan-cache fingerprints, so flipping the
            knob addresses separate cache slots instead of mixing tiers.
        slow_query_seconds: arm the slow-query log — every query whose
            end-to-end latency (cache lookup / planning plus execution)
            meets this threshold emits a structured
            :class:`~repro.obs.slowlog.SlowQueryRecord` into
            :attr:`slow_query_log` and to ``slow_query_sink``.  ``None``
            (the default) disables the log entirely.
        slow_query_sink: optional callable receiving each
            :class:`~repro.obs.slowlog.SlowQueryRecord`; exceptions it
            raises are swallowed (a broken sink never fails a query).
        slow_query_log_path: additionally write each slow-query record as
            one JSON line to this file through a size-rotating
            :class:`~repro.obs.slowlog.RotatingFileSink` (composes with
            ``slow_query_sink``; requires ``slow_query_seconds``).
        slow_query_log_max_bytes / slow_query_log_keep: rotation size and
            number of rotated files kept by the file sink.
        history: a :class:`~repro.obs.history.WorkloadHistory` to feed with
            every execution served here (per-fingerprint statistics, the
            event journal, regression detection).  ``None`` falls back to
            the process-ambient history installed with
            :func:`repro.obs.history.set_history` (and records nothing when
            that is absent).  History recording happens once, coordinator-
            side, after per-worker metrics have merged — results and IO
            accounting are byte-identical with history on or off.
    """

    def __init__(
        self,
        session: Session | Catalog,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        max_workers: int = DEFAULT_MAX_WORKERS,
        default_timeout: float | None = None,
        parallelism: int | None = None,
        partitions: int | None = None,
        feedback: bool = False,
        qerror_threshold: float = DEFAULT_QERROR_THRESHOLD,
        kernels: str | None = None,
        shards: int | None = None,
        slow_query_seconds: float | None = None,
        slow_query_sink=None,
        slow_query_log_path=None,
        slow_query_log_max_bytes: int = DEFAULT_SLOW_LOG_MAX_BYTES,
        slow_query_log_keep: int = DEFAULT_SLOW_LOG_KEEP,
        history: WorkloadHistory | None = None,
    ) -> None:
        if isinstance(session, Catalog):
            session = Session(session)
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        self.session = session
        self.history = history
        sink = slow_query_sink
        if slow_query_log_path is not None:
            file_sink = RotatingFileSink(
                slow_query_log_path,
                max_bytes=slow_query_log_max_bytes,
                keep=slow_query_log_keep,
            )
            if sink is None:
                sink = file_sink
            else:
                user_sink = sink

                def sink(record, _user=user_sink, _file=file_sink):
                    _file(record)
                    _user(record)

        self.slow_query_log = (
            SlowQueryLog(slow_query_seconds, sink=sink)
            if slow_query_seconds is not None
            else None
        )
        self.parallelism = parallelism
        self.partitions = partitions
        self.shards = shards
        self.kernels = validate_tier(kernels) if kernels is not None else None
        if self.session.stats_provider is None:
            self.session.stats_provider = StatsCache(self.session.catalog)
        self.stats_cache = self.session.stats_provider
        self.plan_cache = PlanCache(plan_cache_size)
        # Re-plan hook: a drift invalidation (feedback loop retiring one
        # entry) is the event the workload history calls a "re-plan".
        self.plan_cache.on_replan = self._record_replan
        self.feedback = feedback
        self.qerror_threshold = qerror_threshold
        self.feedback_store = FeedbackStore()
        self.default_timeout = default_timeout
        # Incremental cache maintenance on mutation commits (repro.mutation):
        # stats are extended by delta, exactly the plans/observations reading
        # a mutated table are retired, everything else stays warm.  The
        # subscription holds only a weak reference — a service abandoned
        # without close() stays garbage-collectable, never does maintenance
        # work as a zombie, and the finalizer removes its callback from the
        # catalog's subscriber list when it is collected.
        weak_self = weakref.ref(self)

        def _notify_weak(commit, _ref=weak_self):
            service = _ref()
            if service is not None:
                service._on_mutation(commit)

        self._mutation_callback = _notify_weak
        self.session.catalog.subscribe_mutations(self._mutation_callback)
        self._unsubscribe = weakref.finalize(
            self, self.session.catalog.unsubscribe_mutations, self._mutation_callback
        )
        self._max_workers = max(1, max_workers)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        # Single-flight planning: concurrent requests for the same
        # fingerprint wait on one prepare instead of planning redundantly.
        self._inflight: dict[str, Future] = {}
        self._inflight_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Single-query path
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: Query | str,
        planner: str = "tcombined",
        naive_tags: bool = False,
        trace=False,
    ) -> QueryResult:
        """Execute one query, reusing a cached plan when available.

        The oracle planner ``tmin`` executes every tagged candidate and keeps
        the fastest, so it has no single plan to cache; it is delegated to
        the wrapped session (still benefiting from the stats cache).

        ``trace`` opts the execution into structured tracing exactly as in
        :meth:`Session.execute_prepared` — the result carries the span tree.
        Independently of tracing, every execution publishes into the global
        metrics registry (query latency histogram, plan-cache hits/misses,
        page/pruning counters) and is held against the slow-query threshold
        when one is configured.
        """
        planner = planner.lower()
        query = self._bind(query)
        wall_timer = Stopwatch()
        if planner == "tmin":
            # The service is this query's history publisher: stand the
            # session's own ambient publish down so the execution is
            # recorded exactly once (under the service's fingerprint).
            with obs_history.service_publishes():
                result = self.session.execute(
                    query,
                    planner=planner,
                    naive_tags=naive_tags,
                    parallelism=self.parallelism,
                    partitions=self.partitions,
                    shards=self.shards,
                    trace=bool(trace),
                )
            self._publish(
                result,
                wall_timer.elapsed(),
                key=obs_history.session_fingerprint(query, planner),
            )
            return result

        lookup_timer = Stopwatch()
        key = self._fingerprint(query, planner, naive_tags)
        try:
            prepared, reused = self._prepared_for(key, query, planner, naive_tags)
            instruments.publish_plan_cache(hit=reused)
            if not reused:
                result = self.session.execute_prepared(
                    prepared,
                    parallelism=self.parallelism,
                    partitions=self.partitions,
                    collect_feedback=self.feedback,
                    kernels=self.kernels,
                    shards=self.shards,
                    trace=trace,
                )
            else:
                result = self.session.execute_prepared(
                    prepared,
                    planning_seconds=lookup_timer.elapsed(),
                    cache_hit=True,
                    parallelism=self.parallelism,
                    partitions=self.partitions,
                    collect_feedback=self.feedback,
                    kernels=self.kernels,
                    shards=self.shards,
                    trace=trace,
                )
        except Exception as error:
            history = self._history()
            if history is not None:
                history.record_error(key, planner, f"{type(error).__name__}: {error}")
            raise
        if self.feedback:
            self._observe(key, prepared, result)
        self._publish(result, wall_timer.elapsed(), key=key)
        return result

    def _history(self) -> WorkloadHistory | None:
        """The history this service feeds: explicit, else process-ambient."""
        return self.history if self.history is not None else obs_history.get_history()

    def _record_replan(self, key: str) -> None:
        """Plan-cache hook: one drifted entry was retired for re-planning."""
        history = self._history()
        if history is not None:
            history.record_replan(key)

    def _publish(
        self, result: QueryResult, elapsed_seconds: float, key: str | None
    ) -> None:
        """Feed one finished execution into the registry, slow log and history.

        This is the single coordinator-side publish point: per-morsel and
        per-shard counters have already merged into ``result`` through the
        engine's fork/absorb, so each query lands in the stats store and the
        journal exactly once regardless of parallelism or shard count.
        """
        instruments.publish_query(
            seconds=elapsed_seconds,
            rows=result.row_count,
            pages_read=result.iostats.pages_read,
            pages_pruned=result.metrics.pages_pruned,
            morsels=result.metrics.morsels_executed,
            shard_tasks=result.metrics.shards_executed,
        )
        fingerprint = key if key is not None else f"<{result.planner_name}>"
        slow_record = None
        log = self.slow_query_log
        if log is not None and elapsed_seconds >= log.threshold_seconds:
            slow_record = SlowQueryRecord(
                fingerprint=fingerprint,
                planner=result.planner_name,
                elapsed_seconds=elapsed_seconds,
                planning_seconds=result.planning_seconds,
                execution_seconds=result.execution_seconds,
                rows=result.row_count,
                pages_read=result.iostats.pages_read,
                pages_pruned=result.metrics.pages_pruned,
                cache_hit=result.cache_hit,
                kernel_tier=result.kernel_tier,
                shards=self.shards,
            )
            log.observe(slow_record)
        history = self._history()
        if history is not None:
            trace = result.trace.to_dict() if result.trace is not None else None
            history.record_query(
                fingerprint=fingerprint,
                planner=result.planner_name,
                seconds=elapsed_seconds,
                execution_seconds=result.execution_seconds,
                rows=result.row_count,
                pages_read=result.iostats.pages_read,
                pages_pruned=result.metrics.pages_pruned,
                cache_hit=result.cache_hit,
                plan_hash=plan_hash_of(result.plan_description),
                trace=trace,
            )
            if slow_record is not None:
                history.record_slow_query(slow_record)

    def _prepared_for(self, key: str, query, planner: str, naive_tags: bool):
        """The prepared plan for ``key``: cached, awaited, or freshly planned.

        Returns ``(prepared, reused)`` where ``reused`` is True when this
        call did not plan itself (cache hit, or another thread's in-flight
        prepare was awaited).  With feedback enabled, fresh planning injects
        the fingerprint's accumulated observed selectivities — this is the
        re-optimization half of the feedback loop (the first plan for a
        never-observed query gets an empty override set and is identical to
        planning without feedback).
        """
        prepared = self.plan_cache.get(key)
        if prepared is not None:
            return prepared, True
        with self._inflight_lock:
            pending = self._inflight.get(key)
            owner = pending is None
            if owner:
                pending = Future()
                self._inflight[key] = pending
        if not owner:
            return pending.result(), True
        try:
            overrides = (
                self.feedback_store.observed_selectivities(key)
                if self.feedback
                else None
            )
            prepared = self.session.prepare(
                query, planner, naive_tags, selectivity_overrides=overrides
            )
            self.plan_cache.put(key, prepared)
            if self.feedback:
                self.feedback_store.mark_applied(key, overrides or {})
            pending.set_result(prepared)
            return prepared, False
        except BaseException as error:
            pending.set_exception(error)
            raise
        finally:
            with self._inflight_lock:
                self._inflight.pop(key, None)

    def _observe(self, key: str, prepared: PreparedPlan, result: QueryResult) -> None:
        """Fold one execution's observations in; retire the plan on drift.

        The observed output cardinality is the projection operators' count
        *before* output shaping, which is what ``estimated_output_rows``
        estimates.  Invalidating only ``key`` keeps every other cached plan
        warm; the next request for this fingerprint re-plans with the
        accumulated observed selectivities.
        """
        self.feedback_store.record(
            key,
            result.metrics,
            prepared.estimated_output_rows,
            result.metrics.output_rows,
            tables=set(prepared.query.tables.values()),
        )
        if self.feedback_store.should_replan(key, self.qerror_threshold):
            self.plan_cache.invalidate_entry(key)
        stats = self.feedback_store.stats
        instruments.publish_feedback(stats.observations, stats.replans)

    def warm(
        self,
        queries,
        planner: str = "tcombined",
        naive_tags: bool = False,
    ) -> int:
        """Prepare (but do not execute) ``queries``; returns plans added."""
        added = 0
        planner_name = planner.lower()
        if planner_name == "tmin":
            return 0
        for query in queries:
            query = self._bind(query)
            key = self._fingerprint(query, planner_name, naive_tags)
            _prepared, reused = self._prepared_for(key, query, planner_name, naive_tags)
            if not reused:
                added += 1
        return added

    # ------------------------------------------------------------------ #
    # Batch path
    # ------------------------------------------------------------------ #
    def execute_batch(
        self,
        queries,
        planner: str = "tcombined",
        naive_tags: bool = False,
        timeout: float | None = None,
    ) -> BatchReport:
        """Execute ``queries`` across the worker pool; returns a :class:`BatchReport`.

        Item order matches input order regardless of completion order.
        ``timeout`` (falling back to the service default) bounds how long the
        batch waits for each query *after reaching its turn in the collection
        loop*; a timed-out worker cannot be interrupted, but its slot frees
        up as soon as it finishes and its result is discarded.
        """
        queries = list(queries)
        timeout = self.default_timeout if timeout is None else timeout
        report = BatchReport(items=[
            BatchItem(index=index, query=query, planner=planner.lower())
            for index, query in enumerate(queries)
        ])
        if not queries:
            return report

        wall_timer = Stopwatch()
        futures: list[Future] = [
            self._ensure_pool().submit(self._run_one, item.query, item.planner)
            for item in report.items
        ]
        # Items are only ever mutated here, in the collecting thread; workers
        # return their outcome, so a timed-out worker's (eventual) result is
        # genuinely discarded rather than racing into the report.
        for item, future in zip(report.items, futures):
            try:
                result, error, elapsed = future.result(timeout=timeout)
            except FutureTimeout:
                item.timed_out = True
                continue
            item.result = result
            item.error = error
            item.elapsed_seconds = elapsed
        report.wall_seconds = wall_timer.elapsed()
        return report

    def _run_one(self, query: Query | str, planner: str):
        """Execute one query, returning ``(result, error, elapsed_seconds)``."""
        timer = Stopwatch()
        try:
            result = self.execute(query, planner=planner, naive_tags=False)
            return result, None, timer.elapsed()
        except Exception as error:  # noqa: BLE001 - surfaced via the item
            return None, f"{type(error).__name__}: {error}", timer.elapsed()

    # ------------------------------------------------------------------ #
    # Mutations & compaction
    # ------------------------------------------------------------------ #
    def execute_mutation(self, stage, attempts: int = 8):
        """Commit a mutation batch against the served catalog, retrying races.

        ``stage(batch)`` stages appends/deletes on a fresh
        :class:`~repro.mutation.batch.MutationBatch`; the commit runs under
        first-committer-wins conflict detection and lost races are retried
        with backoff (:func:`~repro.mutation.concurrency.retry_on_conflict`).
        The service's own mutation subscription then maintains its caches
        incrementally.  On a durable catalog the batch is WAL-logged and
        applied to the saved dataset before becoming visible.  Returns the
        winning :class:`~repro.mutation.delta.MutationCommit`.
        """
        from repro.mutation.concurrency import retry_on_conflict

        return retry_on_conflict(self.session.catalog, stage, attempts=attempts)

    def compact(self, root=None, online: bool = True) -> dict:
        """Compact the saved dataset underneath the served catalog.

        Runs an online :class:`~repro.mutation.compact.Compactor` attached
        to the live catalog: readers keep their pinned snapshots, writers
        keep committing (rebased onto the new generation), prepared plans
        against the old layout are invalidated by the swap's version bump.
        ``root`` defaults to the dataset the catalog's durability controller
        is bound to.  Returns the compaction summary.
        """
        from repro.mutation.compact import Compactor

        if root is None:
            durability = self.session.catalog.durability
            if durability is None:
                raise ValueError(
                    "no dataset root: the catalog has no durability controller; "
                    "pass root= explicitly"
                )
            root = durability.root
        return Compactor(root, catalog=self.session.catalog).run(online=online)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def _on_mutation(self, commit) -> None:
        """React to a committed mutation batch with surgical invalidation.

        * statistics: the mutated tables' cached stats are *extended* by the
          commit's deltas (no rescan; see :meth:`StatsCache.apply_delta`) —
          other tables' entries are untouched;
        * plans: exactly the cached plans reading a mutated table are
          retired (their per-table fingerprints are dead keys anyway; this
          frees their memory immediately);
        * feedback: observations keyed to superseded snapshots are dropped
          so stale selectivities are never injected into a re-plan.
        """
        mutated = set(commit.deltas)
        if not mutated:
            return
        if isinstance(self.stats_cache, StatsCache):
            for delta in commit.deltas.values():
                self.stats_cache.apply_delta(delta)
        self.plan_cache.invalidate_matching(
            lambda prepared: bool(mutated & set(prepared.query.tables.values()))
        )
        self.feedback_store.drop_tables(mutated)

    def invalidate(self) -> None:
        """Drop every cached plan, statistic and feedback observation."""
        self.plan_cache.invalidate()
        if isinstance(self.stats_cache, StatsCache):
            self.stats_cache.invalidate()
        self.feedback_store.clear()

    def cache_metrics(self) -> dict[str, dict[str, float]]:
        """Hit/miss statistics of the plan and stats caches (for reports)."""
        metrics = {"plan_cache": self.plan_cache.stats.as_dict()}
        if isinstance(self.stats_cache, StatsCache):
            metrics["stats_cache"] = self.stats_cache.stats.as_dict()
        if self.feedback:
            feedback = dict(self.feedback_store.stats.as_dict())
            feedback["entries"] = len(self.feedback_store)
            metrics["feedback"] = feedback
        return metrics

    def close(self) -> None:
        """Shut down the worker pool and unsubscribe from the catalog (idempotent)."""
        self._unsubscribe()  # weakref.finalize: runs at most once
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _bind(self, query: Query | str) -> Query:
        """Parse a SQL string once (memoized); the bound Query then flows
        through fingerprinting and prepare without being re-parsed."""
        if isinstance(query, str):
            from repro.sql import parse_query_cached

            return parse_query_cached(query)
        return query

    def _fingerprint(self, query: Query | str, planner: str, naive_tags: bool) -> str:
        # Resolve (and, on first use, create) the access manager through the
        # session so the first fingerprint already sees its version — reading
        # the catalog attribute directly would hash access_version=-1 before
        # the first prepare and split the cache key space.
        manager = self.session._access_manager()
        return query_fingerprint(
            query,
            planner,
            catalog_version=self.session.catalog.version,
            naive_tags=naive_tags,
            three_valued=self.session.three_valued,
            sample_size=self.session.stats_sample_size,
            selectivity_mode=self.session.selectivity_mode,
            cost_params=self.session.cost_params,
            access_version=manager.version if manager is not None else -1,
            table_versions=self._table_versions(query),
            kernels=resolve_tier(
                self.kernels if self.kernels is not None else self.session.kernels
            ),
        )

    def _table_versions(self, query: Query) -> tuple[tuple[str, int], ...] | None:
        """Sorted (table, version) pairs of the query's base tables.

        Per-table granularity is what lets a mutation commit retire only the
        plans that read the mutated tables.  ``None`` (whole-catalog
        fallback) when a referenced table is unknown — preparation will
        raise anyway, but the fingerprint must not.
        """
        catalog = self.session.catalog
        try:
            return tuple(
                sorted(
                    (name, catalog.table_version(name))
                    for name in set(query.tables.values())
                )
            )
        except KeyError:
            return None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-query",
                )
            return self._pool

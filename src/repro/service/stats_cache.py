"""A cache of per-table statistics and selectivity samples.

``PlannerContext.for_query`` needs two query-independent, per-table
ingredients: summary statistics (row counts, distinct counts, min/max) and
the sorted row-position sample predicates are measured on.  Both are
deterministic functions of the table contents, so a session serving many
queries can compute them once per catalog version instead of once per query
— without changing any plan or result.

Entries are keyed by ``(table name, per-table version)`` — see
:meth:`~repro.storage.catalog.Catalog.table_version` — so invalidation is
**per table**: replacing or dropping one table retires only that table's
cached statistics and samples, while every other table's entries survive the
catalog version bump.  Stale entries are pruned eagerly.

A :class:`StatsCache` satisfies the ``stats_provider`` protocol accepted by
:class:`~repro.engine.session.Session` and ``PlannerContext.for_query``.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.stats.selectivity import sample_positions as draw_sample_positions
from repro.stats.table_stats import TableStats, collect_table_stats
from repro.storage.catalog import Catalog
from repro.storage.table import Table

from repro.service.plan_cache import CacheStats


class StatsCache:
    """Caches table statistics and sample draws for one catalog.

    All operations are safe to call from multiple threads.
    """

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog
        self._lock = threading.Lock()
        self._stats: dict[tuple[str, int], TableStats] = {}
        self._samples: dict[tuple[str, int, int, int], np.ndarray] = {}
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    # The stats_provider protocol
    # ------------------------------------------------------------------ #
    def table_stats(self, table: Table) -> TableStats:
        """Summary statistics for ``table``, computed at most once per version."""
        key = (table.name, self._table_version(table))
        with self._lock:
            cached = self._stats.get(key)
            if cached is not None:
                self.stats.hits += 1
                return cached
            self.stats.misses += 1
        computed = collect_table_stats(table)
        with self._lock:
            self._prune_locked()
            self._stats.setdefault(key, computed)
            self.stats.insertions += 1
            return self._stats[key]

    def sample_positions(self, table: Table, sample_size: int, seed: int) -> np.ndarray:
        """Sorted sample positions for ``table``, computed at most once per version."""
        key = (table.name, self._table_version(table), sample_size, seed)
        with self._lock:
            cached = self._samples.get(key)
            if cached is not None:
                self.stats.hits += 1
                return cached
            self.stats.misses += 1
        drawn = draw_sample_positions(
            table.num_rows, sample_size, np.random.default_rng(seed)
        )
        with self._lock:
            self._prune_locked()
            self._samples.setdefault(key, drawn)
            self.stats.insertions += 1
            return self._samples[key]

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def apply_delta(self, delta) -> bool:
        """Fold a mutation commit's table delta into the cache.

        When the pre-commit version's statistics are cached, the post-commit
        statistics are derived from them via
        :meth:`~repro.stats.table_stats.TableStats.apply_delta` — O(columns)
        instead of a full rescan — and inserted under the new version key.
        Returns True when the incremental path ran; False means nothing was
        cached to extend (the next query recollects lazily).  Samples are
        never carried over: the row population changed, so they are redrawn
        (deterministically) on demand.
        """
        old_key = (delta.table, delta.old_version)
        with self._lock:
            old = self._stats.get(old_key)
            if old is not None:
                self._stats[(delta.table, delta.new_version)] = old.apply_delta(delta)
                self.stats.insertions += 1
            self._prune_locked()
            return old is not None

    def invalidate(self, table: str | None = None) -> None:
        """Drop cached statistics and samples — all of them, or one table's."""
        with self._lock:
            if table is None:
                dropped = len(self._stats) + len(self._samples)
                self._stats.clear()
                self._samples.clear()
            else:
                stale_stats = [key for key in self._stats if key[0] == table]
                stale_samples = [key for key in self._samples if key[0] == table]
                for key in stale_stats:
                    del self._stats[key]
                for key in stale_samples:
                    del self._samples[key]
                dropped = len(stale_stats) + len(stale_samples)
            self.stats.invalidations += dropped

    def _table_version(self, table: Table) -> int:
        """Version key for ``table`` (``-1`` for tables outside the catalog,
        e.g. when a caller probes a detached table object)."""
        try:
            return self._catalog.table_version(table.name)
        except KeyError:
            return -1

    def _prune_locked(self) -> None:
        """Discard entries whose table was replaced or dropped (lock held)."""
        def is_stale(key) -> bool:
            name, version = key[0], key[1]
            try:
                return self._catalog.table_version(name) != version
            except KeyError:
                return True

        stale_stats = [key for key in self._stats if is_stale(key)]
        stale_samples = [key for key in self._samples if is_stale(key)]
        for key in stale_stats:
            del self._stats[key]
        for key in stale_samples:
            del self._samples[key]
        self.stats.evictions += len(stale_stats) + len(stale_samples)

"""A cache of per-table statistics and selectivity samples.

``PlannerContext.for_query`` needs two query-independent, per-table
ingredients: summary statistics (row counts, distinct counts, min/max) and
the sorted row-position sample predicates are measured on.  Both are
deterministic functions of the table contents, so a session serving many
queries can compute them once per catalog version instead of once per query
— without changing any plan or result.

Entries are keyed by ``(table name, catalog version)``; bumping the
catalog's version counter (any :meth:`~repro.storage.catalog.Catalog.add`,
``replace`` or ``drop``) therefore invalidates the cache without explicit
coordination.  Entries from older versions are pruned eagerly.

A :class:`StatsCache` satisfies the ``stats_provider`` protocol accepted by
:class:`~repro.engine.session.Session` and ``PlannerContext.for_query``.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.stats.selectivity import sample_positions as draw_sample_positions
from repro.stats.table_stats import TableStats, collect_table_stats
from repro.storage.catalog import Catalog
from repro.storage.table import Table

from repro.service.plan_cache import CacheStats


class StatsCache:
    """Caches table statistics and sample draws for one catalog.

    All operations are safe to call from multiple threads.
    """

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog
        self._lock = threading.Lock()
        self._stats: dict[tuple[str, int], TableStats] = {}
        self._samples: dict[tuple[str, int, int, int], np.ndarray] = {}
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    # The stats_provider protocol
    # ------------------------------------------------------------------ #
    def table_stats(self, table: Table) -> TableStats:
        """Summary statistics for ``table``, computed at most once per version."""
        key = (table.name, self._catalog.version)
        with self._lock:
            cached = self._stats.get(key)
            if cached is not None:
                self.stats.hits += 1
                return cached
            self.stats.misses += 1
        computed = collect_table_stats(table)
        with self._lock:
            self._prune_locked()
            self._stats.setdefault(key, computed)
            self.stats.insertions += 1
            return self._stats[key]

    def sample_positions(self, table: Table, sample_size: int, seed: int) -> np.ndarray:
        """Sorted sample positions for ``table``, computed at most once per version."""
        key = (table.name, self._catalog.version, sample_size, seed)
        with self._lock:
            cached = self._samples.get(key)
            if cached is not None:
                self.stats.hits += 1
                return cached
            self.stats.misses += 1
        drawn = draw_sample_positions(
            table.num_rows, sample_size, np.random.default_rng(seed)
        )
        with self._lock:
            self._prune_locked()
            self._samples.setdefault(key, drawn)
            self.stats.insertions += 1
            return self._samples[key]

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def invalidate(self) -> None:
        """Drop every cached statistic and sample."""
        with self._lock:
            dropped = len(self._stats) + len(self._samples)
            self._stats.clear()
            self._samples.clear()
            self.stats.invalidations += dropped

    def _prune_locked(self) -> None:
        """Discard entries built against older catalog versions (lock held)."""
        current = self._catalog.version
        stale_stats = [key for key in self._stats if key[1] != current]
        stale_samples = [key for key in self._samples if key[1] != current]
        for key in stale_stats:
            del self._stats[key]
        for key in stale_samples:
            del self._samples[key]
        self.stats.evictions += len(stale_stats) + len(stale_samples)

"""Normalized query fingerprints.

A fingerprint addresses one entry of the plan cache.  It hashes every input
that determines the plan a :class:`~repro.engine.session.Session` would
build:

* the query's canonical form (:meth:`~repro.plan.query.Query.canonical_key`),
  which is stable across SQL whitespace, commutative AND/OR orderings and
  join-condition orientation;
* the planner name and the ``naive_tags`` flag;
* the session's planning knobs (three-valued logic, sample size,
  selectivity mode, cost-model constants);
* the versions of the tables the query references (``table_versions``), so
  a mutation silently retires exactly the plans that read the mutated
  tables — every other cached plan keeps its fingerprint and stays warm.
  Callers without per-table versions fall back to the whole-catalog
  version, which is sound but coarser (any mutation retires everything).

Two queries with equal fingerprints are guaranteed to produce identical
plans, because planning is deterministic in all of the hashed inputs.
"""

from __future__ import annotations

import hashlib

from repro.core.planner.cost import CostParams
from repro.plan.query import Query


def canonical_query_text(query: Query | str) -> str:
    """The canonical textual form of a query (parsing SQL strings first)."""
    if isinstance(query, str):
        from repro.sql import parse_query_cached

        query = parse_query_cached(query)
    return query.canonical_key()


def query_fingerprint(
    query: Query | str,
    planner: str,
    catalog_version: int,
    naive_tags: bool = False,
    three_valued: bool = True,
    sample_size: int = 20_000,
    selectivity_mode: str = "measured",
    cost_params: CostParams | None = None,
    access_version: int = -1,
    table_versions: tuple[tuple[str, int], ...] | None = None,
    kernels: str = "numpy",
) -> str:
    """A stable hex digest addressing the plan for ``query`` under ``planner``.

    ``access_version`` is the access-path manager's mutation counter (``-1``
    when access paths are disabled): creating or dropping a secondary index
    changes the access paths a plan may have chosen, so it must retire
    cached plans the same way a catalog mutation does.

    ``table_versions`` — sorted ``(table name, per-table version)`` pairs for
    the tables the query references — replaces the whole-catalog version in
    the digest when provided, giving per-table invalidation granularity.

    ``kernels`` is the *resolved* expression-kernel tier the plan executes
    under (pass it through :func:`repro.kernels.resolve_tier`): different
    tiers share plans' logical shape but not their runtime artifacts, so a
    tier flip must address a different cache slot.
    """
    params = cost_params if cost_params is not None else CostParams()
    if table_versions is not None:
        version_material = "table_versions=" + ",".join(
            f"{name}:{version}" for name, version in table_versions
        )
    else:
        version_material = f"catalog_version={catalog_version}"
    material = "\x1f".join(
        (
            canonical_query_text(query),
            planner.lower(),
            version_material,
            f"naive_tags={naive_tags}",
            f"three_valued={three_valued}",
            f"sample_size={sample_size}",
            f"selectivity_mode={selectivity_mode}",
            f"cost_params={params!r}",
            f"access_version={access_version}",
            f"kernels={kernels}",
        )
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()
